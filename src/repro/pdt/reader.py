"""Trace-file reader — the Trace Analyzer's input stage.

Two entry points:

* :func:`read_trace` — parse a whole file into an in-memory
  :class:`Trace` (compatibility path; all layouts).
* :func:`open_trace` — open a chunked (version-2/3/4) trace as a
  :class:`TraceFileSource`, an :class:`EventSource` that decodes one
  chunk at a time so analysis of a multi-million-event trace never
  holds more than O(chunk) records.  Version-1 files transparently
  fall back to a materialized source.

Version-4 files carry a zone-map index trailer after the last chunk.
A strict read verifies it (CRC, entry count, record total) like any
other part of the file and serves it through
:meth:`TraceFileSource.zone_maps`, which lets :mod:`repro.tq` seek
past chunks a query cannot touch
(:meth:`TraceFileSource.iter_chunks_selected`).  A salvage read never
uses the trailer — once chunks may have been dropped the index no
longer aligns — so a damaged index degrades to a full scan, never to
wrong results.  For v1–v3 files :meth:`TraceFileSource.attach_sidecar`
loads a ``<trace>.pdtx`` sidecar index when one matches the file.

Both accept ``strict=False`` to *salvage* a damaged trace instead of
failing: chunks whose CRC or decode fails are skipped, the valid
record prefix of a truncated final chunk is recovered, the scan
resynchronizes on the next well-formed chunk prefix after damage, and
the result carries a :class:`SalvageReport` (``.salvage``) itemizing
what was lost.  In strict mode (the default) any damage raises
:class:`TraceFormatError` — for version-3 files a single flipped bit
anywhere in the header, a chunk frame, or a payload is detected by the
CRC32 checks; never a silent wrong read.
"""

from __future__ import annotations

import dataclasses
import io
import struct
import typing

from repro.pdt import codec
from repro.pdt import events as ev
from repro.pdt.codec import decode_fields, iter_prefixes
from repro.pdt.format import (
    _CHUNK,
    _HEADER,
    _STREAM,
    _U32,
    CHUNKS_UNTIL_EOF,
    INDEX_MAGIC,
    MAGIC,
    VERSION_CHUNKED,
    VERSION_CRC,
    VERSION_INDEXED,
    VERSION_LEGACY,
    TraceFormatError,
    check_version,
    chunk_crc32,
    chunk_frame_struct,
    data_offset,
    header_crc32,
)
from repro.pdt.index import ZoneMap, decode_index, read_sidecar
from repro.pdt.store import ColumnChunk, ColumnStore, EventSource
from repro.pdt.trace import Trace, TraceHeader

__all__ = [
    "TraceFormatError",
    "SalvageReport",
    "read_trace",
    "open_trace",
    "TraceFileSource",
    "ChunkRangeView",
]

#: One signed 64-bit payload value (the sync record's tb_raw).
_VALUE = struct.Struct("<q")


@dataclasses.dataclass
class SalvageReport:
    """What a non-strict read recovered and what it lost.

    ``bad_ranges`` lists half-open ``(start, end)`` byte ranges of the
    file that were skipped as damaged (or cut off by truncation);
    ``records_dropped`` counts records inside chunks that failed their
    CRC/decode, while ``records_missing`` counts records the header
    promised that no surviving or damaged chunk accounts for (e.g. a
    truncated prefix swallowed them).
    """

    version: int
    chunks_recovered: int = 0
    chunks_dropped: int = 0
    records_recovered: int = 0
    records_dropped: int = 0
    records_missing: int = 0
    tail_records_recovered: int = 0
    resyncs: int = 0
    truncated: bool = False
    header_damaged: bool = False
    bad_ranges: typing.List[typing.Tuple[int, int]] = dataclasses.field(
        default_factory=list
    )
    notes: typing.List[str] = dataclasses.field(default_factory=list)

    @property
    def records_lost(self) -> int:
        """Records known or presumed destroyed by the damage."""
        return self.records_dropped + self.records_missing

    @property
    def bytes_skipped(self) -> int:
        return sum(end - start for start, end in self.bad_ranges)

    @property
    def damaged(self) -> bool:
        return bool(
            self.chunks_dropped
            or self.records_lost
            or self.truncated
            or self.header_damaged
            or self.bad_ranges
        )

    def summary(self) -> str:
        """One line for CLI output."""
        if not self.damaged:
            return (
                f"trace intact: {self.records_recovered} records in "
                f"{self.chunks_recovered} chunks, nothing to salvage"
            )
        parts = [
            f"recovered {self.records_recovered} records in "
            f"{self.chunks_recovered} chunks",
            f"dropped {self.chunks_dropped} corrupt chunks",
            f"lost {self.records_lost} records "
            f"({self.bytes_skipped} damaged bytes)",
        ]
        if self.truncated:
            parts.append("file is truncated")
        if self.header_damaged:
            parts.append("header failed its CRC")
        return "; ".join(parts)


def _parse_header(blob: bytes) -> typing.Tuple[TraceHeader, int, int]:
    """Parse and sanity-check the header; returns (header, a, b)."""
    if len(blob) < _HEADER.size:
        raise TraceFormatError(f"file too short for header: {len(blob)} bytes")
    (
        magic,
        version,
        n_spes,
        timebase_divider,
        spu_clock_hz,
        groups_bitmap,
        buffer_bytes,
        a,
        b,
    ) = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r} (expected {MAGIC!r})")
    check_version(version)
    header = TraceHeader(
        n_spes=n_spes,
        timebase_divider=timebase_divider,
        spu_clock_hz=spu_clock_hz,
        groups_bitmap=groups_bitmap,
        buffer_bytes=buffer_bytes,
        version=version,
    )
    return header, a, b


def _check_header_crc(head: bytes) -> None:
    """Strict v3: verify the header CRC32 trailer."""
    if len(head) < _HEADER.size + _U32.size:
        raise TraceFormatError("file too short for version-3 header CRC")
    (stored,) = _U32.unpack_from(head, _HEADER.size)
    if header_crc32(head[: _HEADER.size]) != stored:
        raise TraceFormatError(
            f"header CRC mismatch: stored 0x{stored:08x}, computed "
            f"0x{header_crc32(head[:_HEADER.size]):08x}"
        )


def _header_crc_ok(blob: bytes) -> bool:
    if len(blob) < _HEADER.size + _U32.size:
        return False
    (stored,) = _U32.unpack_from(blob, _HEADER.size)
    return header_crc32(blob[: _HEADER.size]) == stored


def _check_chunk_crc(
    stored: int, n_records: int, payload, offset: int
) -> None:
    computed = chunk_crc32(n_records, payload)
    if computed != stored:
        raise TraceFormatError(
            f"chunk CRC mismatch at offset {offset}: stored "
            f"0x{stored:08x}, computed 0x{computed:08x}"
        )


def _decode_chunk(blob: bytes, offset: int, n_records: int, payload_bytes: int) -> ColumnChunk:
    chunk = ColumnChunk()
    end = offset + payload_bytes
    batch = codec.decode_batch(blob, offset, n_records)
    if batch is not None:
        chunk.extend_run(batch)
        offset = batch.next_offset
        if offset != end:
            raise TraceFormatError(
                f"chunk payload size mismatch: declared {payload_bytes} "
                f"bytes, decoded {payload_bytes - (end - offset)}"
            )
        return chunk
    # Scalar fallback: the reference loop, and the single source of the
    # corrupt-payload error behavior (the batch decoder returns None on
    # any anomaly precisely so this path can raise the exact error).
    sides, codes, cores = chunk.side, chunk.code, chunk.core
    seqs, raws, truths = chunk.seq, chunk.raw_ts, chunk.truth
    vals, offs = chunk.values, chunk.val_off
    try:
        for __ in range(n_records):
            side, code, core, seq, raw_ts, values, offset = decode_fields(blob, offset)
            sides.append(side)
            codes.append(code)
            cores.append(core)
            seqs.append(seq)
            raws.append(raw_ts)
            truths.append(-1)
            vals.extend(values)
            offs.append(len(vals))
    except (ValueError, KeyError) as exc:
        raise TraceFormatError(f"corrupt trace payload: {exc}") from exc
    if offset != end:
        raise TraceFormatError(
            f"chunk payload size mismatch: declared {payload_bytes} bytes, "
            f"decoded {payload_bytes - (end - offset)}"
        )
    return chunk


def _iter_chunk_frames(
    blob: bytes, version: int, n_chunks: int
) -> typing.Iterator[typing.Tuple[int, int, int, typing.Optional[int]]]:
    """Yield (payload_offset, n_records, payload_bytes, crc) per chunk.

    ``crc`` is ``None`` for version-2 files.
    """
    frame = chunk_frame_struct(version)
    offset = data_offset(version)
    seen = 0
    while True:
        if n_chunks == CHUNKS_UNTIL_EOF:
            if offset == len(blob):
                return
            # A sentinel-header v4 file ends its chunk run at the
            # index trailer rather than at EOF.
            if (
                version >= VERSION_INDEXED
                and blob[offset : offset + len(INDEX_MAGIC)] == INDEX_MAGIC
            ):
                return
        elif seen == n_chunks:
            return
        if offset + frame.size > len(blob):
            raise TraceFormatError("truncated chunk prefix")
        if version >= VERSION_CRC:
            n_records, payload_bytes, crc = frame.unpack_from(blob, offset)
        else:
            n_records, payload_bytes = frame.unpack_from(blob, offset)
            crc = None
        offset += frame.size
        if offset + payload_bytes > len(blob):
            raise TraceFormatError(
                f"truncated chunk payload at offset {offset}: need "
                f"{payload_bytes} bytes, have {len(blob) - offset}"
            )
        yield offset, n_records, payload_bytes, crc
        offset += payload_bytes
        seen += 1


def _plausible_frame(n_records: int, payload_bytes: int) -> bool:
    """Could (n_records, payload_bytes) frame a real chunk?  Records
    are 16-byte-aligned multiples of 16 bytes, so the payload size must
    be too, and each record occupies at least 16 of those bytes."""
    return (
        n_records > 0
        and payload_bytes % 16 == 0
        and 16 * n_records <= payload_bytes
    )


def _resync_offset(blob: bytes, start: int, version: int) -> int:
    """Scan forward from ``start`` for the next well-formed chunk.

    Well-formed means: plausible frame, payload fits in the file, and
    (v3) the CRC verifies / (v2) the payload trial-decodes.  Returns
    ``len(blob)`` when no further chunk exists.
    """
    frame = chunk_frame_struct(version)
    v3 = version >= VERSION_CRC
    size = len(blob)
    mv = memoryview(blob)
    offset = start
    while offset + frame.size <= size:
        if v3:
            n_records, payload_bytes, crc = frame.unpack_from(blob, offset)
        else:
            n_records, payload_bytes = frame.unpack_from(blob, offset)
        payload_off = offset + frame.size
        if (
            _plausible_frame(n_records, payload_bytes)
            and payload_off + payload_bytes <= size
        ):
            if v3:
                if chunk_crc32(
                    n_records, mv[payload_off : payload_off + payload_bytes]
                ) == crc:
                    return offset
            else:
                try:
                    _decode_chunk(blob, payload_off, n_records, payload_bytes)
                    return offset
                except TraceFormatError:
                    pass
        offset += 1
    return size


def _decode_partial(
    blob: bytes, offset: int, end: int, max_records: int
) -> typing.Tuple[ColumnChunk, int]:
    """Recover the valid record prefix of a truncated chunk payload.

    Decodes records until one fails or runs past ``end``; returns the
    recovered chunk and the offset reached.
    """
    chunk = ColumnChunk()
    count = 0
    while count < max_records:
        try:
            side, code, core, seq, raw_ts, values, next_off = decode_fields(
                blob, offset
            )
        except (ValueError, KeyError):
            break
        if next_off > end:
            break
        chunk.side.append(side)
        chunk.code.append(code)
        chunk.core.append(core)
        chunk.seq.append(seq)
        chunk.raw_ts.append(raw_ts)
        chunk.truth.append(-1)
        chunk.values.extend(values)
        chunk.val_off.append(len(chunk.values))
        offset = next_off
        count += 1
    return chunk, offset


def _salvage_scan(
    blob: bytes, header: TraceHeader, declared_chunks: int, declared_records: int
) -> typing.Tuple[typing.List[ColumnChunk], SalvageReport]:
    """Walk a damaged chunked file, keeping every verifiable chunk."""
    version = header.version
    v3 = version >= VERSION_CRC
    frame = chunk_frame_struct(version)
    report = SalvageReport(version=version)
    chunks: typing.List[ColumnChunk] = []
    size = len(blob)
    mv = memoryview(blob)
    if v3:
        if not _header_crc_ok(blob):
            report.header_damaged = True
            report.notes.append(
                "header CRC mismatch: header fields (clock rates, counts) "
                "may be unreliable"
            )
    offset = data_offset(version)
    if size < offset:
        report.truncated = True
        report.notes.append("file ends inside the header")
        offset = size
    trailer_seen = False
    while offset < size:
        if (
            version >= VERSION_INDEXED
            and blob[offset : offset + len(INDEX_MAGIC)] == INDEX_MAGIC
        ):
            # The v4 index trailer: consume it if it verifies.  Either
            # way it is never *used* on the salvage path — once chunks
            # may have been dropped the zone maps no longer align — so
            # damage here costs pruning, never correctness.
            trailer_seen = True
            try:
                __, __, consumed = decode_index(blob, offset)
            except TraceFormatError as exc:
                report.bad_ranges.append((offset, size))
                report.notes.append(
                    f"index trailer at offset {offset} is damaged ({exc}); "
                    "queries fall back to a full scan"
                )
                break
            offset += consumed
            continue
        if offset + frame.size > size:
            report.truncated = True
            report.bad_ranges.append((offset, size))
            report.notes.append(
                f"truncated chunk prefix at offset {offset}: "
                f"{size - offset} trailing bytes"
            )
            break
        if v3:
            n_records, payload_bytes, crc = frame.unpack_from(blob, offset)
        else:
            n_records, payload_bytes = frame.unpack_from(blob, offset)
            crc = None
        payload_off = offset + frame.size
        plausible = _plausible_frame(n_records, payload_bytes)
        fits = payload_off + payload_bytes <= size
        chunk: typing.Optional[ColumnChunk] = None
        if plausible and fits:
            if crc is not None and chunk_crc32(
                n_records, mv[payload_off : payload_off + payload_bytes]
            ) != crc:
                reason = f"chunk CRC mismatch at offset {offset}"
            else:
                try:
                    chunk = _decode_chunk(
                        blob, payload_off, n_records, payload_bytes
                    )
                except TraceFormatError as exc:
                    reason = f"chunk at offset {offset} failed to decode: {exc}"
        elif plausible:
            reason = (
                f"chunk at offset {offset} declares {payload_bytes} payload "
                f"bytes but only {size - payload_off} remain"
            )
        else:
            reason = f"implausible chunk prefix at offset {offset}"
        if chunk is not None:
            chunks.append(chunk)
            report.chunks_recovered += 1
            report.records_recovered += n_records
            offset = payload_off + payload_bytes
            continue
        # Damaged.  If the declared payload overruns EOF and no later
        # well-formed chunk exists, this is the crash-mid-write case:
        # keep the valid record prefix of the tail.  Otherwise drop the
        # chunk and resynchronize on the next well-formed prefix.
        resume = _resync_offset(blob, offset + 1, version)
        if plausible and not fits and resume >= size:
            tail, reached = _decode_partial(blob, payload_off, size, n_records)
            report.truncated = True
            if len(tail):
                chunks.append(tail)
                report.chunks_recovered += 1
                report.records_recovered += len(tail)
                report.tail_records_recovered += len(tail)
            report.records_dropped += n_records - len(tail)
            report.bad_ranges.append((reached, size))
            report.notes.append(
                f"truncated final chunk at offset {offset}: recovered the "
                f"leading {len(tail)} of {n_records} records"
            )
            break
        report.chunks_dropped += 1
        if plausible:
            report.records_dropped += n_records
        if resume < size:
            report.resyncs += 1
            report.notes.append(f"{reason}; resynchronized at offset {resume}")
        else:
            report.notes.append(f"{reason}; no further chunks found")
        report.bad_ranges.append((offset, resume))
        offset = resume
    if version >= VERSION_INDEXED and not trailer_seen and not report.header_damaged:
        # A v4 file must end in its index trailer; reaching EOF without
        # one means the tail was cut off, even when every chunk (and so
        # every record) survived intact.
        report.truncated = True
        report.notes.append(
            "index trailer missing (file truncated at a chunk boundary?); "
            "queries fall back to a full scan"
        )
    if (
        declared_chunks != CHUNKS_UNTIL_EOF
        and not report.header_damaged
        and declared_records > report.records_recovered + report.records_dropped
    ):
        report.records_missing = declared_records - (
            report.records_recovered + report.records_dropped
        )
        report.notes.append(
            f"header declares {declared_records} records; "
            f"{report.records_missing} are unaccounted for"
        )
    return chunks, report


def _verify_index_trailer(
    blob: bytes, offset: int, n_chunks: int, total_records: int
) -> typing.List[ZoneMap]:
    """Strict v4: parse and cross-check the index trailer at ``offset``.

    The trailer must parse (magic, version, CRC — :func:`decode_index`
    raises otherwise), describe exactly the chunks the file holds, and
    be the last thing in the file.
    """
    zones, idx_total, consumed = decode_index(blob, offset)
    if len(zones) != n_chunks:
        raise TraceFormatError(
            f"index trailer describes {len(zones)} chunks; file holds "
            f"{n_chunks}"
        )
    if idx_total != total_records:
        raise TraceFormatError(
            f"index trailer declares {idx_total} records; chunks hold "
            f"{total_records}"
        )
    if offset + consumed != len(blob):
        raise TraceFormatError(
            f"{len(blob) - offset - consumed} trailing bytes after the "
            "index trailer"
        )
    return zones


def read_trace(
    path_or_file: typing.Union[str, typing.BinaryIO, bytes],
    strict: bool = True,
) -> Trace:
    """Parse a trace file (path, binary file object, or raw bytes).

    With ``strict=False`` a damaged file is salvaged instead of
    raising: every verifiable chunk is kept and ``trace.salvage``
    holds the :class:`SalvageReport`.  A file whose header cannot be
    parsed at all still raises :class:`TraceFormatError` — there is
    nothing to salvage without the codec parameters.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file, "rb") as handle:
            return read_trace(handle.read(), strict=strict)
    if isinstance(path_or_file, (bytes, bytearray)):
        blob = bytes(path_or_file)
    else:
        blob = path_or_file.read()

    header, a, b = _parse_header(blob)
    trace = Trace(header=header)
    if not strict:
        return _read_salvage(blob, header, a, b, trace)
    if header.version == VERSION_LEGACY:
        _read_legacy_payload(blob, a, b, trace.store)
    else:
        if header.version >= VERSION_CRC:
            _check_header_crc(blob)
        total = 0
        chunks_seen = 0
        end = data_offset(header.version)
        for offset, n_records, payload_bytes, crc in _iter_chunk_frames(
            blob, header.version, a
        ):
            if crc is not None:
                _check_chunk_crc(
                    crc,
                    n_records,
                    memoryview(blob)[offset : offset + payload_bytes],
                    offset,
                )
            trace.store.adopt_chunk(
                _decode_chunk(blob, offset, n_records, payload_bytes)
            )
            total += n_records
            chunks_seen += 1
            end = offset + payload_bytes
        if a != CHUNKS_UNTIL_EOF and total != b:
            raise TraceFormatError(
                f"record count mismatch: header says {b}, chunks hold {total}"
            )
        if header.version >= VERSION_INDEXED:
            _verify_index_trailer(blob, end, chunks_seen, total)
    try:
        trace.validate()
    except ValueError as exc:
        # Structurally decodable but semantically impossible (out-of-
        # order sequence numbers, misattributed streams): damage the
        # version-2 layout cannot catch byte-wise.  Still a format
        # error to the caller — never a silent wrong read.
        raise TraceFormatError(f"trace failed validation: {exc}") from exc
    return trace


def _read_salvage(
    blob: bytes, header: TraceHeader, a: int, b: int, trace: Trace
) -> Trace:
    if header.version == VERSION_LEGACY:
        report = _salvage_legacy(blob, a, b, trace.store)
    else:
        chunks, report = _salvage_scan(blob, header, a, b)
        for chunk in chunks:
            trace.store.adopt_chunk(chunk)
    trace.salvage = report
    try:
        trace.validate()
    except ValueError as exc:
        report.notes.append(f"recovered records failed validation: {exc}")
    return trace


def _read_legacy_payload(blob: bytes, n_ppe: int, n_streams: int, store: ColumnStore) -> None:
    """Version-1 payload: stream directory, then per-stream records."""
    offset = _HEADER.size
    streams: typing.List[typing.Tuple[int, int]] = []
    for __ in range(n_streams):
        if offset + _STREAM.size > len(blob):
            raise TraceFormatError("truncated stream directory")
        spe_id, count = _STREAM.unpack_from(blob, offset)
        streams.append((spe_id, count))
        offset += _STREAM.size
    try:
        for __ in range(n_ppe):
            side, code, core, seq, raw_ts, values, offset = decode_fields(blob, offset)
            store.append(side, code, core, seq, raw_ts, values)
        for spe_id, count in streams:
            for __ in range(count):
                side, code, core, seq, raw_ts, values, offset = decode_fields(blob, offset)
                if core != spe_id:
                    raise TraceFormatError(
                        f"stream for SPE {spe_id} contains a record from "
                        f"core {core}"
                    )
                store.append(side, code, core, seq, raw_ts, values)
    except TraceFormatError:
        raise
    except (ValueError, KeyError) as exc:
        raise TraceFormatError(f"corrupt trace payload: {exc}") from exc


def _salvage_legacy(
    blob: bytes, n_ppe: int, n_streams: int, store: ColumnStore
) -> SalvageReport:
    """Forgiving version-1 read: keep the valid leading records.

    The legacy layout has no frames to resynchronize on, so damage
    costs everything after it; the intact prefix survives.
    """
    report = SalvageReport(version=VERSION_LEGACY)
    size = len(blob)
    offset = _HEADER.size
    streams: typing.List[typing.Tuple[int, int]] = []
    for __ in range(n_streams):
        if offset + _STREAM.size > size:
            report.truncated = True
            report.bad_ranges.append((offset, size))
            report.notes.append("truncated stream directory")
            break
        spe_id, count = _STREAM.unpack_from(blob, offset)
        streams.append((spe_id, count))
        offset += _STREAM.size
    expected = n_ppe + sum(count for __, count in streams)
    recovered = 0
    failure: typing.Optional[str] = None
    for spe_id, count in [(None, n_ppe)] + list(streams):
        for __ in range(count):
            try:
                side, code, core, seq, raw_ts, values, next_off = decode_fields(
                    blob, offset
                )
            except (ValueError, KeyError) as exc:
                failure = str(exc)
                break
            if spe_id is not None and core != spe_id:
                failure = (
                    f"stream for SPE {spe_id} contains a record from core "
                    f"{core}"
                )
                break
            store.append(side, code, core, seq, raw_ts, values)
            recovered += 1
            offset = next_off
        if failure is not None:
            break
    report.records_recovered = recovered
    if failure is not None or recovered < expected:
        report.records_dropped = expected - recovered
        if offset < size or failure is not None:
            report.bad_ranges.append((offset, size))
        else:
            report.truncated = True
        if failure is not None:
            report.notes.append(
                f"legacy payload damaged at offset {offset} ({failure}); "
                f"kept the leading {recovered} records"
            )
        else:
            report.notes.append(
                f"legacy payload truncated: kept {recovered} of "
                f"{expected} records"
            )
    return report


class TraceFileSource(EventSource):
    """A chunked trace file served as an :class:`EventSource`.

    In strict mode (the default) the constructor reads only the header
    and the chunk *prefixes* (seeking over payloads) to build the chunk
    index; payload bytes are decoded lazily, one chunk at a time,
    during ``iter_chunks`` — and for version-3 files every payload read
    verifies the chunk CRC before decode.  Each ``iter_chunks`` call
    opens its own file handle, so several iterations (e.g. per-core
    placement streams feeding a merge) can be in flight at once.

    With ``strict=False`` the whole file is read and salvage-scanned up
    front (the recovery path trades streaming for resilience); the
    surviving chunks are held in memory and ``.salvage`` carries the
    :class:`SalvageReport`.  In strict mode ``.salvage`` is ``None``.
    """

    def __init__(
        self,
        path_or_file: typing.Union[str, typing.BinaryIO, bytes],
        strict: bool = True,
    ):
        self._path: typing.Optional[str] = None
        self._blob: typing.Optional[bytes] = None
        #: Every live handle this source has opened and not yet
        #: released; :meth:`close` drains it, so a raise anywhere —
        #: mid-construction, mid-iteration — cannot leak a descriptor
        #: past the context manager.
        self._handles: typing.Set[typing.BinaryIO] = set()
        self.salvage: typing.Optional[SalvageReport] = None
        self._salvaged: typing.Optional[typing.List[ColumnChunk]] = None
        #: Zone maps from the v4 trailer (or an attached sidecar);
        #: ``None`` when the file carries no usable index.
        self._zones: typing.Optional[typing.List[ZoneMap]] = None
        if isinstance(path_or_file, str):
            self._path = path_or_file
        elif isinstance(path_or_file, (bytes, bytearray)):
            self._blob = bytes(path_or_file)
        else:
            # A raw file object cannot be re-opened for repeated
            # iteration, so fall back to holding its bytes.
            self._blob = path_or_file.read()

        try:
            if not strict:
                self._init_salvage()
                return
            self._init_strict()
        except BaseException:
            self.close()
            raise

    def _init_strict(self) -> None:
        handle = self._open()
        try:
            head = handle.read(_HEADER.size + _U32.size)
            self.header, a, b = _parse_header(head)
            if self.header.version == VERSION_LEGACY:
                # Legacy layout cannot be streamed; materialize once.
                handle.seek(0)
                self._fallback: typing.Optional[EventSource] = read_trace(
                    handle.read()
                ).as_source()
                self._index: typing.List[
                    typing.Tuple[int, int, int, typing.Optional[int]]
                ] = []
                self._n_records = self._fallback.n_records
                return
            if self.header.version >= VERSION_CRC:
                _check_header_crc(head)
            self._fallback = None
            self._index = self._build_index(handle, self.header.version, a)
            self._n_records = sum(n for __, n, __, __ in self._index)
            if a != CHUNKS_UNTIL_EOF and self._n_records != b:
                raise TraceFormatError(
                    f"record count mismatch: header says {b}, chunks hold "
                    f"{self._n_records}"
                )
            if self.header.version >= VERSION_INDEXED:
                trailer_off = (
                    self._index[-1][0] + self._index[-1][2]
                    if self._index
                    else data_offset(self.header.version)
                )
                handle.seek(trailer_off)
                self._zones = _verify_index_trailer(
                    handle.read(), 0, len(self._index), self._n_records
                )
        finally:
            self._release(handle)

    def _init_salvage(self) -> None:
        """Non-strict construction: read everything, keep what verifies."""
        if self._blob is not None:
            blob = self._blob
        else:
            handle = self._open()
            try:
                blob = handle.read()
            finally:
                self._release(handle)
        self.header, a, b = _parse_header(blob)
        self._fallback = None
        self._index = []
        if self.header.version == VERSION_LEGACY:
            trace = Trace(header=self.header)
            self.salvage = _salvage_legacy(blob, a, b, trace.store)
            self._salvaged = list(trace.store.iter_chunks())
        else:
            self._salvaged, self.salvage = _salvage_scan(blob, self.header, a, b)
        self._n_records = sum(len(chunk) for chunk in self._salvaged)

    def _open(self) -> typing.BinaryIO:
        if self._path is not None:
            handle = open(self._path, "rb")
        else:
            assert self._blob is not None
            handle = io.BytesIO(self._blob)
        self._handles.add(handle)
        return handle

    def _release(self, handle: typing.BinaryIO) -> None:
        self._handles.discard(handle)
        handle.close()

    def close(self) -> None:
        """Close every file handle this source still holds open,
        including those of abandoned ``iter_chunks`` generators.
        Idempotent; the source must not be iterated afterwards."""
        while self._handles:
            self._handles.pop().close()

    def __enter__(self) -> "TraceFileSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def _build_index(
        handle: typing.BinaryIO, version: int, n_chunks: int
    ) -> typing.List[typing.Tuple[int, int, int, typing.Optional[int]]]:
        """Scan chunk prefixes (seeking past payloads) into an index of
        (payload_offset, n_records, payload_bytes, crc)."""
        frame = chunk_frame_struct(version)
        handle.seek(0, io.SEEK_END)
        size = handle.tell()
        offset = data_offset(version)
        index: typing.List[typing.Tuple[int, int, int, typing.Optional[int]]] = []
        while True:
            if n_chunks == CHUNKS_UNTIL_EOF:
                if offset == size:
                    return index
                if version >= VERSION_INDEXED:
                    handle.seek(offset)
                    if handle.read(len(INDEX_MAGIC)) == INDEX_MAGIC:
                        return index
            elif len(index) == n_chunks:
                return index
            if offset + frame.size > size:
                raise TraceFormatError("truncated chunk prefix")
            handle.seek(offset)
            if version >= VERSION_CRC:
                n_records, payload_bytes, crc = frame.unpack(
                    handle.read(frame.size)
                )
            else:
                n_records, payload_bytes = frame.unpack(handle.read(frame.size))
                crc = None
            offset += frame.size
            if offset + payload_bytes > size:
                raise TraceFormatError(
                    f"truncated chunk payload at offset {offset}: need "
                    f"{payload_bytes} bytes, have {size - offset}"
                )
            index.append((offset, n_records, payload_bytes, crc))
            offset += payload_bytes

    @property
    def n_records(self) -> int:
        return self._n_records

    @property
    def path(self) -> typing.Optional[str]:
        """The backing file path, or ``None`` for blob-backed sources —
        what a shard worker needs to reopen the same trace."""
        return self._path

    @property
    def blob(self) -> typing.Optional[bytes]:
        """The backing bytes for blob-backed sources, else ``None``."""
        return self._blob

    @property
    def n_chunks(self) -> int:
        if self._salvaged is not None:
            return len(self._salvaged)
        if self._fallback is not None:
            return sum(1 for __ in self._fallback.iter_chunks())
        return len(self._index)

    def chunk_record_counts(self) -> typing.List[int]:
        """Per-chunk record counts, from the frame index when the file
        has one (no payload decode) — the shard planner's fallback
        weights when a file carries no zone maps."""
        if self._salvaged is not None:
            return [len(chunk) for chunk in self._salvaged]
        if self._fallback is not None:
            return [len(chunk) for chunk in self._fallback.iter_chunks()]
        return [n for __, n, __, __ in self._index]

    def iter_chunk_range(
        self,
        lo: int,
        hi: int,
        keep: typing.Optional[typing.Sequence[bool]] = None,
    ) -> typing.Iterator[ColumnChunk]:
        """Decode chunks ``lo <= i < hi``, seeking directly to the
        range's first payload; ``keep`` (indexed relative to ``lo``)
        additionally skips chunks inside the range without reading
        their payloads.  The chunk-range path workers shard on."""
        if self._salvaged is not None or self._fallback is not None:
            chunks: typing.Iterable[ColumnChunk] = (
                self._salvaged
                if self._salvaged is not None
                else self._fallback.iter_chunks()
            )
            for i, chunk in enumerate(list(chunks)[lo:hi]):
                if keep is not None and i < len(keep) and not keep[i]:
                    continue
                yield chunk
            return
        handle = self._open()
        try:
            for i, (offset, n_records, payload_bytes, crc) in enumerate(
                self._index[lo:hi]
            ):
                if keep is not None and i < len(keep) and not keep[i]:
                    continue
                handle.seek(offset)
                payload = handle.read(payload_bytes)
                if len(payload) != payload_bytes:
                    raise TraceFormatError(
                        f"truncated chunk payload at offset {offset}"
                    )
                if crc is not None:
                    _check_chunk_crc(crc, n_records, payload, offset)
                yield _decode_chunk(payload, 0, n_records, payload_bytes)
        finally:
            self._release(handle)

    def iter_chunks(self) -> typing.Iterator[ColumnChunk]:
        return self.iter_chunk_range(0, self.n_chunks)

    def iter_chunks_selected(
        self, keep: typing.Sequence[bool]
    ) -> typing.Iterator[ColumnChunk]:
        """Decode only the selected chunks, *seeking past* the payload
        bytes of excluded ones — the I/O half of zone-map pruning."""
        return self.iter_chunk_range(0, self.n_chunks, keep)

    def range_view(self, lo: int, hi: int) -> "ChunkRangeView":
        """A shard of this file: the chunks ``lo <= i < hi`` as their
        own :class:`~repro.pdt.store.EventSource`."""
        return ChunkRangeView(self, lo, hi)

    def zone_maps(self, correlator=None):
        """The stored per-chunk zone maps (v4 trailer or attached
        sidecar), or ``None``; ``correlator`` is ignored — stored zones
        were computed with the same fits at write time."""
        return self._zones

    def attach_sidecar(self) -> bool:
        """Load a ``<trace>.pdtx`` sidecar index if one matches.

        Only path-backed, strictly-read chunked files can attach one
        (a salvaged read must not prune).  The sidecar is ignored —
        returning ``False`` — unless it parses, its CRC verifies, and
        its chunk/record totals match this file exactly.  Returns
        ``True`` when zone maps are available afterwards.
        """
        if self._zones is not None:
            return True
        if (
            self._path is None
            or self._salvaged is not None
            or self._fallback is not None
        ):
            return False
        loaded = read_sidecar(self._path)
        if loaded is None:
            return False
        zones, total = loaded
        if total != self._n_records or len(zones) != len(self._index):
            return False
        self._zones = zones
        return True

    def scan_sync(self):
        """Prefix-only sync collection: one pass that never decodes
        payloads except the single value of each sync record."""
        if self._salvaged is not None:
            return EventSource.scan_sync(self)
        if self._fallback is not None:
            return self._fallback.scan_sync()
        sync_code = ev.code_for_kind(ev.SIDE_SPE, ev.KIND_SYNC).code
        spe_ids: typing.Set[int] = set()
        syncs: typing.Dict[int, typing.List[typing.Tuple[int, int]]] = {}
        handle = self._open()
        try:
            for offset, n_records, payload_bytes, crc in self._index:
                handle.seek(offset)
                payload = handle.read(payload_bytes)
                if crc is not None:
                    _check_chunk_crc(crc, n_records, payload, offset)
                try:
                    for side, code, core, __seq, raw_ts, val_off in iter_prefixes(
                        payload, 0, n_records
                    ):
                        if side != ev.SIDE_SPE:
                            continue
                        spe_ids.add(core)
                        if code == sync_code:
                            (tb_raw,) = _VALUE.unpack_from(payload, val_off)
                            syncs.setdefault(core, []).append((raw_ts, tb_raw))
                except (ValueError, KeyError) as exc:
                    raise TraceFormatError(
                        f"corrupt trace payload: {exc}"
                    ) from exc
        finally:
            self._release(handle)
        return spe_ids, syncs


class ChunkRangeView(EventSource):
    """One shard of a :class:`TraceFileSource`: the half-open chunk
    range ``[lo, hi)`` served as its own :class:`EventSource`.

    The view seeks straight to its range (excluded payloads are never
    read), slices the base's zone maps so pruning inside the shard
    matches what a serial scan would have decided for the same chunks,
    and — deliberately — delegates :meth:`scan_sync` to the *whole*
    base file: clock correlation must always be fitted on the shared
    unpruned prefix, or a record's placed time would depend on which
    shard served it.
    """

    def __init__(self, base: TraceFileSource, lo: int, hi: int):
        total = base.n_chunks
        self.base = base
        self.lo = max(0, min(lo, total))
        self.hi = max(self.lo, min(hi, total))
        self.header = base.header
        self.salvage = base.salvage
        self._counts: typing.Optional[typing.List[int]] = None

    @property
    def n_chunks(self) -> int:
        return self.hi - self.lo

    def chunk_record_counts(self) -> typing.List[int]:
        if self._counts is None:
            self._counts = self.base.chunk_record_counts()[self.lo : self.hi]
        return self._counts

    @property
    def n_records(self) -> int:
        return sum(self.chunk_record_counts())

    def iter_chunks(self) -> typing.Iterator[ColumnChunk]:
        return self.base.iter_chunk_range(self.lo, self.hi)

    def iter_chunks_selected(
        self, keep: typing.Sequence[bool]
    ) -> typing.Iterator[ColumnChunk]:
        return self.base.iter_chunk_range(self.lo, self.hi, keep)

    def zone_maps(self, correlator=None):
        zones = self.base.zone_maps(correlator)
        if zones is None:
            return None
        return zones[self.lo : self.hi]

    def scan_sync(self):
        return self.base.scan_sync()

    def close(self) -> None:
        self.base.close()

    def __enter__(self) -> "ChunkRangeView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_trace(
    path_or_file: typing.Union[str, typing.BinaryIO, bytes],
    strict: bool = True,
    chunk_range: typing.Optional[typing.Tuple[int, int]] = None,
) -> typing.Union[TraceFileSource, "ChunkRangeView"]:
    """Open a trace file for streaming chunk-by-chunk consumption.

    ``strict=False`` salvages a damaged file (see
    :class:`TraceFileSource`); the returned source's ``.salvage``
    carries the :class:`SalvageReport`.  With ``chunk_range=(lo, hi)``
    the result is a :class:`ChunkRangeView` serving only that chunk
    range — the open path shard workers use.  Both forms are context
    managers that close their file handles on exit.
    """
    source = TraceFileSource(path_or_file, strict=strict)
    if chunk_range is None:
        return source
    return source.range_view(*chunk_range)
