"""Trace-file reader — the Trace Analyzer's input stage.

Two entry points:

* :func:`read_trace` — parse a whole file into an in-memory
  :class:`Trace` (compatibility path; both layouts).
* :func:`open_trace` — open a chunked (version-2) trace as a
  :class:`TraceFileSource`, an :class:`EventSource` that decodes one
  chunk at a time so analysis of a multi-million-event trace never
  holds more than O(chunk) records.  Version-1 files transparently
  fall back to a materialized source.
"""

from __future__ import annotations

import io
import struct
import typing

from repro.pdt import events as ev
from repro.pdt.codec import decode_fields, iter_prefixes
from repro.pdt.format import (
    _CHUNK,
    _HEADER,
    _STREAM,
    CHUNKS_UNTIL_EOF,
    MAGIC,
    VERSION_CHUNKED,
    VERSION_LEGACY,
    TraceFormatError,
    check_version,
)
from repro.pdt.store import ColumnChunk, ColumnStore, EventSource
from repro.pdt.trace import Trace, TraceHeader

__all__ = ["TraceFormatError", "read_trace", "open_trace", "TraceFileSource"]

#: One signed 64-bit payload value (the sync record's tb_raw).
_VALUE = struct.Struct("<q")


def _parse_header(blob: bytes) -> typing.Tuple[TraceHeader, int, int]:
    """Parse and sanity-check the header; returns (header, a, b)."""
    if len(blob) < _HEADER.size:
        raise TraceFormatError(f"file too short for header: {len(blob)} bytes")
    (
        magic,
        version,
        n_spes,
        timebase_divider,
        spu_clock_hz,
        groups_bitmap,
        buffer_bytes,
        a,
        b,
    ) = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r} (expected {MAGIC!r})")
    check_version(version)
    header = TraceHeader(
        n_spes=n_spes,
        timebase_divider=timebase_divider,
        spu_clock_hz=spu_clock_hz,
        groups_bitmap=groups_bitmap,
        buffer_bytes=buffer_bytes,
        version=version,
    )
    return header, a, b


def _decode_chunk(blob: bytes, offset: int, n_records: int, payload_bytes: int) -> ColumnChunk:
    chunk = ColumnChunk()
    end = offset + payload_bytes
    # Bound locals: this loop runs once per record in the file.
    sides, codes, cores = chunk.side, chunk.code, chunk.core
    seqs, raws, truths = chunk.seq, chunk.raw_ts, chunk.truth
    vals, offs = chunk.values, chunk.val_off
    try:
        for __ in range(n_records):
            side, code, core, seq, raw_ts, values, offset = decode_fields(blob, offset)
            sides.append(side)
            codes.append(code)
            cores.append(core)
            seqs.append(seq)
            raws.append(raw_ts)
            truths.append(-1)
            vals.extend(values)
            offs.append(len(vals))
    except (ValueError, KeyError) as exc:
        raise TraceFormatError(f"corrupt trace payload: {exc}") from exc
    if offset != end:
        raise TraceFormatError(
            f"chunk payload size mismatch: declared {payload_bytes} bytes, "
            f"decoded {payload_bytes - (end - offset)}"
        )
    return chunk


def _iter_chunk_frames(
    blob: bytes, n_chunks: int
) -> typing.Iterator[typing.Tuple[int, int, int]]:
    """Yield (payload_offset, n_records, payload_bytes) per chunk."""
    offset = _HEADER.size
    seen = 0
    while True:
        if n_chunks == CHUNKS_UNTIL_EOF:
            if offset == len(blob):
                return
        elif seen == n_chunks:
            return
        if offset + _CHUNK.size > len(blob):
            raise TraceFormatError("truncated chunk prefix")
        n_records, payload_bytes = _CHUNK.unpack_from(blob, offset)
        offset += _CHUNK.size
        if offset + payload_bytes > len(blob):
            raise TraceFormatError(
                f"truncated chunk payload at offset {offset}: need "
                f"{payload_bytes} bytes, have {len(blob) - offset}"
            )
        yield offset, n_records, payload_bytes
        offset += payload_bytes
        seen += 1


def read_trace(path_or_file: typing.Union[str, typing.BinaryIO, bytes]) -> Trace:
    """Parse a trace file (path, binary file object, or raw bytes)."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "rb") as handle:
            return read_trace(handle.read())
    if isinstance(path_or_file, (bytes, bytearray)):
        blob = bytes(path_or_file)
    else:
        blob = path_or_file.read()

    header, a, b = _parse_header(blob)
    trace = Trace(header=header)
    if header.version == VERSION_LEGACY:
        _read_legacy_payload(blob, a, b, trace.store)
    else:
        total = 0
        for offset, n_records, payload_bytes in _iter_chunk_frames(blob, a):
            trace.store.adopt_chunk(_decode_chunk(blob, offset, n_records, payload_bytes))
            total += n_records
        if a != CHUNKS_UNTIL_EOF and total != b:
            raise TraceFormatError(
                f"record count mismatch: header says {b}, chunks hold {total}"
            )
    trace.validate()
    return trace


def _read_legacy_payload(blob: bytes, n_ppe: int, n_streams: int, store: ColumnStore) -> None:
    """Version-1 payload: stream directory, then per-stream records."""
    offset = _HEADER.size
    streams: typing.List[typing.Tuple[int, int]] = []
    for __ in range(n_streams):
        if offset + _STREAM.size > len(blob):
            raise TraceFormatError("truncated stream directory")
        spe_id, count = _STREAM.unpack_from(blob, offset)
        streams.append((spe_id, count))
        offset += _STREAM.size
    try:
        for __ in range(n_ppe):
            side, code, core, seq, raw_ts, values, offset = decode_fields(blob, offset)
            store.append(side, code, core, seq, raw_ts, values)
        for spe_id, count in streams:
            for __ in range(count):
                side, code, core, seq, raw_ts, values, offset = decode_fields(blob, offset)
                if core != spe_id:
                    raise TraceFormatError(
                        f"stream for SPE {spe_id} contains a record from "
                        f"core {core}"
                    )
                store.append(side, code, core, seq, raw_ts, values)
    except TraceFormatError:
        raise
    except (ValueError, KeyError) as exc:
        raise TraceFormatError(f"corrupt trace payload: {exc}") from exc


class TraceFileSource(EventSource):
    """A chunked trace file served as an :class:`EventSource`.

    The constructor reads only the header and the chunk *prefixes*
    (seeking over payloads) to build the chunk index; payload bytes are
    decoded lazily, one chunk at a time, during ``iter_chunks``.  Each
    ``iter_chunks`` call opens its own file handle, so several
    iterations (e.g. per-core placement streams feeding a merge) can be
    in flight at once.
    """

    def __init__(self, path_or_file: typing.Union[str, typing.BinaryIO, bytes]):
        self._path: typing.Optional[str] = None
        self._blob: typing.Optional[bytes] = None
        if isinstance(path_or_file, str):
            self._path = path_or_file
        elif isinstance(path_or_file, (bytes, bytearray)):
            self._blob = bytes(path_or_file)
        else:
            # A raw file object cannot be re-opened for repeated
            # iteration, so fall back to holding its bytes.
            self._blob = path_or_file.read()

        with self._open() as handle:
            head = handle.read(_HEADER.size)
            self.header, a, b = _parse_header(head)
            if self.header.version == VERSION_LEGACY:
                # Legacy layout cannot be streamed; materialize once.
                handle.seek(0)
                self._fallback: typing.Optional[EventSource] = read_trace(
                    handle.read()
                ).as_source()
                self._index: typing.List[typing.Tuple[int, int, int]] = []
                self._n_records = self._fallback.n_records
                return
            self._fallback = None
            self._index = self._build_index(handle, a)
            self._n_records = sum(n for __, n, __ in self._index)
            if a != CHUNKS_UNTIL_EOF and self._n_records != b:
                raise TraceFormatError(
                    f"record count mismatch: header says {b}, chunks hold "
                    f"{self._n_records}"
                )

    def _open(self) -> typing.BinaryIO:
        if self._path is not None:
            return open(self._path, "rb")
        assert self._blob is not None
        return io.BytesIO(self._blob)

    @staticmethod
    def _build_index(
        handle: typing.BinaryIO, n_chunks: int
    ) -> typing.List[typing.Tuple[int, int, int]]:
        """Scan chunk prefixes (seeking past payloads) into an index of
        (payload_offset, n_records, payload_bytes)."""
        handle.seek(0, io.SEEK_END)
        size = handle.tell()
        offset = _HEADER.size
        index: typing.List[typing.Tuple[int, int, int]] = []
        while True:
            if n_chunks == CHUNKS_UNTIL_EOF:
                if offset == size:
                    return index
            elif len(index) == n_chunks:
                return index
            if offset + _CHUNK.size > size:
                raise TraceFormatError("truncated chunk prefix")
            handle.seek(offset)
            n_records, payload_bytes = _CHUNK.unpack(handle.read(_CHUNK.size))
            offset += _CHUNK.size
            if offset + payload_bytes > size:
                raise TraceFormatError(
                    f"truncated chunk payload at offset {offset}: need "
                    f"{payload_bytes} bytes, have {size - offset}"
                )
            index.append((offset, n_records, payload_bytes))
            offset += payload_bytes

    @property
    def n_records(self) -> int:
        return self._n_records

    @property
    def n_chunks(self) -> int:
        return len(self._index)

    def iter_chunks(self) -> typing.Iterator[ColumnChunk]:
        if self._fallback is not None:
            yield from self._fallback.iter_chunks()
            return
        with self._open() as handle:
            for offset, n_records, payload_bytes in self._index:
                handle.seek(offset)
                payload = handle.read(payload_bytes)
                if len(payload) != payload_bytes:
                    raise TraceFormatError(
                        f"truncated chunk payload at offset {offset}"
                    )
                yield _decode_chunk(payload, 0, n_records, payload_bytes)

    def scan_sync(self):
        """Prefix-only sync collection: one pass that never decodes
        payloads except the single value of each sync record."""
        if self._fallback is not None:
            return self._fallback.scan_sync()
        sync_code = ev.code_for_kind(ev.SIDE_SPE, ev.KIND_SYNC).code
        spe_ids: typing.Set[int] = set()
        syncs: typing.Dict[int, typing.List[typing.Tuple[int, int]]] = {}
        with self._open() as handle:
            for offset, n_records, payload_bytes in self._index:
                handle.seek(offset)
                payload = handle.read(payload_bytes)
                try:
                    for side, code, core, __seq, raw_ts, val_off in iter_prefixes(
                        payload, 0, n_records
                    ):
                        if side != ev.SIDE_SPE:
                            continue
                        spe_ids.add(core)
                        if code == sync_code:
                            (tb_raw,) = _VALUE.unpack_from(payload, val_off)
                            syncs.setdefault(core, []).append((raw_ts, tb_raw))
                except (ValueError, KeyError) as exc:
                    raise TraceFormatError(
                        f"corrupt trace payload: {exc}"
                    ) from exc
        return spe_ids, syncs


def open_trace(
    path_or_file: typing.Union[str, typing.BinaryIO, bytes]
) -> TraceFileSource:
    """Open a trace file for streaming chunk-by-chunk consumption."""
    return TraceFileSource(path_or_file)
