"""Trace-file reader — the Trace Analyzer's input stage.

Three entry points:

* :func:`read_trace` — parse a whole file into an in-memory
  :class:`Trace` (compatibility path; all layouts).
* :func:`open_trace` — open a chunked (version 2 through 6) trace as
  a :class:`TraceFileSource`, an :class:`EventSource` that decodes one
  chunk at a time so analysis of a multi-million-event trace never
  holds more than O(chunk) records.  Version-1 files transparently
  fall back to a materialized source.  Being a
  :class:`~repro.pdt.handle.HandleSource`, it also serves
  column-projected scans (``iter_chunks_projected``): a query plan's
  required-column set reaches the chunk decoder, and v6 files inflate
  only the compressed sections those columns live in.
* :class:`~repro.pdt.handle.TraceHandle` (via
  :func:`repro.pdt.handle.open_handle`) — the shareable open-trace
  core underneath both: one parse, one clock fit, one zone-map index,
  and a bounded descriptor pool serving any number of concurrent
  :meth:`~repro.pdt.handle.TraceHandle.source` views.  This module's
  :class:`TraceFileSource` is now a thin compatibility wrapper — a
  view that owns a private handle — so the historical single-owner
  API (and its closing semantics) are unchanged.

Version-4 files carry a zone-map index trailer after the last chunk.
A strict read verifies it (CRC, entry count, record total) like any
other part of the file and serves it through
:meth:`TraceFileSource.zone_maps`, which lets :mod:`repro.tq` seek
past chunks a query cannot touch
(:meth:`TraceFileSource.iter_chunks_selected`).  A salvage read never
uses the trailer — once chunks may have been dropped the index no
longer aligns — so a damaged index degrades to a full scan, never to
wrong results.  For v1–v3 files :meth:`TraceFileSource.attach_sidecar`
loads a ``<trace>.pdtx`` sidecar index when one matches the file.

Both accept ``strict=False`` to *salvage* a damaged trace instead of
failing: chunks whose CRC or decode fails are skipped, the valid
record prefix of a truncated final chunk is recovered, the scan
resynchronizes on the next well-formed chunk prefix after damage, and
the result carries a :class:`SalvageReport` (``.salvage``) itemizing
what was lost.  In strict mode (the default) any damage raises
:class:`TraceFormatError` — for version-3 files a single flipped bit
anywhere in the header, a chunk frame, or a payload is detected by the
CRC32 checks; never a silent wrong read.

The low-level parse and salvage machinery historically defined here
(``_parse_header``, ``_salvage_scan``, …) lives in
:mod:`repro.pdt.handle` now and is re-exported under its old names.
"""

from __future__ import annotations

import typing

from repro.pdt.codec import decode_fields
from repro.pdt.format import (
    _HEADER,
    _STREAM,
    CHUNKS_UNTIL_EOF,
    INDEX_MAGIC,
    VERSION_CRC,
    VERSION_INDEXED,
    VERSION_LEGACY,
    TraceFormatError,
    chunk_frame_struct,
    data_offset,
)
from repro.pdt.handle import (  # noqa: F401  (re-exported compatibility names)
    ChunkRangeView,
    FdPool,
    HandleSource,
    SalvageReport,
    TraceHandle,
    _VALUE,
    _check_chunk_crc,
    _check_header_crc,
    _decode_chunk,
    _decode_partial,
    _header_crc_ok,
    _parse_header,
    _plausible_frame,
    _resync_offset,
    _salvage_scan,
    _verify_index_trailer,
    open_handle,
)
from repro.pdt.store import ColumnStore
from repro.pdt.trace import Trace, TraceHeader

__all__ = [
    "TraceFormatError",
    "SalvageReport",
    "read_trace",
    "open_trace",
    "open_handle",
    "TraceHandle",
    "HandleSource",
    "TraceFileSource",
    "ChunkRangeView",
]


def _iter_chunk_frames(
    blob: bytes, version: int, n_chunks: int
) -> typing.Iterator[typing.Tuple[int, int, int, typing.Optional[int]]]:
    """Yield (payload_offset, n_records, payload_bytes, crc) per chunk.

    ``crc`` is ``None`` for version-2 files.
    """
    frame = chunk_frame_struct(version)
    offset = data_offset(version)
    seen = 0
    while True:
        if n_chunks == CHUNKS_UNTIL_EOF:
            if offset == len(blob):
                return
            # A sentinel-header v4 file ends its chunk run at the
            # index trailer rather than at EOF.
            if (
                version >= VERSION_INDEXED
                and blob[offset : offset + len(INDEX_MAGIC)] == INDEX_MAGIC
            ):
                return
        elif seen == n_chunks:
            return
        if offset + frame.size > len(blob):
            raise TraceFormatError("truncated chunk prefix")
        if version >= VERSION_CRC:
            n_records, payload_bytes, crc = frame.unpack_from(blob, offset)
        else:
            n_records, payload_bytes = frame.unpack_from(blob, offset)
            crc = None
        offset += frame.size
        if offset + payload_bytes > len(blob):
            raise TraceFormatError(
                f"truncated chunk payload at offset {offset}: need "
                f"{payload_bytes} bytes, have {len(blob) - offset}"
            )
        yield offset, n_records, payload_bytes, crc
        offset += payload_bytes
        seen += 1


def read_trace(
    path_or_file: typing.Union[str, typing.BinaryIO, bytes],
    strict: bool = True,
) -> Trace:
    """Parse a trace file (path, binary file object, or raw bytes).

    With ``strict=False`` a damaged file is salvaged instead of
    raising: every verifiable chunk is kept and ``trace.salvage``
    holds the :class:`SalvageReport`.  A file whose header cannot be
    parsed at all still raises :class:`TraceFormatError` — there is
    nothing to salvage without the codec parameters.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file, "rb") as handle:
            return read_trace(handle.read(), strict=strict)
    if isinstance(path_or_file, (bytes, bytearray)):
        blob = bytes(path_or_file)
    else:
        blob = path_or_file.read()

    header, a, b = _parse_header(blob)
    trace = Trace(header=header)
    if not strict:
        return _read_salvage(blob, header, a, b, trace)
    if header.version == VERSION_LEGACY:
        _read_legacy_payload(blob, a, b, trace.store)
    else:
        if header.version >= VERSION_CRC:
            _check_header_crc(blob)
        total = 0
        chunks_seen = 0
        end = data_offset(header.version)
        for offset, n_records, payload_bytes, crc in _iter_chunk_frames(
            blob, header.version, a
        ):
            if crc is not None:
                _check_chunk_crc(
                    crc,
                    n_records,
                    memoryview(blob)[offset : offset + payload_bytes],
                    offset,
                )
            trace.store.adopt_chunk(
                _decode_chunk(
                    blob, offset, n_records, payload_bytes, header.version
                )
            )
            total += n_records
            chunks_seen += 1
            end = offset + payload_bytes
        if a != CHUNKS_UNTIL_EOF and total != b:
            raise TraceFormatError(
                f"record count mismatch: header says {b}, chunks hold {total}"
            )
        if header.version >= VERSION_INDEXED:
            _verify_index_trailer(blob, end, chunks_seen, total)
    try:
        trace.validate()
    except ValueError as exc:
        # Structurally decodable but semantically impossible (out-of-
        # order sequence numbers, misattributed streams): damage the
        # version-2 layout cannot catch byte-wise.  Still a format
        # error to the caller — never a silent wrong read.
        raise TraceFormatError(f"trace failed validation: {exc}") from exc
    return trace


def _read_salvage(
    blob: bytes, header: TraceHeader, a: int, b: int, trace: Trace
) -> Trace:
    if header.version == VERSION_LEGACY:
        report = _salvage_legacy(blob, a, b, trace.store)
    else:
        chunks, report = _salvage_scan(blob, header, a, b)
        for chunk in chunks:
            trace.store.adopt_chunk(chunk)
    trace.salvage = report
    try:
        trace.validate()
    except ValueError as exc:
        report.notes.append(f"recovered records failed validation: {exc}")
    return trace


def _read_legacy_payload(blob: bytes, n_ppe: int, n_streams: int, store: ColumnStore) -> None:
    """Version-1 payload: stream directory, then per-stream records."""
    offset = _HEADER.size
    streams: typing.List[typing.Tuple[int, int]] = []
    for __ in range(n_streams):
        if offset + _STREAM.size > len(blob):
            raise TraceFormatError("truncated stream directory")
        spe_id, count = _STREAM.unpack_from(blob, offset)
        streams.append((spe_id, count))
        offset += _STREAM.size
    try:
        for __ in range(n_ppe):
            side, code, core, seq, raw_ts, values, offset = decode_fields(blob, offset)
            store.append(side, code, core, seq, raw_ts, values)
        for spe_id, count in streams:
            for __ in range(count):
                side, code, core, seq, raw_ts, values, offset = decode_fields(blob, offset)
                if core != spe_id:
                    raise TraceFormatError(
                        f"stream for SPE {spe_id} contains a record from "
                        f"core {core}"
                    )
                store.append(side, code, core, seq, raw_ts, values)
    except TraceFormatError:
        raise
    except (ValueError, KeyError) as exc:
        raise TraceFormatError(f"corrupt trace payload: {exc}") from exc


def _salvage_legacy(
    blob: bytes, n_ppe: int, n_streams: int, store: ColumnStore
) -> SalvageReport:
    """Forgiving version-1 read: keep the valid leading records.

    The legacy layout has no frames to resynchronize on, so damage
    costs everything after it; the intact prefix survives.
    """
    report = SalvageReport(version=VERSION_LEGACY)
    size = len(blob)
    offset = _HEADER.size
    streams: typing.List[typing.Tuple[int, int]] = []
    for __ in range(n_streams):
        if offset + _STREAM.size > size:
            report.truncated = True
            report.bad_ranges.append((offset, size))
            report.notes.append("truncated stream directory")
            break
        spe_id, count = _STREAM.unpack_from(blob, offset)
        streams.append((spe_id, count))
        offset += _STREAM.size
    expected = n_ppe + sum(count for __, count in streams)
    recovered = 0
    failure: typing.Optional[str] = None
    for spe_id, count in [(None, n_ppe)] + list(streams):
        for __ in range(count):
            try:
                side, code, core, seq, raw_ts, values, next_off = decode_fields(
                    blob, offset
                )
            except (ValueError, KeyError) as exc:
                failure = str(exc)
                break
            if spe_id is not None and core != spe_id:
                failure = (
                    f"stream for SPE {spe_id} contains a record from core "
                    f"{core}"
                )
                break
            store.append(side, code, core, seq, raw_ts, values)
            recovered += 1
            offset = next_off
        if failure is not None:
            break
    report.records_recovered = recovered
    if failure is not None or recovered < expected:
        report.records_dropped = expected - recovered
        if offset < size or failure is not None:
            report.bad_ranges.append((offset, size))
        else:
            report.truncated = True
        if failure is not None:
            report.notes.append(
                f"legacy payload damaged at offset {offset} ({failure}); "
                f"kept the leading {recovered} records"
            )
        else:
            report.notes.append(
                f"legacy payload truncated: kept {recovered} of "
                f"{expected} records"
            )
    return report


class TraceFileSource(HandleSource):
    """A chunked trace file served as an :class:`EventSource` — the
    historical single-owner API, now a view that owns a private
    :class:`~repro.pdt.handle.TraceHandle`.

    In strict mode (the default) construction reads only the header
    and the chunk *prefixes* (seeking over payloads) to build the chunk
    index; payload bytes are decoded lazily, one chunk at a time,
    during ``iter_chunks`` — and for version-3 files every payload read
    verifies the chunk CRC before decode.  Concurrent iterations (e.g.
    per-core placement streams feeding a merge) each borrow a
    descriptor from the handle's bounded pool.

    With ``strict=False`` the whole file is read and salvage-scanned up
    front (the recovery path trades streaming for resilience); the
    surviving chunks are held in memory and ``.salvage`` carries the
    :class:`SalvageReport`.  In strict mode ``.salvage`` is ``None``.

    ``close()`` closes the private handle — every pooled descriptor,
    including those of abandoned ``iter_chunks`` generators — exactly
    the old single-owner semantics.  To *share* one open trace across
    consumers, open a :class:`~repro.pdt.handle.TraceHandle` instead
    and hand out :meth:`~repro.pdt.handle.TraceHandle.source` views.
    """

    def __init__(
        self,
        path_or_file: typing.Union[str, typing.BinaryIO, bytes],
        strict: bool = True,
    ):
        super().__init__(
            TraceHandle(path_or_file, strict=strict), owns_handle=True
        )


def open_trace(
    path_or_file: typing.Union[str, typing.BinaryIO, bytes],
    strict: bool = True,
    chunk_range: typing.Optional[typing.Tuple[int, int]] = None,
) -> typing.Union[TraceFileSource, "ChunkRangeView"]:
    """Open a trace file for streaming chunk-by-chunk consumption.

    ``strict=False`` salvages a damaged file (see
    :class:`TraceFileSource`); the returned source's ``.salvage``
    carries the :class:`SalvageReport`.  With ``chunk_range=(lo, hi)``
    the result is a :class:`ChunkRangeView` serving only that chunk
    range — the open path shard workers use.  Both forms are context
    managers that close their file handles on exit.
    """
    source = TraceFileSource(path_or_file, strict=strict)
    if chunk_range is None:
        return source
    return source.range_view(*chunk_range)
