"""PDT — the Performance Debugging Tool (the paper's contribution, part 1).

PDT records significant events during program execution, maintains the
sequential order of events, and preserves runtime information such as
core assignment and relative timing (abstract, Biberstein et al. 2008).
The implementation mirrors the real tool's architecture:

* **Instrumented runtime library** — :class:`PdtHooks` implements the
  :class:`repro.libspe.RuntimeHooks` seam, so every traced operation
  passes through it exactly where the real PDT's instrumented libspe /
  SPU macros sit.
* **SPE-side trace buffer in local store** — records are written into
  a reserved LS region and flushed to main storage by the SPE's own
  MFC (double-buffered by default).  Tracing therefore *costs* SPU
  cycles, LS bytes, and EIB bandwidth inside the simulation — the
  perturbation the paper quantifies is real here, not estimated.
* **Event groups** — :class:`TraceConfig` enables/disables groups
  (lifecycle, DMA, mailbox, signal, user), reproducing PDT's
  configuration file mechanism.
* **Self-describing binary trace files** — :mod:`repro.pdt.writer` /
  :mod:`repro.pdt.reader`.
* **Clock correlation** — SPU events carry raw decrementer values,
  PPE events raw timebase values; :class:`ClockCorrelator` fits the
  per-SPE clock maps from sync records, the step the Trace Analyzer
  needs before it can draw one timeline.
"""

from repro.pdt.config import TraceConfig
from repro.pdt.correlate import ClockCorrelator, CorrelatedTrace
from repro.pdt.events import (
    EVENT_SPECS,
    EventSpec,
    TraceRecord,
    code_for_kind,
    spec_for_code,
)
from repro.pdt.reader import read_trace
from repro.pdt.trace import Trace, TraceHeader
from repro.pdt.tracer import PdtHooks, TracingStats
from repro.pdt.writer import write_trace

__all__ = [
    "ClockCorrelator",
    "CorrelatedTrace",
    "EVENT_SPECS",
    "EventSpec",
    "PdtHooks",
    "Trace",
    "TraceConfig",
    "TraceHeader",
    "TraceRecord",
    "TracingStats",
    "code_for_kind",
    "read_trace",
    "spec_for_code",
    "write_trace",
]
