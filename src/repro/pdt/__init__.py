"""PDT — the Performance Debugging Tool (the paper's contribution, part 1).

PDT records significant events during program execution, maintains the
sequential order of events, and preserves runtime information such as
core assignment and relative timing (abstract, Biberstein et al. 2008).
The implementation mirrors the real tool's architecture:

* **Instrumented runtime library** — :class:`PdtHooks` implements the
  :class:`repro.libspe.RuntimeHooks` seam, so every traced operation
  passes through it exactly where the real PDT's instrumented libspe /
  SPU macros sit.
* **SPE-side trace buffer in local store** — records are written into
  a reserved LS region and flushed to main storage by the SPE's own
  MFC (double-buffered by default).  Tracing therefore *costs* SPU
  cycles, LS bytes, and EIB bandwidth inside the simulation — the
  perturbation the paper quantifies is real here, not estimated.
* **Event groups** — :class:`TraceConfig` enables/disables groups
  (lifecycle, DMA, mailbox, signal, user), reproducing PDT's
  configuration file mechanism.
* **Columnar chunk store** — the :class:`EventSink` / :class:`EventSource`
  spine (:mod:`repro.pdt.store`): recorded events live in parallel
  ``array`` columns chunked at ~64K records, and every consumer from
  the file writer to the analyzer streams those chunks instead of
  materializing record objects.
* **Self-describing binary trace files** — :mod:`repro.pdt.writer` /
  :mod:`repro.pdt.reader`; the chunked layout (:func:`open_trace`,
  :class:`ChunkWriter`) reads and writes in O(chunk) memory.
* **Clock correlation** — SPU events carry raw decrementer values,
  PPE events raw timebase values; :class:`ClockCorrelator` fits the
  per-SPE clock maps from sync records, the step the Trace Analyzer
  needs before it can draw one timeline.
"""

from repro.pdt.config import TraceConfig
from repro.pdt.correlate import ClockCorrelator, CorrelatedTrace, PlacedEvent
from repro.pdt.events import (
    EVENT_SPECS,
    EventSpec,
    TraceRecord,
    code_for_kind,
    spec_for_code,
)
from repro.pdt.format import TraceFormatError
from repro.pdt.index import (
    IndexAccumulator,
    ZoneMap,
    build_zone_maps,
    read_sidecar,
    sidecar_path,
    write_sidecar,
)
from repro.pdt.handle import FdPool, HandleSource, TraceHandle, open_handle
from repro.pdt.reader import (
    ChunkRangeView,
    SalvageReport,
    TraceFileSource,
    open_trace,
    read_trace,
)
from repro.pdt.store import (
    CHUNK_RECORDS,
    ColumnChunk,
    ColumnStore,
    ConcatSource,
    EventSink,
    EventSource,
    StoreSource,
)
from repro.pdt.trace import Trace, TraceHeader
from repro.pdt.tracer import PdtHooks, TracingStats
from repro.pdt.writer import ChunkWriter, write_trace

__all__ = [
    "CHUNK_RECORDS",
    "ChunkRangeView",
    "ChunkWriter",
    "ClockCorrelator",
    "ColumnChunk",
    "ColumnStore",
    "ConcatSource",
    "CorrelatedTrace",
    "EVENT_SPECS",
    "EventSink",
    "EventSource",
    "EventSpec",
    "FdPool",
    "HandleSource",
    "IndexAccumulator",
    "PdtHooks",
    "PlacedEvent",
    "SalvageReport",
    "StoreSource",
    "Trace",
    "TraceConfig",
    "TraceFileSource",
    "TraceFormatError",
    "TraceHandle",
    "TraceHeader",
    "TraceRecord",
    "TracingStats",
    "ZoneMap",
    "build_zone_maps",
    "code_for_kind",
    "open_handle",
    "open_trace",
    "read_sidecar",
    "read_trace",
    "sidecar_path",
    "spec_for_code",
    "write_sidecar",
]
