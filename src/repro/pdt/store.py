"""The columnar chunk store: the trace data path's one spine.

The seed kept every trace record as a Python object in a list, so both
memory and analysis time scaled with trace volume times the (large)
per-object overhead.  This module replaces that with two small
interfaces and one concrete container:

* :class:`EventSink` — accepts records one at a time, as raw
  components or encoded bytes.  Implemented by :class:`ColumnStore`
  (in-memory) and :class:`repro.pdt.writer.ChunkWriter` (straight to
  disk).  The tracer's record hot path and the flush-DMA read-back
  path both talk to sinks.
* :class:`EventSource` — serves records chunk by chunk for streaming
  consumers.  Implemented by :class:`StoreSource` /
  :class:`ConcatSource` (in-memory) and
  :class:`repro.pdt.reader.TraceFileSource` (on-disk, O(chunk)
  memory).  Everything downstream — correlation, timeline
  reconstruction, statistics, the CLI — iterates chunks.

A :class:`ColumnChunk` holds up to :data:`CHUNK_RECORDS` records as
parallel ``array`` columns (side, code, core, seq, raw timestamp,
ground-truth time, payload offsets, payload values), costing ~30 bytes
per record instead of several hundred for a ``TraceRecord`` with its
fields dict.  Records materialize to :class:`TraceRecord` objects only
at explicit compatibility boundaries (``Trace.ppe_records`` etc.).
"""

from __future__ import annotations

import abc
import bisect
import typing
from array import array
from collections import Counter

import numpy as np

from repro.pdt import codec
from repro.pdt.events import (
    KIND_SYNC,
    SIDE_PPE,
    SIDE_SPE,
    TraceRecord,
    code_for_kind,
    spec_for_code,
)

if typing.TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.pdt.trace import TraceHeader

#: Records per chunk (~64K): large enough to amortize per-chunk cost,
#: small enough that one in-flight chunk is a few MB at most.
CHUNK_RECORDS = 65536


class ColumnChunk:
    """Up to :data:`CHUNK_RECORDS` records as parallel columns.

    ``val_off`` is a prefix-offset column of length ``n + 1``: record
    ``i``'s payload values are ``values[val_off[i]:val_off[i + 1]]``.
    ``truth`` carries the debug-only ground-truth simulation time
    (-1 when unknown; never serialized).
    """

    __slots__ = ("side", "code", "core", "seq", "raw_ts", "truth", "val_off",
                 "values")

    def __init__(self) -> None:
        self.side = array("B")
        self.code = array("B")
        self.core = array("H")
        self.seq = array("L")
        self.raw_ts = array("Q")
        self.truth = array("q")
        self.val_off = array("L", [0])
        self.values = array("q")

    def __len__(self) -> int:
        return len(self.side)

    def append(
        self, side: int, code: int, core: int, seq: int, raw_ts: int,
        values: typing.Sequence[int], truth: int = -1,
    ) -> None:
        self.side.append(side)
        self.code.append(code)
        self.core.append(core)
        self.seq.append(seq)
        self.raw_ts.append(raw_ts)
        self.truth.append(truth)
        self.values.extend(values)
        self.val_off.append(len(self.values))

    def record_values(self, i: int) -> array:
        return self.values[self.val_off[i] : self.val_off[i + 1]]

    def n_fields(self, i: int) -> int:
        return self.val_off[i + 1] - self.val_off[i]

    def record(self, i: int) -> TraceRecord:
        """Materialize record ``i`` as a compatibility object."""
        side, code = self.side[i], self.code[i]
        spec = spec_for_code(side, code)
        return TraceRecord(
            side=side,
            code=code,
            core=self.core[i],
            seq=self.seq[i],
            raw_ts=self.raw_ts[i],
            fields=dict(zip(spec.fields, self.record_values(i))),
            truth_time=self.truth[i],
        )

    def slice(self, start: int, stop: int) -> "ColumnChunk":
        """A new chunk holding rows [start, stop) (columns copied)."""
        piece = ColumnChunk()
        piece.side = self.side[start:stop]
        piece.code = self.code[start:stop]
        piece.core = self.core[start:stop]
        piece.seq = self.seq[start:stop]
        piece.raw_ts = self.raw_ts[start:stop]
        piece.truth = self.truth[start:stop]
        base = self.val_off[start]
        piece.val_off = array("L", (o - base for o in self.val_off[start : stop + 1]))
        piece.values = self.values[base : self.val_off[stop]]
        return piece

    def extend_run(
        self, batch: "codec.DecodedBatch", start: int = 0,
        stop: typing.Optional[int] = None,
    ) -> None:
        """Bulk-append rows [start, stop) of a decoded batch.

        Every column lands via one byte copy (``array.frombytes``) and
        the offset rebase is one vectorized add — no per-record method
        call survives on the ingest path.  ``truth`` is unknown for
        decoded records, so it fills with -1 (all-ones bytes).
        """
        if stop is None:
            stop = batch.count
        k = stop - start
        if k <= 0:
            return
        self.side.frombytes(batch.sides[start:stop].tobytes())
        self.code.frombytes(batch.codes[start:stop].tobytes())
        self.core.frombytes(batch.cores[start:stop].tobytes())
        self.seq.frombytes(
            batch.seqs[start:stop].astype(codec.SEQ_DTYPE).tobytes()
        )
        self.raw_ts.frombytes(batch.raws[start:stop].tobytes())
        self.truth.frombytes(b"\xff" * (8 * k))
        base = self.val_off[-1]
        lo = int(batch.val_off[start])
        hi = int(batch.val_off[stop])
        self.values.frombytes(batch.values[lo:hi].tobytes())
        rebased = batch.val_off[start + 1 : stop + 1] + (base - lo)
        self.val_off.frombytes(rebased.astype(codec.OFF_DTYPE).tobytes())

    def extend_rows(self, other: "ColumnChunk", start: int, stop: int) -> None:
        """Bulk-append rows [start, stop) of another chunk (columnar
        copy, ``truth`` included)."""
        if stop <= start:
            return
        self.side.extend(other.side[start:stop])
        self.code.extend(other.code[start:stop])
        self.core.extend(other.core[start:stop])
        self.seq.extend(other.seq[start:stop])
        self.raw_ts.extend(other.raw_ts[start:stop])
        self.truth.extend(other.truth[start:stop])
        base = self.val_off[-1]
        lo = other.val_off[start]
        hi = other.val_off[stop]
        self.values.extend(other.values[lo:hi])
        offs = np.frombuffer(other.val_off, codec.OFF_DTYPE)
        rebased = offs[start + 1 : stop + 1].astype(np.int64) + (base - lo)
        self.val_off.frombytes(rebased.astype(codec.OFF_DTYPE).tobytes())


#: Column names a projection mask may reference, in v6 wire-section
#: order.  ``truth`` and ``val_off`` are not maskable: ``truth`` is
#: debug-only (never serialized) and ``val_off`` travels with
#: ``values`` (offsets are meaningless without the payload they index).
CHUNK_COLUMNS = ("raw_ts", "seq", "side", "code", "core", "values")


class LazyChunk(ColumnChunk):
    """A :class:`ColumnChunk` whose columns materialize on first access.

    Decoders hand a lazy chunk the columns a query plan requested as
    already-built ``array`` objects (:meth:`set_column`) and the rest
    as *thunks* (:meth:`defer`) that decode the column when — and only
    if — something touches it.  Downstream code cannot tell the
    difference: every column reads as the same stdlib ``array`` type a
    fully decoded chunk holds, so scalar paths keep getting Python
    ints (never ``np.int64``) out of subscripts.

    A thunk may fill several columns at once (``values`` and
    ``val_off`` always travel together); the per-column getters simply
    re-check the slot after running whichever thunk is registered for
    the missing name.  Touching a column that has neither a value nor
    a thunk — a cache-assembled chunk missing a column the plan never
    requested — raises ``RuntimeError`` naming the column, so a plan
    that under-declares its columns fails loudly instead of reading
    garbage.
    """

    __slots__ = ("_n", "_thunks")

    def __init__(self, n_records: int) -> None:
        self._n = n_records
        self._thunks: typing.Dict[str, typing.Callable[["LazyChunk"], None]]
        self._thunks = {"truth": _default_truth}

    def __len__(self) -> int:
        return self._n

    def set_column(self, name: str, value: array) -> None:
        """Install an already-materialized column."""
        getattr(ColumnChunk, name).__set__(self, value)

    def defer(
        self, name: str, thunk: typing.Callable[["LazyChunk"], None]
    ) -> None:
        """Register ``thunk`` to fill ``name`` (and possibly siblings)
        on first access; it must :meth:`set_column` at least ``name``."""
        self._thunks[name] = thunk

    def materialized(self, name: str) -> bool:
        """Whether ``name`` is already decoded (no thunk would run)."""
        try:
            getattr(ColumnChunk, name).__get__(self)
        except AttributeError:
            return False
        return True


def _default_truth(chunk: LazyChunk) -> None:
    # Decoded records have no ground-truth time: all -1 (all-ones).
    truth = array("q")
    truth.frombytes(b"\xff" * (8 * len(chunk)))
    chunk.set_column("truth", truth)


def _lazy_column(name: str) -> property:
    slot = getattr(ColumnChunk, name)

    def fget(self: LazyChunk):
        try:
            return slot.__get__(self)
        except AttributeError:
            pass
        thunk = self._thunks.get(name)
        if thunk is None:
            raise RuntimeError(
                f"column {name!r} was not decoded for this chunk: the "
                "query plan's required-column set did not include it "
                "(set REPRO_FULL_DECODE=1 to force full decode)"
            )
        thunk(self)
        return slot.__get__(self)

    def fset(self: LazyChunk, value) -> None:
        slot.__set__(self, value)

    return property(fget, fset)


for _name in ColumnChunk.__slots__:
    setattr(LazyChunk, _name, _lazy_column(_name))
del _name


class EventSink(abc.ABC):
    """Accepts trace records: the recording half of the spine."""

    @abc.abstractmethod
    def append(
        self, side: int, code: int, core: int, seq: int, raw_ts: int,
        values: typing.Sequence[int], truth: int = -1,
    ) -> None:
        """Accept one record as raw components (the hot path)."""

    def add_record(self, record: TraceRecord) -> None:
        """Accept one materialized record (compatibility path)."""
        self.append(
            record.side, record.code, record.core, record.seq, record.raw_ts,
            record.field_values(), record.truth_time,
        )

    def append_encoded(self, buffer: bytes, offset: int = 0) -> int:
        """Decode consecutive codec-encoded records from ``buffer``
        straight into the sink (the flush-DMA read-back path); returns
        the offset after the last record consumed."""
        decode = codec.decode_fields
        end = len(buffer)
        while offset < end:
            side, code, core, seq, raw_ts, values, offset = decode(buffer, offset)
            self.append(side, code, core, seq, raw_ts, values)
        return offset

    def close(self) -> None:
        """Flush any buffered state; the sink accepts no more records."""


class EventSource(abc.ABC):
    """Serves records chunk by chunk: the analysis half of the spine.

    ``iter_chunks`` must support *repeated* calls, each starting a
    fresh iteration — multi-pass consumers (clock fitting, then
    placement) and concurrent per-core merges rely on it.
    """

    header: "TraceHeader"

    @abc.abstractmethod
    def iter_chunks(self) -> typing.Iterator[ColumnChunk]:
        """Iterate the trace's chunks in recording order."""

    @property
    @abc.abstractmethod
    def n_records(self) -> int:
        """Total record count."""

    def zone_maps(self, correlator=None):
        """Per-chunk :class:`~repro.pdt.index.ZoneMap` summaries, or
        ``None`` when the source has no pruning information.

        When a list is returned it aligns 1:1, in order, with the
        chunks :meth:`iter_chunks` yields.  In-memory sources compute
        exact zones on demand (pass the trace's correlator to get time
        bounds; without one only SPE/code presence is known);
        file-backed sources return the zones stored in the v4 trailer
        or an attached sidecar, ignoring ``correlator``.
        """
        return None

    def iter_chunks_selected(
        self, keep: typing.Sequence[bool]
    ) -> typing.Iterator[ColumnChunk]:
        """Iterate only the chunks whose position has ``keep[i]`` true.

        ``keep`` aligns with :meth:`iter_chunks` (and thus with
        :meth:`zone_maps`); positions beyond ``len(keep)`` are kept, so
        a stale/short mask degrades to scanning, never to dropping.
        The default skips after decode; file-backed sources override it
        to seek past excluded payloads without reading them.
        """
        for ci, chunk in enumerate(self.iter_chunks()):
            if ci < len(keep) and not keep[ci]:
                continue
            yield chunk

    def iter_chunks_projected(
        self,
        keep: typing.Optional[typing.Sequence[bool]],
        columns: typing.Optional[typing.FrozenSet[str]],
    ) -> typing.Iterator[ColumnChunk]:
        """Iterate kept chunks, decoding only ``columns`` when the
        source can (projection pushdown).

        ``columns`` is a subset of :data:`CHUNK_COLUMNS` or ``None``
        for every column.  The default ignores it — a fully decoded
        chunk satisfies any mask — so in-memory sources stay correct
        for free; file-backed sources override this to skip
        decompressing and materializing unrequested sections.
        """
        if keep is None:
            return self.iter_chunks()
        return self.iter_chunks_selected(keep)

    def iter_records(self) -> typing.Iterator[TraceRecord]:
        """Materialize records one at a time (compatibility helper)."""
        for chunk in self.iter_chunks():
            for i in range(len(chunk)):
                yield chunk.record(i)

    def scan_sync(
        self,
    ) -> typing.Tuple[
        typing.Set[int], typing.Dict[int, typing.List[typing.Tuple[int, int]]]
    ]:
        """One pass collecting what clock correlation needs.

        Returns ``(spe_ids, syncs)`` where ``spe_ids`` is every SPE core
        with at least one record and ``syncs`` maps each core to its
        ``(dec_raw, tb_raw)`` sync pairs in recording order.  File-backed
        sources override this with a prefix-only walk that skips the
        column build entirely.
        """
        sync_code = code_for_kind(SIDE_SPE, KIND_SYNC).code
        spe_ids: typing.Set[int] = set()
        syncs: typing.Dict[int, typing.List[typing.Tuple[int, int]]] = {}
        for chunk in self.iter_chunks():
            off = chunk.val_off
            for i in range(len(chunk)):
                if chunk.side[i] != SIDE_SPE:
                    continue
                core = chunk.core[i]
                spe_ids.add(core)
                if chunk.code[i] == sync_code:
                    syncs.setdefault(core, []).append(
                        (chunk.raw_ts[i], chunk.values[off[i]])
                    )
        return spe_ids, syncs


class ColumnStore(EventSink):
    """In-memory columnar chunk store (sink side, plus chunk access).

    Appended records fill the open tail chunk; full chunks are sealed.
    Sealed chunks may have heterogeneous sizes when adopted from a
    reader, so random access goes through a cumulative row index.
    """

    def __init__(self, chunk_records: int = CHUNK_RECORDS):
        if chunk_records < 1:
            raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
        self.chunk_records = chunk_records
        self._chunks: typing.List[ColumnChunk] = [ColumnChunk()]
        #: cumulative record count at the start of each chunk
        self._starts: typing.List[int] = [0]
        #: (side, core) -> record count
        self._counts: typing.Dict[typing.Tuple[int, int], int] = {}

    # -- sink --------------------------------------------------------
    def append(
        self, side: int, code: int, core: int, seq: int, raw_ts: int,
        values: typing.Sequence[int], truth: int = -1,
    ) -> None:
        tail = self._chunks[-1]
        if len(tail) >= self.chunk_records:
            self._starts.append(self._starts[-1] + len(tail))
            tail = ColumnChunk()
            self._chunks.append(tail)
        tail.append(side, code, core, seq, raw_ts, values, truth)
        key = (side, core)
        self._counts[key] = self._counts.get(key, 0) + 1

    def _merge_counts(
        self, pairs: typing.Iterable[typing.Tuple[int, int]]
    ) -> None:
        """Bulk-merge (side, core) pairs into ``_counts``: one Counter
        pass over the pairs (C-level), then one dict update per
        *distinct* pair instead of one per record."""
        for key, n in Counter(pairs).items():
            self._counts[key] = self._counts.get(key, 0) + n

    def adopt_chunk(self, chunk: ColumnChunk) -> None:
        """Take ownership of a decoded chunk wholesale (reader path)."""
        if not chunk:
            return
        tail = self._chunks[-1]
        if len(tail) == 0:
            self._chunks[-1] = chunk
        else:
            self._starts.append(self._starts[-1] + len(tail))
            self._chunks.append(chunk)
        self._merge_counts(zip(chunk.side, chunk.core))

    def _open_tail(self) -> ColumnChunk:
        tail = self._chunks[-1]
        if len(tail) >= self.chunk_records:
            self._starts.append(self._starts[-1] + len(tail))
            tail = ColumnChunk()
            self._chunks.append(tail)
        return tail

    def extend_from(self, other: "ColumnStore", start: int = 0) -> None:
        """Append rows [start:] of another store (columnar bulk copy:
        each source chunk lands as a few array-slice extends split at
        this store's chunk boundaries, never row by row)."""
        for chunk in other.iter_chunks(start=start):
            pos, n = 0, len(chunk)
            while pos < n:
                tail = self._open_tail()
                take = min(self.chunk_records - len(tail), n - pos)
                tail.extend_rows(chunk, pos, pos + take)
                pos += take
            self._merge_counts(zip(chunk.side, chunk.core))

    def append_encoded(self, buffer: bytes, offset: int = 0) -> int:
        """Batch ingest of encoded records (the flush-DMA read-back
        path): one :func:`codec.decode_batch` for the whole buffer,
        split at chunk boundaries with bulk appends.  Falls back to the
        generic scalar loop when the batch decoder cannot prove the
        buffer clean, preserving exact error behavior."""
        batch = codec.decode_batch(buffer, offset)
        if batch is None:
            return super().append_encoded(buffer, offset)
        pos = 0
        while pos < batch.count:
            tail = self._open_tail()
            take = min(self.chunk_records - len(tail), batch.count - pos)
            tail.extend_run(batch, pos, pos + take)
            pos += take
        packed = (batch.sides.astype(np.int64) << 32) | batch.cores
        pairs, counts = np.unique(packed, return_counts=True)
        for pair, n in zip(pairs.tolist(), counts.tolist()):
            key = (pair >> 32, pair & 0xFFFF_FFFF)
            self._counts[key] = self._counts.get(key, 0) + n
        return batch.next_offset

    # -- access ------------------------------------------------------
    def __len__(self) -> int:
        return self._starts[-1] + len(self._chunks[-1])

    @property
    def n_records(self) -> int:
        return len(self)

    def cores(self) -> typing.List[typing.Tuple[int, int]]:
        """Sorted (side, core) pairs with at least one record."""
        return sorted(self._counts)

    def spe_ids(self) -> typing.List[int]:
        return sorted(c for s, c in self._counts if s == SIDE_SPE)

    def has_ppe(self) -> bool:
        return any(s == SIDE_PPE for s, __ in self._counts)

    def _locate(self, i: int) -> typing.Tuple[ColumnChunk, int]:
        if not 0 <= i < len(self):
            raise IndexError(f"record index {i} out of range (n={len(self)})")
        ci = bisect.bisect_right(self._starts, i) - 1
        return self._chunks[ci], i - self._starts[ci]

    def record_at(self, i: int) -> TraceRecord:
        chunk, row = self._locate(i)
        return chunk.record(row)

    def n_fields_at(self, i: int) -> int:
        chunk, row = self._locate(i)
        return chunk.n_fields(row)

    def raw_ts_at(self, i: int) -> int:
        """Raw timestamp of record ``i`` without materializing it."""
        chunk, row = self._locate(i)
        return chunk.raw_ts[row]

    def iter_chunks(self, start: int = 0) -> typing.Iterator[ColumnChunk]:
        """Chunks in order; ``start`` skips that many leading records
        (the first yielded chunk is then a sliced copy)."""
        for ci, chunk in enumerate(self._chunks):
            if not len(chunk):
                continue
            chunk_start = self._starts[ci]
            if start >= chunk_start + len(chunk):
                continue
            if start > chunk_start:
                yield chunk.slice(start - chunk_start, len(chunk))
            else:
                yield chunk


class _ComputedZonesMixin:
    """Exact on-demand zone maps for in-memory sources.

    The zones are rebuilt (and re-cached) whenever the record count or
    the correlator identity changes, so a still-growing store never
    serves a stale mask longer than one query.
    """

    _zone_cache: typing.Optional[typing.Tuple[int, int, list]] = None

    def zone_maps(self, correlator=None):
        from repro.pdt.index import build_zone_maps

        key = (self.n_records, id(correlator))
        cached = self._zone_cache
        if cached is not None and cached[:2] == key:
            return cached[2]
        zones = build_zone_maps(self.iter_chunks(), correlator)
        self._zone_cache = (key[0], key[1], zones)
        return zones


class StoreSource(_ComputedZonesMixin, EventSource):
    """An :class:`EventSource` view over one header + store pair."""

    def __init__(self, header: "TraceHeader", store: ColumnStore):
        self.header = header
        self.store = store
        self._zone_cache = None

    def iter_chunks(self) -> typing.Iterator[ColumnChunk]:
        return self.store.iter_chunks()

    @property
    def n_records(self) -> int:
        return len(self.store)


class ConcatSource(_ComputedZonesMixin, EventSource):
    """Several (store, start_row) segments served as one source.

    Lets :class:`repro.pdt.tracer.PdtHooks` expose the PPE buffer and
    every SPE context's retained records as one stream without copying
    them into a merged store first.
    """

    def __init__(
        self,
        header: "TraceHeader",
        parts: typing.Sequence[typing.Tuple[ColumnStore, int]],
    ):
        self.header = header
        self.parts = list(parts)
        self._zone_cache = None

    def iter_chunks(self) -> typing.Iterator[ColumnChunk]:
        for store, start in self.parts:
            yield from store.iter_chunks(start=start)

    @property
    def n_records(self) -> int:
        return sum(max(len(store) - start, 0) for store, start in self.parts)
