"""TraceHandle — the shareable, concurrency-safe open-trace core.

Before this module existed every consumer of a trace file went through
:func:`repro.pdt.open_trace` and privately owned the result: its file
descriptors, its header/trailer parse, its clock-correlator fit, its
zone-map index.  Nothing could be shared between two queries over the
same trace, so a long-running analysis service would have re-parsed
and re-fitted the same file once per request.

The ownership model is now inverted:

* :class:`TraceHandle` owns the *immutable* facts of one open trace —
  the parsed header, the chunk frame index, the zone maps (trailer or
  sidecar), the salvage report, and the lazily-fitted
  :class:`~repro.pdt.correlate.ClockCorrelator` — plus a bounded
  :class:`FdPool` of file descriptors.  A handle is safe for any
  number of concurrent readers: all mutable state (the pool, the
  one-shot fit, sidecar attachment) is lock-protected, and everything
  else is written once during construction.
* :meth:`TraceHandle.source` is a cheap factory for
  :class:`HandleSource` views — ordinary
  :class:`~repro.pdt.store.EventSource` objects that *borrow*
  descriptors from the pool during iteration instead of opening their
  own.  ``source(chunk_range=(lo, hi))`` serves one shard.
* :class:`repro.pdt.reader.TraceFileSource` (and therefore
  :func:`repro.pdt.open_trace`) survives as a compatibility wrapper: a
  ``HandleSource`` that owns a private handle, so existing callers —
  and the differential test matrix — see exactly the old behavior,
  closing semantics included.

The low-level parse and salvage machinery (header/CRC checks, chunk
decode, the resynchronizing salvage scan) lives here too, moved from
:mod:`repro.pdt.reader`, which re-exports it.
"""

from __future__ import annotations

import dataclasses
import io
import mmap
import struct
import threading
import time
import typing

import numpy as np

from repro.pdt import codec, colenc
from repro.pdt import events as ev
from repro.pdt.codec import decode_fields, iter_prefixes
from repro.pdt.format import (
    _HEADER,
    _U32,
    _V5_PAYLOAD,
    CHUNKS_UNTIL_EOF,
    CODEC_NONE,
    ENC_RECORDS,
    INDEX_MAGIC,
    MAGIC,
    VERSION_CHUNKED,
    VERSION_COMPRESSED,
    VERSION_CRC,
    VERSION_INDEXED,
    VERSION_LEGACY,
    TraceFormatError,
    check_version,
    chunk_crc32,
    chunk_frame_struct,
    data_offset,
    header_crc32,
)
from repro.pdt.index import (
    _IDX_HEADER,
    ZoneMap,
    decode_index,
    index_size,
    read_sidecar,
)
from repro.pdt.store import ColumnChunk, EventSource
from repro.pdt.trace import Trace, TraceHeader

__all__ = [
    "SalvageReport",
    "FdPool",
    "TraceHandle",
    "HandleSource",
    "ChunkRangeView",
    "open_handle",
]

#: One signed 64-bit payload value (the sync record's tb_raw).
_VALUE = struct.Struct("<q")

#: Default cap on descriptors a handle's pool may hold open at once.
DEFAULT_POOL_CAP = 8


@dataclasses.dataclass
class SalvageReport:
    """What a non-strict read recovered and what it lost.

    ``bad_ranges`` lists half-open ``(start, end)`` byte ranges of the
    file that were skipped as damaged (or cut off by truncation);
    ``records_dropped`` counts records inside chunks that failed their
    CRC/decode, while ``records_missing`` counts records the header
    promised that no surviving or damaged chunk accounts for (e.g. a
    truncated prefix swallowed them).

    ``growing`` marks a file that looks *live* rather than damaged: a
    v4/v5 file still carrying the :data:`CHUNKS_UNTIL_EOF` sentinel
    header with no index trailer yet is one a writer has not closed, so
    a clean torn tail (incomplete frame or payload at EOF) is "not
    written yet", not loss — those bytes are counted in
    ``tail_pending_bytes`` instead of ``bad_ranges`` and the records in
    them are withheld, never partially recovered or counted dropped.
    """

    version: int
    chunks_recovered: int = 0
    chunks_dropped: int = 0
    records_recovered: int = 0
    records_dropped: int = 0
    records_missing: int = 0
    tail_records_recovered: int = 0
    resyncs: int = 0
    truncated: bool = False
    growing: bool = False
    tail_pending_bytes: int = 0
    header_damaged: bool = False
    bad_ranges: typing.List[typing.Tuple[int, int]] = dataclasses.field(
        default_factory=list
    )
    notes: typing.List[str] = dataclasses.field(default_factory=list)

    @property
    def records_lost(self) -> int:
        """Records known or presumed destroyed by the damage."""
        return self.records_dropped + self.records_missing

    @property
    def bytes_skipped(self) -> int:
        return sum(end - start for start, end in self.bad_ranges)

    @property
    def damaged(self) -> bool:
        return bool(
            self.chunks_dropped
            or self.records_lost
            or self.truncated
            or self.header_damaged
            or self.bad_ranges
        )

    def summary(self) -> str:
        """One line for CLI output."""
        if not self.damaged:
            line = (
                f"trace intact: {self.records_recovered} records in "
                f"{self.chunks_recovered} chunks, nothing to salvage"
            )
            if self.growing:
                line += (
                    f"; file is still growing "
                    f"({self.tail_pending_bytes} bytes pending)"
                )
            return line
        parts = [
            f"recovered {self.records_recovered} records in "
            f"{self.chunks_recovered} chunks",
            f"dropped {self.chunks_dropped} corrupt chunks",
            f"lost {self.records_lost} records "
            f"({self.bytes_skipped} damaged bytes)",
        ]
        if self.truncated:
            parts.append("file is truncated")
        if self.growing:
            parts.append(
                f"file is still growing ({self.tail_pending_bytes} bytes "
                "pending)"
            )
        if self.header_damaged:
            parts.append("header failed its CRC")
        return "; ".join(parts)


def _parse_header(blob: bytes) -> typing.Tuple[TraceHeader, int, int]:
    """Parse and sanity-check the header; returns (header, a, b)."""
    if len(blob) < _HEADER.size:
        raise TraceFormatError(f"file too short for header: {len(blob)} bytes")
    (
        magic,
        version,
        n_spes,
        timebase_divider,
        spu_clock_hz,
        groups_bitmap,
        buffer_bytes,
        a,
        b,
    ) = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r} (expected {MAGIC!r})")
    check_version(version)
    header = TraceHeader(
        n_spes=n_spes,
        timebase_divider=timebase_divider,
        spu_clock_hz=spu_clock_hz,
        groups_bitmap=groups_bitmap,
        buffer_bytes=buffer_bytes,
        version=version,
    )
    return header, a, b


def _check_header_crc(head: bytes) -> None:
    """Strict v3: verify the header CRC32 trailer."""
    if len(head) < _HEADER.size + _U32.size:
        raise TraceFormatError("file too short for version-3 header CRC")
    (stored,) = _U32.unpack_from(head, _HEADER.size)
    if header_crc32(head[: _HEADER.size]) != stored:
        raise TraceFormatError(
            f"header CRC mismatch: stored 0x{stored:08x}, computed "
            f"0x{header_crc32(head[:_HEADER.size]):08x}"
        )


def _header_crc_ok(blob: bytes) -> bool:
    if len(blob) < _HEADER.size + _U32.size:
        return False
    (stored,) = _U32.unpack_from(blob, _HEADER.size)
    return header_crc32(blob[: _HEADER.size]) == stored


def _check_chunk_crc(
    stored: int, n_records: int, payload, offset: int
) -> None:
    computed = chunk_crc32(n_records, payload)
    if computed != stored:
        raise TraceFormatError(
            f"chunk CRC mismatch at offset {offset}: stored "
            f"0x{stored:08x}, computed 0x{computed:08x}"
        )


def _decode_chunk(
    blob: bytes,
    offset: int,
    n_records: int,
    payload_bytes: int,
    version: int = VERSION_CHUNKED,
    columns: typing.Optional[typing.FrozenSet[str]] = None,
) -> ColumnChunk:
    if version >= VERSION_COMPRESSED:
        view = memoryview(blob)[offset : offset + payload_bytes]
        return colenc.decode_chunk_payload(view, n_records, version, columns)
    columns = colenc._effective_columns(columns)
    if columns is not None:
        # Pre-v5 payloads are raw record streams; a column mask cannot
        # skip bytes (every column interleaves) but still skips the
        # numpy gathers and value scatters for unrequested columns.
        view = memoryview(blob)[offset : offset + payload_bytes]
        return colenc._decode_record_stream(view, n_records, columns)
    chunk = ColumnChunk()
    end = offset + payload_bytes
    batch = codec.decode_batch(blob, offset, n_records)
    if batch is not None:
        chunk.extend_run(batch)
        offset = batch.next_offset
        if offset != end:
            raise TraceFormatError(
                f"chunk payload size mismatch: declared {payload_bytes} "
                f"bytes, decoded {payload_bytes - (end - offset)}"
            )
        return chunk
    # Scalar fallback: the reference loop, and the single source of the
    # corrupt-payload error behavior (the batch decoder returns None on
    # any anomaly precisely so this path can raise the exact error).
    sides, codes, cores = chunk.side, chunk.code, chunk.core
    seqs, raws, truths = chunk.seq, chunk.raw_ts, chunk.truth
    vals, offs = chunk.values, chunk.val_off
    try:
        for __ in range(n_records):
            side, code, core, seq, raw_ts, values, offset = decode_fields(blob, offset)
            sides.append(side)
            codes.append(code)
            cores.append(core)
            seqs.append(seq)
            raws.append(raw_ts)
            truths.append(-1)
            vals.extend(values)
            offs.append(len(vals))
    except (ValueError, KeyError) as exc:
        raise TraceFormatError(f"corrupt trace payload: {exc}") from exc
    if offset != end:
        raise TraceFormatError(
            f"chunk payload size mismatch: declared {payload_bytes} bytes, "
            f"decoded {payload_bytes - (end - offset)}"
        )
    return chunk


def _plausible_frame(
    n_records: int, payload_bytes: int, version: int = VERSION_CHUNKED
) -> bool:
    """Could (n_records, payload_bytes) frame a real chunk?

    Pre-v5, records are 16-byte-aligned multiples of 16 bytes, so the
    payload size must be too, and each record occupies at least 16 of
    those bytes.  A v5/v6 payload is compressed, so its size bears no
    fixed relation to the record count — the only structural floor is
    the payload header (v5 and v6 share its shape) — and the resync
    scan must instead lean on the CRC plus a trial decode
    (:func:`_resync_offset`).
    """
    if version >= VERSION_COMPRESSED:
        return n_records > 0 and payload_bytes >= _V5_PAYLOAD.size
    return (
        n_records > 0
        and payload_bytes % 16 == 0
        and 16 * n_records <= payload_bytes
    )


def _resync_offset(blob: bytes, start: int, version: int) -> int:
    """Scan forward from ``start`` for the next well-formed chunk.

    Well-formed means: plausible frame, payload fits in the file, and
    (v3/v4) the CRC verifies / (v2) the payload trial-decodes.  A v5
    chunk must pass *both* the CRC and a trial decode: a compressed
    payload is near-random bytes, so it can embed a byte run that
    scores as a CRC-consistent v4-style frame — without the decode
    requirement salvage could resynchronize into the middle of a
    compressed block and invent records.  Returns ``len(blob)`` when
    no further chunk exists.
    """
    frame = chunk_frame_struct(version)
    v3 = version >= VERSION_CRC
    size = len(blob)
    mv = memoryview(blob)
    offset = start
    while offset + frame.size <= size:
        if v3:
            n_records, payload_bytes, crc = frame.unpack_from(blob, offset)
        else:
            n_records, payload_bytes = frame.unpack_from(blob, offset)
        payload_off = offset + frame.size
        if (
            _plausible_frame(n_records, payload_bytes, version)
            and payload_off + payload_bytes <= size
        ):
            if v3:
                if chunk_crc32(
                    n_records, mv[payload_off : payload_off + payload_bytes]
                ) == crc:
                    if version < VERSION_COMPRESSED:
                        return offset
                    try:
                        _decode_chunk(
                            blob, payload_off, n_records, payload_bytes,
                            version,
                        )
                        return offset
                    except TraceFormatError:
                        pass
            else:
                try:
                    _decode_chunk(blob, payload_off, n_records, payload_bytes)
                    return offset
                except TraceFormatError:
                    pass
        offset += 1
    return size


def _decode_partial(
    blob: bytes,
    offset: int,
    end: int,
    max_records: int,
    version: int = VERSION_CHUNKED,
) -> typing.Tuple[ColumnChunk, int]:
    """Recover the valid record prefix of a truncated chunk payload.

    Decodes records until one fails or runs past ``end``; returns the
    recovered chunk and the offset reached.  A truncated v5/v6 payload
    is walkable only when it is an uncompressed record stream
    (``enc = 0, codec = 0``); a cut-off compressed body (or a v6
    section table missing its bodies) cannot be partially inflated, so
    nothing is recovered from it.
    """
    chunk = ColumnChunk()
    count = 0
    if version >= VERSION_COMPRESSED:
        if offset + _V5_PAYLOAD.size > end:
            return chunk, offset
        enc, codec_id, __, __ = _V5_PAYLOAD.unpack_from(blob, offset)
        if enc != ENC_RECORDS or codec_id != CODEC_NONE:
            return chunk, offset
        offset += _V5_PAYLOAD.size
    while count < max_records:
        try:
            side, code, core, seq, raw_ts, values, next_off = decode_fields(
                blob, offset
            )
        except (ValueError, KeyError):
            break
        if next_off > end:
            break
        chunk.side.append(side)
        chunk.code.append(code)
        chunk.core.append(core)
        chunk.seq.append(seq)
        chunk.raw_ts.append(raw_ts)
        chunk.truth.append(-1)
        chunk.values.extend(values)
        chunk.val_off.append(len(chunk.values))
        offset = next_off
        count += 1
    return chunk, offset


def _trailer_pending(blob: bytes, offset: int) -> bool:
    """Could the bytes at ``offset`` be an index trailer a live writer
    has not finished appending?  True when the region runs to EOF short
    of the size its own header declares (or is too short to say)."""
    available = len(blob) - offset
    if available < _IDX_HEADER.size:
        return True
    __, __, __, n_chunks, __ = _IDX_HEADER.unpack_from(blob, offset)
    return available < index_size(n_chunks)


def _salvage_scan(
    blob: bytes, header: TraceHeader, declared_chunks: int, declared_records: int
) -> typing.Tuple[typing.List[ColumnChunk], SalvageReport]:
    """Walk a damaged chunked file, keeping every verifiable chunk."""
    version = header.version
    v3 = version >= VERSION_CRC
    frame = chunk_frame_struct(version)
    report = SalvageReport(version=version)
    chunks: typing.List[ColumnChunk] = []
    size = len(blob)
    mv = memoryview(blob)
    if v3:
        if not _header_crc_ok(blob):
            report.header_damaged = True
            report.notes.append(
                "header CRC mismatch: header fields (clock rates, counts) "
                "may be unreliable"
            )
    offset = data_offset(version)
    if size < offset:
        report.truncated = True
        report.notes.append("file ends inside the header")
        offset = size
    # A v4/v5 file still wearing the sentinel header with no index
    # trailer is one a writer has not closed yet: a clean torn tail is
    # "not written yet" (withheld), not loss.  Pre-v4 sentinel files
    # stay ambiguous (no trailer exists to tell a pipe-written complete
    # file from a cut one), so they keep the truncation semantics.
    live_candidate = (
        version >= VERSION_INDEXED and declared_chunks == CHUNKS_UNTIL_EOF
    )
    trailer_seen = False
    while offset < size:
        if (
            version >= VERSION_INDEXED
            and blob[offset : offset + len(INDEX_MAGIC)] == INDEX_MAGIC
        ):
            # The v4 index trailer: consume it if it verifies.  Either
            # way it is never *used* on the salvage path — once chunks
            # may have been dropped the zone maps no longer align — so
            # damage here costs pruning, never correctness.
            if live_candidate and _trailer_pending(blob, offset):
                # The closing writer is mid-trailer: everything before
                # it is intact, the rest arrives with the next poll.
                report.growing = True
                report.tail_pending_bytes = size - offset
                report.notes.append(
                    f"index trailer at offset {offset} is incomplete "
                    f"({size - offset} bytes so far): file is still "
                    "being closed"
                )
                break
            trailer_seen = True
            try:
                __, __, consumed = decode_index(blob, offset)
            except TraceFormatError as exc:
                report.bad_ranges.append((offset, size))
                report.notes.append(
                    f"index trailer at offset {offset} is damaged ({exc}); "
                    "queries fall back to a full scan"
                )
                break
            offset += consumed
            continue
        if offset + frame.size > size:
            if live_candidate:
                report.growing = True
                report.tail_pending_bytes = size - offset
                report.notes.append(
                    f"incomplete chunk prefix at offset {offset}: "
                    f"{size - offset} bytes not yet written"
                )
                break
            report.truncated = True
            report.bad_ranges.append((offset, size))
            report.notes.append(
                f"truncated chunk prefix at offset {offset}: "
                f"{size - offset} trailing bytes"
            )
            break
        if v3:
            n_records, payload_bytes, crc = frame.unpack_from(blob, offset)
        else:
            n_records, payload_bytes = frame.unpack_from(blob, offset)
            crc = None
        payload_off = offset + frame.size
        plausible = _plausible_frame(n_records, payload_bytes, version)
        fits = payload_off + payload_bytes <= size
        chunk: typing.Optional[ColumnChunk] = None
        if plausible and fits:
            if crc is not None and chunk_crc32(
                n_records, mv[payload_off : payload_off + payload_bytes]
            ) != crc:
                reason = f"chunk CRC mismatch at offset {offset}"
            else:
                try:
                    chunk = _decode_chunk(
                        blob, payload_off, n_records, payload_bytes, version
                    )
                except TraceFormatError as exc:
                    reason = f"chunk at offset {offset} failed to decode: {exc}"
        elif plausible:
            reason = (
                f"chunk at offset {offset} declares {payload_bytes} payload "
                f"bytes but only {size - payload_off} remain"
            )
        else:
            reason = f"implausible chunk prefix at offset {offset}"
        if chunk is not None:
            chunks.append(chunk)
            report.chunks_recovered += 1
            report.records_recovered += n_records
            offset = payload_off + payload_bytes
            continue
        # Damaged.  If the declared payload overruns EOF and no later
        # well-formed chunk exists, this is the crash-mid-write case:
        # keep the valid record prefix of the tail.  Otherwise drop the
        # chunk and resynchronize on the next well-formed prefix.
        resume = _resync_offset(blob, offset + 1, version)
        if plausible and not fits and resume >= size and live_candidate:
            # A live writer's half-flushed final chunk: withhold it
            # whole (the tailing reader will see it complete later)
            # rather than recovering a record prefix that would be
            # double-counted once the chunk seals.
            report.growing = True
            report.tail_pending_bytes = size - offset
            report.notes.append(
                f"incomplete chunk at offset {offset}: declared "
                f"{payload_bytes} payload bytes, {size - payload_off} "
                "written so far"
            )
            break
        if plausible and not fits and resume >= size:
            tail, reached = _decode_partial(
                blob, payload_off, size, n_records, version
            )
            report.truncated = True
            if len(tail):
                chunks.append(tail)
                report.chunks_recovered += 1
                report.records_recovered += len(tail)
                report.tail_records_recovered += len(tail)
            report.records_dropped += n_records - len(tail)
            report.bad_ranges.append((reached, size))
            report.notes.append(
                f"truncated final chunk at offset {offset}: recovered the "
                f"leading {len(tail)} of {n_records} records"
            )
            break
        report.chunks_dropped += 1
        if plausible:
            report.records_dropped += n_records
        if resume < size:
            report.resyncs += 1
            report.notes.append(f"{reason}; resynchronized at offset {resume}")
        else:
            report.notes.append(f"{reason}; no further chunks found")
        report.bad_ranges.append((offset, resume))
        offset = resume
    if version >= VERSION_INDEXED and not trailer_seen and not report.header_damaged:
        # A v4 file must end in its index trailer; reaching EOF without
        # one means the tail was cut off, even when every chunk (and so
        # every record) survived intact — unless the sentinel header
        # says a live writer simply has not written it yet.
        if live_candidate:
            if not report.growing:
                report.growing = True
                report.notes.append(
                    "no index trailer yet: file is still growing"
                )
        else:
            report.truncated = True
            report.notes.append(
                "index trailer missing (file truncated at a chunk "
                "boundary?); queries fall back to a full scan"
            )
    if (
        declared_chunks != CHUNKS_UNTIL_EOF
        and not report.header_damaged
        and declared_records > report.records_recovered + report.records_dropped
    ):
        report.records_missing = declared_records - (
            report.records_recovered + report.records_dropped
        )
        report.notes.append(
            f"header declares {declared_records} records; "
            f"{report.records_missing} are unaccounted for"
        )
    return chunks, report


def _verify_index_trailer(
    blob: bytes, offset: int, n_chunks: int, total_records: int
) -> typing.List[ZoneMap]:
    """Strict v4: parse and cross-check the index trailer at ``offset``.

    The trailer must parse (magic, version, CRC — :func:`decode_index`
    raises otherwise), describe exactly the chunks the file holds, and
    be the last thing in the file.
    """
    zones, idx_total, consumed = decode_index(blob, offset)
    if len(zones) != n_chunks:
        raise TraceFormatError(
            f"index trailer describes {len(zones)} chunks; file holds "
            f"{n_chunks}"
        )
    if idx_total != total_records:
        raise TraceFormatError(
            f"index trailer declares {idx_total} records; chunks hold "
            f"{total_records}"
        )
    if offset + consumed != len(blob):
        raise TraceFormatError(
            f"{len(blob) - offset - consumed} trailing bytes after the "
            "index trailer"
        )
    return zones


# ----------------------------------------------------------------------
# the descriptor pool
# ----------------------------------------------------------------------
class FdPool:
    """A bounded pool of open descriptors over one backing file.

    :meth:`checkout` hands out an open binary handle (callers seek it
    wherever they need); :meth:`release` returns it for reuse.  At most
    ``cap`` descriptors exist at once — further checkouts block until
    one is released, so however many concurrent iterations a shared
    :class:`TraceHandle` serves, its descriptor footprint stays
    bounded.  :meth:`close` closes every descriptor ever issued —
    including those still checked out by abandoned iterators — and
    poisons the pool; it is idempotent.
    """

    def __init__(
        self,
        path: typing.Optional[str],
        blob: typing.Optional[bytes],
        cap: int = DEFAULT_POOL_CAP,
    ):
        if path is None and blob is None:
            raise ValueError("FdPool needs a path or a blob")
        self._path = path
        self._blob = blob
        self.cap = max(1, cap)
        self._cond = threading.Condition()
        self._idle: typing.List[typing.BinaryIO] = []
        #: Every descriptor currently open (idle or checked out).
        self._live: typing.Set[typing.BinaryIO] = set()
        self._closed = False

    def _open(self) -> typing.BinaryIO:
        if self._path is not None:
            return open(self._path, "rb")
        assert self._blob is not None
        return io.BytesIO(self._blob)

    @property
    def n_open(self) -> int:
        """Descriptors currently open (idle + checked out)."""
        with self._cond:
            return len(self._live)

    @property
    def closed(self) -> bool:
        return self._closed

    def checkout(
        self, timeout: typing.Optional[float] = None
    ) -> typing.BinaryIO:
        """An open handle over the backing file; blocks at the cap.

        ``timeout`` bounds the *total* wait: it is converted once to a
        monotonic deadline that every ``Condition.wait`` iteration
        counts against, so spurious wakeups and lost races for a freed
        descriptor cannot restart the clock.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while (
                not self._closed
                and not self._idle
                and len(self._live) >= self.cap
            ):
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    raise TimeoutError(
                        f"no descriptor available within {timeout}s "
                        f"(pool cap {self.cap})"
                    )
            if self._closed:
                raise ValueError("descriptor pool is closed")
            if self._idle:
                return self._idle.pop()
            handle = self._open()
            self._live.add(handle)
            return handle

    def release(self, handle: typing.BinaryIO) -> None:
        """Return a checked-out handle for reuse."""
        with self._cond:
            if handle not in self._live:
                # Already force-closed by close(); nothing to return.
                handle.close()
                return
            if self._closed:
                self._live.discard(handle)
                handle.close()
            else:
                self._idle.append(handle)
            self._cond.notify()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            for handle in list(self._live):
                try:
                    handle.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            self._live.clear()
            self._idle.clear()
            self._cond.notify_all()


# ----------------------------------------------------------------------
# the shared handle
# ----------------------------------------------------------------------
class TraceHandle:
    """The immutable core of one open trace, shareable across readers.

    Construction does the one-time work: parse (and for v3+ verify)
    the header, build the chunk frame index by seeking over payloads,
    verify and load the v4 index trailer — or, with ``strict=False``,
    read the whole file and salvage-scan it.  Everything written after
    construction (the sidecar attachment, the clock fit) is computed
    once under a lock and then shared.

    Readers never touch a descriptor directly: :meth:`source` views
    borrow from the bounded :class:`FdPool`, so N concurrent iterations
    cost at most ``pool_cap`` descriptors, not N.

    ``close()`` is idempotent and closes every pooled descriptor;
    in-flight iterations fail afterwards rather than leak.
    """

    def __init__(
        self,
        path_or_file: typing.Union[str, typing.BinaryIO, bytes],
        strict: bool = True,
        pool_cap: int = DEFAULT_POOL_CAP,
    ):
        self._path: typing.Optional[str] = None
        self._blob: typing.Optional[bytes] = None
        self._mmap: typing.Optional[mmap.mmap] = None
        self._view: typing.Optional[memoryview] = None
        if isinstance(path_or_file, str):
            self._path = path_or_file
        elif isinstance(path_or_file, (bytes, bytearray)):
            self._blob = bytes(path_or_file)
        else:
            # A raw file object cannot be re-opened for repeated
            # iteration, so fall back to holding its bytes.
            self._blob = path_or_file.read()
        if self._blob is not None:
            # Blob-backed reads were always zero-copy candidates; give
            # them the same memoryview fast path the mmap provides.
            self._view = memoryview(self._blob)
        self.strict = strict
        self.salvage: typing.Optional[SalvageReport] = None
        self._salvaged: typing.Optional[typing.List[ColumnChunk]] = None
        self._fallback: typing.Optional[EventSource] = None
        self._zones: typing.Optional[typing.List[ZoneMap]] = None
        self._pool = FdPool(self._path, self._blob, cap=pool_cap)
        self._lock = threading.Lock()
        self._correlator = None  # fitted once, shared (see correlator())
        self._correlator_error: typing.Optional[Exception] = None
        try:
            if strict:
                self._init_strict()
            else:
                self._init_salvage()
        except BaseException:
            self.close()
            raise

    # -- construction --------------------------------------------------
    def _init_strict(self) -> None:
        handle = self._pool.checkout()
        try:
            head = handle.read(_HEADER.size + _U32.size)
            self.header, a, b = _parse_header(head)
            if self.header.version == VERSION_LEGACY:
                # Legacy layout cannot be streamed; materialize once.
                from repro.pdt.reader import read_trace

                handle.seek(0)
                self._fallback = read_trace(handle.read()).as_source()
                self._index: typing.List[
                    typing.Tuple[int, int, int, typing.Optional[int]]
                ] = []
                self._n_records = self._fallback.n_records
                return
            if self.header.version >= VERSION_CRC:
                _check_header_crc(head)
            self._try_mmap(handle)
            self._index = self._build_index(handle, self.header.version, a)
            self._n_records = sum(n for __, n, __, __ in self._index)
            if a != CHUNKS_UNTIL_EOF and self._n_records != b:
                raise TraceFormatError(
                    f"record count mismatch: header says {b}, chunks hold "
                    f"{self._n_records}"
                )
            if self.header.version >= VERSION_INDEXED:
                trailer_off = (
                    self._index[-1][0] + self._index[-1][2]
                    if self._index
                    else data_offset(self.header.version)
                )
                handle.seek(trailer_off)
                self._zones = _verify_index_trailer(
                    handle.read(), 0, len(self._index), self._n_records
                )
        finally:
            self._pool.release(handle)

    def _try_mmap(self, handle: typing.BinaryIO) -> None:
        """Map the backing file read-only for the zero-copy read path.

        Reuses the descriptor already checked out for construction (a
        mapping outlives the fd on POSIX, so the pool's lifecycle is
        unaffected and no extra descriptor is ever opened).  Any
        failure — a file-like object with no real ``fileno`` (tests
        wrap ``BytesIO``), an empty file, a platform refusing the map —
        silently falls back to pooled ``seek``/``read``.
        """
        if self._view is not None or self._path is None:
            return
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (AttributeError, OSError, ValueError, OverflowError):
            return
        self._mmap = mapped
        self._view = memoryview(mapped)

    def _init_salvage(self) -> None:
        """Non-strict construction: read everything, keep what verifies."""
        if self._blob is not None:
            blob = self._blob
        else:
            handle = self._pool.checkout()
            try:
                blob = handle.read()
            finally:
                self._pool.release(handle)
        self.header, a, b = _parse_header(blob)
        self._index = []
        if self.header.version == VERSION_LEGACY:
            from repro.pdt.reader import _salvage_legacy

            trace = Trace(header=self.header)
            self.salvage = _salvage_legacy(blob, a, b, trace.store)
            self._salvaged = list(trace.store.iter_chunks())
        else:
            self._salvaged, self.salvage = _salvage_scan(blob, self.header, a, b)
        self._n_records = sum(len(chunk) for chunk in self._salvaged)

    @staticmethod
    def _build_index(
        handle: typing.BinaryIO, version: int, n_chunks: int
    ) -> typing.List[typing.Tuple[int, int, int, typing.Optional[int]]]:
        """Scan chunk prefixes (seeking past payloads) into an index of
        (payload_offset, n_records, payload_bytes, crc)."""
        frame = chunk_frame_struct(version)
        handle.seek(0, io.SEEK_END)
        size = handle.tell()
        offset = data_offset(version)
        index: typing.List[typing.Tuple[int, int, int, typing.Optional[int]]] = []
        while True:
            if n_chunks == CHUNKS_UNTIL_EOF:
                if offset == size:
                    return index
                if version >= VERSION_INDEXED:
                    handle.seek(offset)
                    if handle.read(len(INDEX_MAGIC)) == INDEX_MAGIC:
                        return index
            elif len(index) == n_chunks:
                return index
            if offset + frame.size > size:
                raise TraceFormatError("truncated chunk prefix")
            handle.seek(offset)
            if version >= VERSION_CRC:
                n_records, payload_bytes, crc = frame.unpack(
                    handle.read(frame.size)
                )
            else:
                n_records, payload_bytes = frame.unpack(handle.read(frame.size))
                crc = None
            offset += frame.size
            if offset + payload_bytes > size:
                raise TraceFormatError(
                    f"truncated chunk payload at offset {offset}: need "
                    f"{payload_bytes} bytes, have {size - offset}"
                )
            index.append((offset, n_records, payload_bytes, crc))
            offset += payload_bytes

    # -- identity ------------------------------------------------------
    @property
    def path(self) -> typing.Optional[str]:
        """The backing file path, or ``None`` for blob-backed handles."""
        return self._path

    @property
    def blob(self) -> typing.Optional[bytes]:
        """The backing bytes for blob-backed handles, else ``None``."""
        return self._blob

    @property
    def n_records(self) -> int:
        return self._n_records

    @property
    def n_chunks(self) -> int:
        if self._salvaged is not None:
            return len(self._salvaged)
        if self._fallback is not None:
            return sum(1 for __ in self._fallback.iter_chunks())
        return len(self._index)

    @property
    def pool_cap(self) -> int:
        return self._pool.cap

    @property
    def open_descriptors(self) -> int:
        """Descriptors the pool currently holds open."""
        return self._pool.n_open

    @property
    def closed(self) -> bool:
        return self._pool.closed

    def chunk_record_counts(self) -> typing.List[int]:
        """Per-chunk record counts, from the frame index when the file
        has one (no payload decode)."""
        if self._salvaged is not None:
            return [len(chunk) for chunk in self._salvaged]
        if self._fallback is not None:
            return [len(chunk) for chunk in self._fallback.iter_chunks()]
        return [n for __, n, __, __ in self._index]

    # -- the index -----------------------------------------------------
    def zone_maps(self) -> typing.Optional[typing.List[ZoneMap]]:
        """The stored per-chunk zone maps (v4 trailer or attached
        sidecar), or ``None``."""
        return self._zones

    def attach_sidecar(self) -> bool:
        """Load a ``<trace>.pdtx`` sidecar index if one matches.

        Only path-backed, strictly-read chunked files can attach one
        (a salvaged read must not prune).  Thread-safe and idempotent;
        returns ``True`` when zone maps are available afterwards.
        """
        with self._lock:
            if self._zones is not None:
                return True
            if (
                self._path is None
                or self._salvaged is not None
                or self._fallback is not None
            ):
                return False
            loaded = read_sidecar(self._path)
            if loaded is None:
                return False
            zones, total = loaded
            if total != self._n_records or len(zones) != len(self._index):
                return False
            self._zones = zones
            return True

    # -- the clock fit -------------------------------------------------
    def correlator(self):
        """The trace's :class:`~repro.pdt.correlate.ClockCorrelator`,
        fitted once (on the whole unpruned trace) and shared by every
        consumer.  Raises
        :class:`~repro.pdt.correlate.CorrelationError` — consistently,
        on every call — when the trace cannot be correlated.
        """
        from repro.pdt.correlate import ClockCorrelator

        with self._lock:
            if self._correlator_error is not None:
                raise self._correlator_error
            if self._correlator is None:
                try:
                    self._correlator = ClockCorrelator(self.source())
                except Exception as exc:
                    self._correlator_error = exc
                    raise
            return self._correlator

    def clock_fits(self):
        """``(timebase_divider, {spe_id: SpeClockFit})`` — the handle
        metadata a shard worker needs to place records identically to
        the parent without re-reading any sync record."""
        correlator = self.correlator()
        return correlator.divider, correlator.fits

    # -- reading -------------------------------------------------------
    def source(
        self,
        chunk_range: typing.Optional[typing.Tuple[int, int]] = None,
        chunk_cache: typing.Optional[typing.Any] = None,
    ) -> EventSource:
        """A cheap :class:`~repro.pdt.store.EventSource` view.

        Views borrow descriptors from the handle's pool during
        iteration and share the handle's parse, index, and clock fit;
        closing a view does *not* close the handle.  With
        ``chunk_range=(lo, hi)`` the view serves only that chunk range
        (a :class:`ChunkRangeView`).  ``chunk_cache`` is an optional
        decoded-chunk cache (``get(i)``/``put(i, chunk)``) consulted
        before payload reads — the serving layer's warm path.
        """
        view = HandleSource(self, chunk_cache=chunk_cache)
        if chunk_range is None:
            return view
        return view.range_view(*chunk_range)

    def iter_chunk_range(
        self,
        lo: int,
        hi: int,
        keep: typing.Optional[typing.Sequence[bool]] = None,
        cache: typing.Optional[typing.Any] = None,
        columns: typing.Optional[typing.FrozenSet[str]] = None,
    ) -> typing.Iterator[ColumnChunk]:
        """Decode chunks ``lo <= i < hi``, seeking directly to the
        range's first payload; ``keep`` (indexed relative to ``lo``)
        additionally skips chunks inside the range without reading
        their payloads.  ``cache`` short-circuits payload reads for
        chunks it already holds decoded.  ``columns`` is the plan's
        required-column set: with one, v6 chunks decompress only the
        named sections (v4/v5 chunks skip the per-column materialize
        work) and yield lazy chunks whose remaining columns decode on
        first access; ``None`` decodes everything eagerly."""
        if self._salvaged is not None or self._fallback is not None:
            chunks: typing.Iterable[ColumnChunk] = (
                self._salvaged
                if self._salvaged is not None
                else self._fallback.iter_chunks()
            )
            for i, chunk in enumerate(list(chunks)[lo:hi]):
                if keep is not None and i < len(keep) and not keep[i]:
                    continue
                yield chunk
            return
        version = self.header.version
        # Normalize the mask once, before the cache sees it: a forced
        # full decode (REPRO_FULL_DECODE=1) or an all-columns mask must
        # hit the cache as "everything", never as a narrow subset.
        columns = colenc._effective_columns(columns)
        view = self._view
        handle: typing.Optional[typing.BinaryIO] = None
        try:
            for i, (offset, n_records, payload_bytes, crc) in enumerate(
                self._index[lo:hi]
            ):
                if keep is not None and i < len(keep) and not keep[i]:
                    continue
                if cache is not None:
                    cached = cache.get(lo + i, columns)
                    if cached is not None:
                        yield cached
                        continue
                if view is not None:
                    # Zero-copy path: slice the mapping (or blob) so CRC
                    # and decode gather straight from the page cache
                    # with no intermediate bytes object.
                    if self._pool.closed:
                        raise ValueError("descriptor pool is closed")
                    payload: typing.Union[bytes, memoryview] = view[
                        offset : offset + payload_bytes
                    ]
                else:
                    if handle is None:
                        handle = self._pool.checkout()
                    handle.seek(offset)
                    payload = handle.read(payload_bytes)
                if len(payload) != payload_bytes:
                    raise TraceFormatError(
                        f"truncated chunk payload at offset {offset}"
                    )
                if crc is not None:
                    _check_chunk_crc(crc, n_records, payload, offset)
                chunk = _decode_chunk(
                    payload, 0, n_records, payload_bytes, version, columns
                )
                if cache is not None:
                    cache.put(lo + i, chunk, columns)
                yield chunk
        finally:
            if handle is not None:
                self._pool.release(handle)

    def scan_sync(self):
        """Prefix-only sync collection: one pass that never decodes
        payloads except the single value of each sync record."""
        if self._salvaged is not None:
            return EventSource.scan_sync(self.source())
        if self._fallback is not None:
            return self._fallback.scan_sync()
        if self.header.version >= VERSION_COMPRESSED:
            # A compressed payload has no fixed-stride record prefixes
            # to walk; decode chunks (zero-copy via the mapping) and
            # collect syncs from the columns instead — with whole-chunk
            # masks rather than a per-record loop, so the sync pass
            # stays cheap relative to the decompression it already pays.
            if not codec.batch_enabled():
                return EventSource.scan_sync(self.source())
            return self._scan_sync_columns()
        sync_code = ev.code_for_kind(ev.SIDE_SPE, ev.KIND_SYNC).code
        spe_ids: typing.Set[int] = set()
        syncs: typing.Dict[int, typing.List[typing.Tuple[int, int]]] = {}
        handle = self._pool.checkout()
        try:
            for offset, n_records, payload_bytes, crc in self._index:
                handle.seek(offset)
                payload = handle.read(payload_bytes)
                if crc is not None:
                    _check_chunk_crc(crc, n_records, payload, offset)
                try:
                    for side, code, core, __seq, raw_ts, val_off in iter_prefixes(
                        payload, 0, n_records
                    ):
                        if side != ev.SIDE_SPE:
                            continue
                        spe_ids.add(core)
                        if code == sync_code:
                            (tb_raw,) = _VALUE.unpack_from(payload, val_off)
                            syncs.setdefault(core, []).append((raw_ts, tb_raw))
                except (ValueError, KeyError) as exc:
                    raise TraceFormatError(
                        f"corrupt trace payload: {exc}"
                    ) from exc
        finally:
            self._pool.release(handle)
        return spe_ids, syncs

    def _scan_sync_columns(self):
        """Vectorized sync collection over v5/v6 payloads: each chunk
        is decompressed once and only the columns correlation reads are
        decoded — no ``seq`` column (on v6 that section is never even
        inflated), no chunk assembly, whole-chunk masks instead of a
        per-record loop."""
        sync_code = ev.code_for_kind(ev.SIDE_SPE, ev.KIND_SYNC).code
        spe_ids: typing.Set[int] = set()
        syncs: typing.Dict[int, typing.List[typing.Tuple[int, int]]] = {}
        zones = self._zones
        version = self.header.version
        view = self._view
        handle: typing.Optional[typing.BinaryIO] = None
        try:
            for i_chunk, (offset, n_records, payload_bytes, crc) in enumerate(
                self._index
            ):
                zone = zones[i_chunk] if zones is not None else None
                if (
                    zone is not None
                    and not zone.spe_overflow
                    and not zone.may_contain_code(ev.SIDE_SPE, sync_code)
                ):
                    # The verified zone map names every SPE that
                    # contributed to this chunk (the bitmap is exact
                    # when it did not overflow) and rules out sync
                    # records outright, so the payload has nothing
                    # left to tell a correlation scan — skip the read
                    # and the decompression; the analysis pass still
                    # CRC-checks and decodes every chunk it consumes.
                    bitmap = zone.spe_bitmap
                    while bitmap:
                        low = bitmap & -bitmap
                        spe_ids.add(low.bit_length() - 1)
                        bitmap ^= low
                    continue
                if view is not None:
                    if self._pool.closed:
                        raise ValueError("descriptor pool is closed")
                    payload: typing.Union[bytes, memoryview] = view[
                        offset : offset + payload_bytes
                    ]
                else:
                    if handle is None:
                        handle = self._pool.checkout()
                    handle.seek(offset)
                    payload = handle.read(payload_bytes)
                if len(payload) != payload_bytes:
                    raise TraceFormatError(
                        f"truncated chunk payload at offset {offset}"
                    )
                if crc is not None:
                    _check_chunk_crc(crc, n_records, payload, offset)
                if not n_records:
                    continue
                if n_records < colenc._SMALL_CHUNK:
                    # Tiny chunks scan faster through the scalar
                    # column walk than through numpy kernel launches.
                    small = colenc.scan_sync_chunk(
                        payload, n_records, ev.SIDE_SPE, sync_code, version
                    )
                    if small is not None:
                        chunk_cores, chunk_syncs = small
                        spe_ids.update(chunk_cores)
                        for core, raw_ts, tb_raw in chunk_syncs:
                            syncs.setdefault(core, []).append(
                                (raw_ts, tb_raw)
                            )
                        continue
                sides, codes, cores, raws, val_off, values = (
                    colenc.decode_sync_view(payload, n_records, version)
                )
                spe_mask = sides == ev.SIDE_SPE
                if not spe_mask.any():
                    continue
                spe_ids.update(int(c) for c in np.unique(cores[spe_mask]))
                for i in np.flatnonzero(spe_mask & (codes == sync_code)):
                    i = int(i)
                    syncs.setdefault(int(cores[i]), []).append(
                        (int(raws[i]), int(values[val_off[i]]))
                    )
        finally:
            if handle is not None:
                self._pool.release(handle)
        return spe_ids, syncs

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Close every pooled descriptor and the mapping; idempotent.

        An abandoned iterator (or a numpy array built over a chunk
        slice) may still export buffers from the mapping; releasing
        then raises :class:`BufferError` and the mapping is left for
        the garbage collector to finish — new reads are already
        refused either way because the pool is poisoned first.
        """
        self._pool.close()
        if self._view is not None:
            try:
                self._view.release()
            except BufferError:  # pragma: no cover - GC finishes it
                pass
            self._view = None
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:  # pragma: no cover - GC finishes it
                pass
            self._mmap = None

    def __enter__(self) -> "TraceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        backing = self._path if self._path is not None else "<blob>"
        return (
            f"TraceHandle({backing!r}, records={self._n_records}, "
            f"chunks={self.n_chunks}, "
            f"indexed={self._zones is not None})"
        )


# ----------------------------------------------------------------------
# source views
# ----------------------------------------------------------------------
class HandleSource(EventSource):
    """An :class:`~repro.pdt.store.EventSource` over a shared
    :class:`TraceHandle`.

    Cheap to create, safe to use concurrently with other views of the
    same handle: iteration borrows a descriptor from the handle's
    bounded pool and returns it when the iteration ends (or the
    generator is collected).  A view created by
    :meth:`TraceHandle.source` does not own the handle — ``close()``
    is then a no-op — while the compatibility wrapper
    :class:`repro.pdt.reader.TraceFileSource` owns its private handle
    and closes it.
    """

    def __init__(
        self,
        handle: TraceHandle,
        owns_handle: bool = False,
        chunk_cache: typing.Optional[typing.Any] = None,
    ):
        self._handle = handle
        self._owns = owns_handle
        self._cache = chunk_cache
        self.header = handle.header
        self.salvage = handle.salvage

    @property
    def handle(self) -> TraceHandle:
        """The shared :class:`TraceHandle` this view reads through."""
        return self._handle

    @property
    def path(self) -> typing.Optional[str]:
        return self._handle.path

    @property
    def blob(self) -> typing.Optional[bytes]:
        return self._handle.blob

    @property
    def n_records(self) -> int:
        return self._handle.n_records

    @property
    def n_chunks(self) -> int:
        return self._handle.n_chunks

    def chunk_record_counts(self) -> typing.List[int]:
        return self._handle.chunk_record_counts()

    def iter_chunk_range(
        self,
        lo: int,
        hi: int,
        keep: typing.Optional[typing.Sequence[bool]] = None,
        columns: typing.Optional[typing.FrozenSet[str]] = None,
    ) -> typing.Iterator[ColumnChunk]:
        return self._handle.iter_chunk_range(
            lo, hi, keep, cache=self._cache, columns=columns
        )

    def iter_chunks(self) -> typing.Iterator[ColumnChunk]:
        return self.iter_chunk_range(0, self.n_chunks)

    def iter_chunks_selected(
        self, keep: typing.Sequence[bool]
    ) -> typing.Iterator[ColumnChunk]:
        """Decode only the selected chunks, *seeking past* the payload
        bytes of excluded ones — the I/O half of zone-map pruning."""
        return self.iter_chunk_range(0, self.n_chunks, keep)

    def iter_chunks_projected(
        self,
        keep: typing.Optional[typing.Sequence[bool]],
        columns: typing.Optional[typing.FrozenSet[str]],
    ) -> typing.Iterator[ColumnChunk]:
        """Zone-map pruning *and* projection pushdown in one pass: skip
        excluded chunks' payloads and decode only the plan's required
        columns of the rest."""
        return self.iter_chunk_range(0, self.n_chunks, keep, columns=columns)

    def range_view(self, lo: int, hi: int) -> "ChunkRangeView":
        """A shard of this trace: the chunks ``lo <= i < hi`` as their
        own :class:`~repro.pdt.store.EventSource`."""
        return ChunkRangeView(self, lo, hi)

    def zone_maps(self, correlator=None):
        """The stored per-chunk zone maps (v4 trailer or attached
        sidecar), or ``None``; ``correlator`` is ignored — stored zones
        were computed with the same fits at write time."""
        return self._handle.zone_maps()

    def attach_sidecar(self) -> bool:
        return self._handle.attach_sidecar()

    def scan_sync(self):
        return self._handle.scan_sync()

    def close(self) -> None:
        """Close the private handle when this view owns one; a no-op
        for views borrowed from a shared handle."""
        if self._owns:
            self._handle.close()

    def __enter__(self) -> "HandleSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ChunkRangeView(EventSource):
    """One shard of a handle-backed source: the half-open chunk range
    ``[lo, hi)`` served as its own :class:`EventSource`.

    The view seeks straight to its range (excluded payloads are never
    read), slices the base's zone maps so pruning inside the shard
    matches what a serial scan would have decided for the same chunks,
    and — deliberately — delegates :meth:`scan_sync` to the *whole*
    base trace: clock correlation must always be fitted on the shared
    unpruned prefix, or a record's placed time would depend on which
    shard served it.
    """

    def __init__(self, base: HandleSource, lo: int, hi: int):
        total = base.n_chunks
        self.base = base
        self.lo = max(0, min(lo, total))
        self.hi = max(self.lo, min(hi, total))
        self.header = base.header
        self.salvage = base.salvage
        self._counts: typing.Optional[typing.List[int]] = None

    @property
    def handle(self) -> TraceHandle:
        return self.base.handle

    @property
    def n_chunks(self) -> int:
        return self.hi - self.lo

    def chunk_record_counts(self) -> typing.List[int]:
        if self._counts is None:
            self._counts = self.base.chunk_record_counts()[self.lo : self.hi]
        return self._counts

    @property
    def n_records(self) -> int:
        return sum(self.chunk_record_counts())

    def iter_chunks(self) -> typing.Iterator[ColumnChunk]:
        return self.base.iter_chunk_range(self.lo, self.hi)

    def iter_chunks_selected(
        self, keep: typing.Sequence[bool]
    ) -> typing.Iterator[ColumnChunk]:
        return self.base.iter_chunk_range(self.lo, self.hi, keep)

    def iter_chunks_projected(
        self,
        keep: typing.Optional[typing.Sequence[bool]],
        columns: typing.Optional[typing.FrozenSet[str]],
    ) -> typing.Iterator[ColumnChunk]:
        return self.base.iter_chunk_range(
            self.lo, self.hi, keep, columns=columns
        )

    def zone_maps(self, correlator=None):
        zones = self.base.zone_maps(correlator)
        if zones is None:
            return None
        return zones[self.lo : self.hi]

    def scan_sync(self):
        return self.base.scan_sync()

    def close(self) -> None:
        self.base.close()

    def __enter__(self) -> "ChunkRangeView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_handle(
    path_or_file: typing.Union[str, typing.BinaryIO, bytes],
    strict: bool = True,
    pool_cap: int = DEFAULT_POOL_CAP,
    attach_sidecar: bool = True,
) -> TraceHandle:
    """Open a trace as a shareable :class:`TraceHandle`.

    The handle parses the header and chunk index once, loads the v4
    index trailer when the file has one, and — for older files, when
    ``attach_sidecar`` — picks up a matching ``.pdtx`` sidecar.  All
    later reads go through :meth:`TraceHandle.source` views borrowing
    from the handle's bounded descriptor pool.
    """
    handle = TraceHandle(path_or_file, strict=strict, pool_cap=pool_cap)
    if attach_sidecar and handle.zone_maps() is None:
        handle.attach_sidecar()
    return handle
