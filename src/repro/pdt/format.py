"""On-disk trace-format constants shared by the writer and reader.

Two file layouts share the same magic and header struct; the header's
``version`` field selects between them:

* **version 1 (legacy)** — the seed's list layout: a stream directory
  (record counts per core) followed by all records grouped per stream.
  Reading it requires holding the whole payload; kept for backward
  compatibility.
* **version 2 (chunked columnar)** — the streaming layout: records in
  *chunks* of at most ~64K records, each chunk framed by its own
  (n_records, payload_bytes) prefix so a reader can index the file by
  seeking from prefix to prefix without touching payload bytes.  Both
  writing and re-reading need only O(chunk) memory.

Header struct (little endian), shared by both versions::

    magic           4s   b"PDT1"
    version         u16  1 or 2
    n_spes          u16
    timebase_div    u32
    spu_clock_hz    f64
    groups_bitmap   u32
    buffer_bytes    u32
    a               u32  v1: n_ppe_records    v2: n_chunks
    b               u32  v1: n_spe_streams    v2: total_records

v1 then has ``n_spe_streams`` entries of ``_STREAM`` (spe_id, count);
v2 has ``n_chunks`` chunks, each ``_CHUNK`` (n_records, payload_bytes)
followed by that many codec-encoded records.  A v2 writer that cannot
seek back to patch the header writes ``n_chunks = 0xFFFFFFFF``
(:data:`CHUNKS_UNTIL_EOF`), meaning "read chunks until end of file".
"""

from __future__ import annotations

import struct

MAGIC = b"PDT1"

VERSION_LEGACY = 1
VERSION_CHUNKED = 2
SUPPORTED_VERSIONS = (VERSION_LEGACY, VERSION_CHUNKED)

_HEADER = struct.Struct("<4sHHIdIIII")
_STREAM = struct.Struct("<II")  # v1: (spe_id, n_records)
_CHUNK = struct.Struct("<II")  # v2: (n_records, payload_bytes)

#: v2 ``n_chunks`` sentinel: chunk prefixes run until end of file.
CHUNKS_UNTIL_EOF = 0xFFFF_FFFF


class TraceFormatError(Exception):
    """The file is not a valid PDT trace."""


def check_version(version: int) -> None:
    """Raise a clear :class:`TraceFormatError` for unknown versions."""
    if version not in SUPPORTED_VERSIONS:
        raise TraceFormatError(
            f"unsupported trace version {version}; this build supports "
            f"versions {', '.join(str(v) for v in SUPPORTED_VERSIONS)} "
            "(1 = legacy stream layout, 2 = chunked columnar layout)"
        )
