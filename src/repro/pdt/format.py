"""On-disk trace-format constants shared by the writer and reader.

Three file layouts share the same magic and header struct; the header's
``version`` field selects between them:

* **version 1 (legacy)** — the seed's list layout: a stream directory
  (record counts per core) followed by all records grouped per stream.
  Reading it requires holding the whole payload; kept for backward
  compatibility.
* **version 2 (chunked columnar)** — the streaming layout: records in
  *chunks* of at most ~64K records, each chunk framed by its own
  (n_records, payload_bytes) prefix so a reader can index the file by
  seeking from prefix to prefix without touching payload bytes.  Both
  writing and re-reading need only O(chunk) memory.
* **version 3 (chunked + CRC)** — version 2 plus integrity checks:
  each chunk frame grows a CRC32 over its prefix and payload, and a
  CRC32 of the header bytes follows the header.  A flipped bit
  anywhere in the file is *detected* instead of silently decoding into
  wrong timestamps; a damaged file can be salvaged chunk by chunk
  (``read_trace(..., strict=False)``).
* **version 4 (chunked + CRC + zone-map index)** —
  version 3 plus an *index trailer* after the last chunk: one zone-map
  entry per chunk (record count, min/max corrected timestamp, SPE
  bitmap, per-side event-code bitmaps) so a reader answering a
  targeted question can seek past chunks the query cannot touch
  without reading their payloads (:mod:`repro.tq`).  The trailer is
  CRC-protected like everything else in the v3 layout; a damaged
  trailer degrades to a full scan, never to wrong results.
* **version 5 (compressed columnar, the default)** — the version-4
  container with a per-column-encoded, optionally whole-chunk-
  compressed payload.  The chunk *frame* is unchanged (``_CHUNK_CRC``
  with the CRC over the stored — i.e. compressed — payload bytes, so
  integrity is checked before any decompression), but the payload
  starts with a small header (:data:`_V5_PAYLOAD`)::

      enc             u8   0 = record stream (the v2–v4 payload bytes)
                           1 = columnar sections
      codec           u8   0 = stored, 1 = zlib, 2 = zstd
      reserved        u16  0
      packed_bytes    u32  size of the payload body once decompressed

  followed by the (possibly compressed) body.  The columnar body is
  six u32-length-prefixed sections in order — ``raw_ts`` and ``seq``
  as delta + zigzag varints, ``side``/``code``/``core`` as
  dictionary + run-length pairs, and the payload values as raw little-
  endian i64 (see :mod:`repro.pdt.colenc`).  Zone maps are computed
  from the raw records *before* encoding, so pruning decisions never
  require decompressing a refused chunk.  ``REPRO_NO_COMPRESS=1``
  makes writers emit ``enc = 0, codec = 0`` payloads (the escape
  hatch); readers accept every combination regardless.
* **version 6 (per-section compressed columnar, the default)** — the
  v5 container with each column section compressed *independently*,
  so a reader can decompress exactly the sections a query references
  (projection pushdown).  The payload still opens with the v5-shaped
  header, reinterpreted for ``enc = 1``::

      enc             u8   0 = record stream (exactly the v5 rules)
                           1 = per-section columnar
      codec           u8   0 (per-section codecs live in the table)
      reserved        u16  0
      packed_bytes    u32  total decoded size of all six sections

  For ``enc = 1`` a six-entry section table (:data:`_V6_SECTION`)
  follows — one entry per column section in the fixed order raw_ts,
  seq, side, code, core, values::

      codec           u8   0 = stored, 1 = zlib, 2 = zstd
      flags           u8   0
      reserved        u16  0
      stored_len      u32  bytes of this section as stored on disk
      decoded_len     u32  bytes of this section once decompressed

  and then the concatenated stored section bodies, each encoded with
  the same per-column scheme as v5 (varints / dictionary-RLE / raw
  i64) but *without* the u32 length prefixes — the table carries the
  lengths.  ``enc = 0`` payloads are byte-identical to v5's and serve
  as the ``REPRO_NO_COMPRESS=1`` escape hatch.  The chunk frame and
  its CRC over the stored bytes are unchanged, so integrity is
  established before any decompression, per section or otherwise;
  zone maps are computed from raw records before encoding exactly as
  in v5.  ``REPRO_TRACE_VERSION=5`` makes writers emit v5 instead
  (see :func:`default_trace_version`).

Header struct (little endian), shared by all versions::

    magic           4s   b"PDT1"
    version         u16  1, 2, 3, 4, 5 or 6
    n_spes          u16
    timebase_div    u32
    spu_clock_hz    f64
    groups_bitmap   u32
    buffer_bytes    u32
    a               u32  v1: n_ppe_records    v2/v3: n_chunks
    b               u32  v1: n_spe_streams    v2/v3: total_records

v1 then has ``n_spe_streams`` entries of ``_STREAM`` (spe_id, count);
v2 has ``n_chunks`` chunks, each ``_CHUNK`` (n_records, payload_bytes)
followed by that many codec-encoded records.  v3 first has a u32
CRC32 of the 36 header bytes, then ``n_chunks`` chunks framed by
``_CHUNK_CRC`` (n_records, payload_bytes, crc32) where the checksum
covers the packed (n_records, payload_bytes) prefix followed by the
payload bytes — so prefix corruption is caught as well as payload
corruption.  A v2/v3/v4 writer that cannot seek back to patch the
header writes ``n_chunks = 0xFFFFFFFF`` (:data:`CHUNKS_UNTIL_EOF`),
meaning "read chunks until end of file" — for v4, "until the index
trailer magic".

v4 and v5 append the index trailer (see :mod:`repro.pdt.index` for
the zone map layout) after the final chunk::

    idx_magic       4s   b"PDTX"
    idx_version     u16  1
    reserved        u16  0
    n_chunks        u32  zone entries that follow (== data chunks)
    total_records   u64  binds the index to the trace it describes
    entries         n_chunks x _ZONE (repro.pdt.index)
    index_crc       u32  CRC32 over idx_magic .. last entry

The same byte layout, written to a standalone ``<trace>.pdtx`` file,
is the *sidecar index* that backfills zone maps for v1–v3 traces
without rewriting them.
"""

from __future__ import annotations

import os
import struct
import zlib

MAGIC = b"PDT1"

VERSION_LEGACY = 1
VERSION_CHUNKED = 2
VERSION_CRC = 3
VERSION_INDEXED = 4
VERSION_COMPRESSED = 5
VERSION_SECTIONED = 6
SUPPORTED_VERSIONS = (
    VERSION_LEGACY,
    VERSION_CHUNKED,
    VERSION_CRC,
    VERSION_INDEXED,
    VERSION_COMPRESSED,
    VERSION_SECTIONED,
)

#: Magic opening the v4 index trailer and the standalone sidecar file.
INDEX_MAGIC = b"PDTX"
INDEX_VERSION = 1

_HEADER = struct.Struct("<4sHHIdIIII")
_STREAM = struct.Struct("<II")  # v1: (spe_id, n_records)
_CHUNK = struct.Struct("<II")  # v2: (n_records, payload_bytes)
_CHUNK_CRC = struct.Struct("<III")  # v3: (n_records, payload_bytes, crc32)
_U32 = struct.Struct("<I")  # v3: header CRC32 trailer

#: v5 payload header: (enc, codec, reserved, packed_bytes).
_V5_PAYLOAD = struct.Struct("<BBHI")

#: v6 per-section table entry, one per column section, following the
#: v5-shaped payload header when ``enc = 1``:
#: (codec, flags, reserved, stored_len, decoded_len).
_V6_SECTION = struct.Struct("<BBHII")

#: Number of column sections a v6 columnar payload carries, in order:
#: raw_ts, seq, side, code, core, values.
V6_SECTION_COUNT = 6

#: v5 payload body encodings.
ENC_RECORDS = 0  # the v2–v4 record stream, verbatim
ENC_COLUMNS = 1  # per-column sections (repro.pdt.colenc)

#: v5 whole-payload compression codecs.
CODEC_NONE = 0
CODEC_ZLIB = 1
CODEC_ZSTD = 2

#: v2/v3 ``n_chunks`` sentinel: chunk prefixes run until end of file.
CHUNKS_UNTIL_EOF = 0xFFFF_FFFF


class TraceFormatError(Exception):
    """The file is not a valid PDT trace."""


def check_version(version: int) -> None:
    """Raise a clear :class:`TraceFormatError` for unknown versions."""
    if version not in SUPPORTED_VERSIONS:
        raise TraceFormatError(
            f"unsupported trace version {version}; this build supports "
            f"versions {', '.join(str(v) for v in SUPPORTED_VERSIONS)} "
            "(1 = legacy stream layout, 2 = chunked columnar layout, "
            "3 = chunked layout with CRC32 integrity checks, "
            "4 = checksummed chunks plus a zone-map index trailer, "
            "5 = compressed columnar chunks in the v4 container, "
            "6 = per-section compressed columnar chunks)"
        )


def default_trace_version() -> int:
    """The version new traces are written in: ``REPRO_TRACE_VERSION``
    when set to a supported chunked version, else v6.

    The env var is the writer escape hatch promised by the v6 rollout:
    ``REPRO_TRACE_VERSION=5`` keeps emitting whole-payload-compressed
    v5 files for consumers that have not picked up the v6 read path.
    """
    raw = os.environ.get("REPRO_TRACE_VERSION", "").strip()
    if raw:
        try:
            version = int(raw)
        except ValueError:
            raise TraceFormatError(
                f"REPRO_TRACE_VERSION is not an integer: {raw!r}"
            ) from None
        check_version(version)
        return version
    return VERSION_SECTIONED


def chunk_frame_struct(version: int) -> struct.Struct:
    """The chunk-frame struct for a chunked-layout version."""
    return _CHUNK_CRC if version >= VERSION_CRC else _CHUNK


def data_offset(version: int) -> int:
    """File offset where the post-header data starts."""
    if version >= VERSION_CRC:
        return _HEADER.size + _U32.size  # header CRC sits between
    return _HEADER.size


def chunk_crc32(n_records: int, payload) -> int:
    """v3 per-chunk checksum: CRC32 over the packed prefix + payload.

    Folding the (n_records, payload_bytes) prefix into the checksum
    means a bit flip in the frame itself — not just the payload — fails
    verification.  For v5 chunks ``payload`` is the *stored* (possibly
    compressed) bytes, so integrity is established before any
    decompression is attempted.
    """
    crc = zlib.crc32(_CHUNK.pack(n_records, len(payload)))
    return zlib.crc32(payload, crc) & 0xFFFF_FFFF


def header_crc32(header_bytes) -> int:
    """v3 header checksum: CRC32 over the packed 36-byte header."""
    return zlib.crc32(header_bytes) & 0xFFFF_FFFF
