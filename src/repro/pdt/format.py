"""On-disk trace-format constants shared by the writer and reader.

Three file layouts share the same magic and header struct; the header's
``version`` field selects between them:

* **version 1 (legacy)** — the seed's list layout: a stream directory
  (record counts per core) followed by all records grouped per stream.
  Reading it requires holding the whole payload; kept for backward
  compatibility.
* **version 2 (chunked columnar)** — the streaming layout: records in
  *chunks* of at most ~64K records, each chunk framed by its own
  (n_records, payload_bytes) prefix so a reader can index the file by
  seeking from prefix to prefix without touching payload bytes.  Both
  writing and re-reading need only O(chunk) memory.
* **version 3 (chunked + CRC, the default)** — version 2 plus
  integrity checks: each chunk frame grows a CRC32 over its prefix and
  payload, and a CRC32 of the header bytes follows the header.  A
  flipped bit anywhere in the file is *detected* instead of silently
  decoding into wrong timestamps; a damaged file can be salvaged chunk
  by chunk (``read_trace(..., strict=False)``).

Header struct (little endian), shared by all versions::

    magic           4s   b"PDT1"
    version         u16  1, 2 or 3
    n_spes          u16
    timebase_div    u32
    spu_clock_hz    f64
    groups_bitmap   u32
    buffer_bytes    u32
    a               u32  v1: n_ppe_records    v2/v3: n_chunks
    b               u32  v1: n_spe_streams    v2/v3: total_records

v1 then has ``n_spe_streams`` entries of ``_STREAM`` (spe_id, count);
v2 has ``n_chunks`` chunks, each ``_CHUNK`` (n_records, payload_bytes)
followed by that many codec-encoded records.  v3 first has a u32
CRC32 of the 36 header bytes, then ``n_chunks`` chunks framed by
``_CHUNK_CRC`` (n_records, payload_bytes, crc32) where the checksum
covers the packed (n_records, payload_bytes) prefix followed by the
payload bytes — so prefix corruption is caught as well as payload
corruption.  A v2/v3 writer that cannot seek back to patch the header
writes ``n_chunks = 0xFFFFFFFF`` (:data:`CHUNKS_UNTIL_EOF`), meaning
"read chunks until end of file".
"""

from __future__ import annotations

import struct
import zlib

MAGIC = b"PDT1"

VERSION_LEGACY = 1
VERSION_CHUNKED = 2
VERSION_CRC = 3
SUPPORTED_VERSIONS = (VERSION_LEGACY, VERSION_CHUNKED, VERSION_CRC)

_HEADER = struct.Struct("<4sHHIdIIII")
_STREAM = struct.Struct("<II")  # v1: (spe_id, n_records)
_CHUNK = struct.Struct("<II")  # v2: (n_records, payload_bytes)
_CHUNK_CRC = struct.Struct("<III")  # v3: (n_records, payload_bytes, crc32)
_U32 = struct.Struct("<I")  # v3: header CRC32 trailer

#: v2/v3 ``n_chunks`` sentinel: chunk prefixes run until end of file.
CHUNKS_UNTIL_EOF = 0xFFFF_FFFF


class TraceFormatError(Exception):
    """The file is not a valid PDT trace."""


def check_version(version: int) -> None:
    """Raise a clear :class:`TraceFormatError` for unknown versions."""
    if version not in SUPPORTED_VERSIONS:
        raise TraceFormatError(
            f"unsupported trace version {version}; this build supports "
            f"versions {', '.join(str(v) for v in SUPPORTED_VERSIONS)} "
            "(1 = legacy stream layout, 2 = chunked columnar layout, "
            "3 = chunked layout with CRC32 integrity checks)"
        )


def chunk_frame_struct(version: int) -> struct.Struct:
    """The chunk-frame struct for a chunked-layout version."""
    return _CHUNK_CRC if version >= VERSION_CRC else _CHUNK


def data_offset(version: int) -> int:
    """File offset where the post-header data starts."""
    if version >= VERSION_CRC:
        return _HEADER.size + _U32.size  # header CRC sits between
    return _HEADER.size


def chunk_crc32(n_records: int, payload) -> int:
    """v3 per-chunk checksum: CRC32 over the packed prefix + payload.

    Folding the (n_records, payload_bytes) prefix into the checksum
    means a bit flip in the frame itself — not just the payload — fails
    verification.
    """
    crc = zlib.crc32(_CHUNK.pack(n_records, len(payload)))
    return zlib.crc32(payload, crc) & 0xFFFF_FFFF


def header_crc32(header_bytes) -> int:
    """v3 header checksum: CRC32 over the packed 36-byte header."""
    return zlib.crc32(header_bytes) & 0xFFFF_FFFF
