"""Tracing configuration — PDT's event-group mechanism.

The real PDT reads an XML configuration naming the event groups and
subgroups to record, how large the SPE-side buffers are, and where the
trace goes.  :class:`TraceConfig` is that file as a dataclass, with
the presets the experiments sweep over.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.pdt import events as ev


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """What to trace and what it costs."""

    #: Event groups to record (sync is implied while tracing at all).
    groups: typing.FrozenSet[str] = frozenset(
        {ev.GROUP_LIFECYCLE, ev.GROUP_DMA, ev.GROUP_MAILBOX, ev.GROUP_SIGNAL, ev.GROUP_USER}
    )
    #: SPE-side LS trace buffer (split into two halves), bytes.
    buffer_bytes: int = 16 * 1024
    #: SPU cycles charged per recorded SPE event (decrementer read +
    #: record store into LS).
    spu_record_cycles: int = 150
    #: PPE cycles charged per recorded PPE event (timebase read +
    #: store into the host-memory buffer).
    ppe_record_cycles: int = 400
    #: Double-buffer the LS trace buffer (the PDT design); False makes
    #: every flush synchronous — the A1 ablation.
    double_buffered: bool = True
    #: DMA tag group reserved for trace flushes.
    flush_tag: int = 31
    #: Main-memory bytes reserved per SPE for flushed records.
    trace_region_bytes: int = 4 * 1024 * 1024
    #: When the trace region fills: False stops recording (drops new
    #: records, the default), True wraps — the oldest records are
    #: overwritten so the trace keeps the most recent window.
    wrap: bool = False
    #: Trace only these SPEs (None = all).  Untraced SPEs get no LS
    #: trace buffer and pay zero tracing cost.
    spe_filter: typing.Optional[typing.FrozenSet[int]] = None

    def __post_init__(self) -> None:
        unknown = set(self.groups) - set(ev.ALL_GROUPS)
        if unknown:
            raise ValueError(
                f"unknown event groups: {sorted(unknown)} "
                f"(valid: {sorted(set(ev.ALL_GROUPS) - {ev.GROUP_SYNC})})"
            )
        if self.buffer_bytes < 512 or self.buffer_bytes % 32:
            raise ValueError(
                f"buffer_bytes must be >= 512 and a multiple of 32, "
                f"got {self.buffer_bytes}"
            )
        if not 0 <= self.flush_tag < 32:
            raise ValueError(f"flush_tag must be 0..31, got {self.flush_tag}")
        if self.spe_filter is not None:
            bad = [s for s in self.spe_filter if not 0 <= s < 16]
            if bad:
                raise ValueError(f"spe_filter contains invalid SPE ids: {bad}")

    def traces_spe(self, spe_id: int) -> bool:
        """Is this SPE included in tracing?"""
        return self.spe_filter is None or spe_id in self.spe_filter

    def enabled(self, group: str) -> bool:
        """Is a group recorded?  Sync records ride along with any tracing."""
        if group == ev.GROUP_SYNC:
            return True
        return group in self.groups

    # ------------------------------------------------------------------
    # presets used throughout the experiments
    # ------------------------------------------------------------------
    @classmethod
    def all_events(cls, **overrides) -> "TraceConfig":
        """Trace everything (the default)."""
        return cls(**overrides)

    @classmethod
    def dma_only(cls, **overrides) -> "TraceConfig":
        """Trace DMA traffic and lifecycle only — PDT's common slim mode."""
        return cls(
            groups=frozenset({ev.GROUP_LIFECYCLE, ev.GROUP_DMA}), **overrides
        )

    @classmethod
    def lifecycle_only(cls, **overrides) -> "TraceConfig":
        """Barest useful configuration: program start/stop only."""
        return cls(groups=frozenset({ev.GROUP_LIFECYCLE}), **overrides)

    def groups_bitmap(self) -> int:
        """Encode enabled groups for the trace-file header."""
        bitmap = 0
        for i, group in enumerate(ev.ALL_GROUPS):
            if group in self.groups:
                bitmap |= 1 << i
        return bitmap

    @staticmethod
    def groups_from_bitmap(bitmap: int) -> typing.FrozenSet[str]:
        return frozenset(
            group for i, group in enumerate(ev.ALL_GROUPS) if bitmap & (1 << i)
        )
