"""The in-memory trace container shared by tracer, writer, reader, TA."""

from __future__ import annotations

import dataclasses
import typing

from repro.pdt.events import SIDE_PPE, SIDE_SPE, TraceRecord


@dataclasses.dataclass
class TraceHeader:
    """Self-describing trace metadata (the file's architecture block).

    Deliberately does *not* contain per-SPE decrementer offsets or
    drift: on hardware nobody knows those, and the analyzer must
    recover the clock relations from sync records alone.
    """

    n_spes: int
    timebase_divider: int
    spu_clock_hz: float
    groups_bitmap: int
    buffer_bytes: int
    version: int = 1


@dataclasses.dataclass
class Trace:
    """A full PDT trace: header + records.

    Records are stored per producing core, each stream in recording
    order (that is how the buffers arrive in memory); ``all_records``
    provides the merged view keyed by (core, seq) — global *time*
    placement needs :class:`repro.pdt.correlate.ClockCorrelator`.
    """

    header: TraceHeader
    ppe_records: typing.List[TraceRecord] = dataclasses.field(default_factory=list)
    spe_records: typing.Dict[int, typing.List[TraceRecord]] = dataclasses.field(
        default_factory=dict
    )

    def records_for_spe(self, spe_id: int) -> typing.List[TraceRecord]:
        return self.spe_records.get(spe_id, [])

    def all_records(self) -> typing.Iterator[TraceRecord]:
        """Every record, PPE stream first then SPE streams by id."""
        yield from self.ppe_records
        for spe_id in sorted(self.spe_records):
            yield from self.spe_records[spe_id]

    @property
    def n_records(self) -> int:
        return len(self.ppe_records) + sum(len(r) for r in self.spe_records.values())

    def add(self, record: TraceRecord) -> None:
        if record.side == SIDE_PPE:
            self.ppe_records.append(record)
        elif record.side == SIDE_SPE:
            self.spe_records.setdefault(record.core, []).append(record)
        else:
            raise ValueError(f"record has invalid side {record.side}")

    def validate(self) -> None:
        """Check per-core sequence monotonicity; raises ValueError."""
        streams = [("ppe", self.ppe_records)] + [
            (f"spe{i}", recs) for i, recs in sorted(self.spe_records.items())
        ]
        for name, records in streams:
            seqs = [r.seq for r in records]
            if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
                raise ValueError(f"{name} stream is not in strict sequence order")
