"""The trace container: a thin compatibility view over the chunk store.

:class:`Trace` keeps the seed's record-list API (``ppe_records``,
``spe_records``, ``all_records`` …) but no longer *stores* records as
Python objects: the data lives in a :class:`~repro.pdt.store.ColumnStore`
and the list views materialize lazily, on first access, as caches.
Code that never touches the list views (the streaming analyzer, the
writer, validation) stays columnar end to end.

Mutating the materialized lists is supported for the compatibility
consumers that historically did so (e.g. stripping sync records before
building a :class:`~repro.pdt.correlate.ClockCorrelator`): those
consumers read the same cached lists.  The underlying store is not
affected by such edits — ``add`` is the only mutation the store sees.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.pdt.events import SIDE_PPE, SIDE_SPE, TraceRecord
from repro.pdt.format import default_trace_version
from repro.pdt.store import ColumnStore, EventSource, StoreSource


@dataclasses.dataclass
class TraceHeader:
    """Self-describing trace metadata (the file's architecture block).

    Deliberately does *not* contain per-SPE decrementer offsets or
    drift: on hardware nobody knows those, and the analyzer must
    recover the clock relations from sync records alone.

    ``version`` selects the file layout (see :mod:`repro.pdt.format`);
    it round-trips through write/read exactly.  The default is the
    per-section compressed columnar layout (version 6), overridable
    per process with ``REPRO_TRACE_VERSION`` (e.g. ``=5`` to keep
    emitting whole-payload-compressed v5 files).
    """

    n_spes: int
    timebase_divider: int
    spu_clock_hz: float
    groups_bitmap: int
    buffer_bytes: int
    version: int = dataclasses.field(default_factory=default_trace_version)


class Trace:
    """A full PDT trace: header + records, backed by a columnar store.

    Records are conceptually stored per producing core, each stream in
    recording order (that is how the buffers arrive in memory);
    ``all_records`` provides the merged view keyed by (core, seq) —
    global *time* placement needs
    :class:`repro.pdt.correlate.ClockCorrelator`.
    """

    def __init__(
        self, header: TraceHeader, store: typing.Optional[ColumnStore] = None
    ):
        self.header = header
        self.store = store if store is not None else ColumnStore()
        #: Set by ``read_trace(..., strict=False)``: the
        #: :class:`~repro.pdt.reader.SalvageReport` describing what a
        #: damaged file lost.  ``None`` for clean strict reads.
        self.salvage = None
        self._view_rows = -1
        self._ppe_view: typing.List[TraceRecord] = []
        self._spe_view: typing.Dict[int, typing.List[TraceRecord]] = {}

    # -- columnar interface ------------------------------------------
    def as_source(self) -> EventSource:
        """The streaming view: header + chunks, no object records."""
        return StoreSource(self.header, self.store)

    @property
    def n_records(self) -> int:
        return len(self.store)

    def add(self, record: TraceRecord) -> None:
        if record.side not in (SIDE_PPE, SIDE_SPE):
            raise ValueError(f"record has invalid side {record.side}")
        self.store.add_record(record)

    def validate(self) -> None:
        """Check per-core sequence monotonicity; raises ValueError.

        Runs columnar — no record objects are materialized.
        """
        last: typing.Dict[typing.Tuple[int, int], int] = {}
        for chunk in self.store.iter_chunks():
            for side, core, seq in zip(chunk.side, chunk.core, chunk.seq):
                key = (side, core if side == SIDE_SPE else 0)
                prev = last.get(key)
                if prev is not None and seq <= prev:
                    name = f"spe{key[1]}" if side == SIDE_SPE else "ppe"
                    raise ValueError(
                        f"{name} stream is not in strict sequence order"
                    )
                last[key] = seq

    # -- compatibility record-list views -----------------------------
    def _materialize(self) -> None:
        if self._view_rows == len(self.store):
            return
        ppe: typing.List[TraceRecord] = []
        spe: typing.Dict[int, typing.List[TraceRecord]] = {}
        for chunk in self.store.iter_chunks():
            for i in range(len(chunk)):
                record = chunk.record(i)
                if record.side == SIDE_PPE:
                    ppe.append(record)
                else:
                    spe.setdefault(record.core, []).append(record)
        self._ppe_view = ppe
        self._spe_view = spe
        self._view_rows = len(self.store)

    @property
    def ppe_records(self) -> typing.List[TraceRecord]:
        self._materialize()
        return self._ppe_view

    @property
    def spe_records(self) -> typing.Dict[int, typing.List[TraceRecord]]:
        self._materialize()
        return self._spe_view

    def records_for_spe(self, spe_id: int) -> typing.List[TraceRecord]:
        return self.spe_records.get(spe_id, [])

    def all_records(self) -> typing.Iterator[TraceRecord]:
        """Every record, PPE stream first then SPE streams by id."""
        yield from self.ppe_records
        spe = self.spe_records
        for spe_id in sorted(spe):
            yield from spe[spe_id]
