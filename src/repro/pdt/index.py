"""Zone-map chunk index: the trace file's pruning layer.

A *zone map* summarizes one chunk of trace records just enough for a
query planner to prove the chunk irrelevant without decoding it:

* record count,
* min/max **corrected** timestamp (global SPU cycles, the same domain
  :meth:`repro.pdt.correlate.ClockCorrelator.place_value` maps into),
* which SPEs contributed records (bitmap) and whether PPE records are
  present,
* which record codes appear, per side (128-bit code bitmaps).

Version-4 trace files embed one zone map per chunk in an *index
trailer* after the last chunk; the identical byte layout written to a
standalone ``<trace>.pdtx`` file is the *sidecar index* that backfills
pruning for v1–v3 traces without rewriting them.  Everything is
conservative: a zone map may admit a chunk the query does not need
(costing only wasted decode), but may never exclude a chunk holding a
matching record — :mod:`repro.tq` query results are byte-identical
with and without an index.

Two builders produce zone maps:

* :class:`IndexAccumulator` — streaming, used by the writers.  It
  cannot know the clock fits until the trace ends, so while records
  stream through it tracks, per chunk and per core, the min/max
  *elapsed decrementer ticks* since that core's first record (plus the
  raw values realizing them) and collects sync pairs; ``finalize``
  fits the clocks exactly like the analyzer will and maps the tracked
  extremes through the fits.  Corrected time is affine-increasing in
  elapsed ticks, so the extremes map to exact bounds — unless a core's
  span approaches the decrementer modulus, in which case the chunk is
  marked time-unbounded (pruning disabled, correctness kept).
* :func:`build_zone_maps` — exact per-record pass over decoded chunks,
  used for in-memory sources and the sidecar builder where the records
  are already at hand.
"""

from __future__ import annotations

import dataclasses
import struct
import typing
import zlib

from repro.pdt.format import (
    INDEX_MAGIC,
    INDEX_VERSION,
    TraceFormatError,
)

if typing.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.pdt.correlate import ClockCorrelator
    from repro.pdt.store import ColumnChunk

_IDX_HEADER = struct.Struct("<4sHHIQ")  # magic, version, reserved, n_chunks, total_records
_ZONE = struct.Struct("<IBBHIqq16s16s")
_U32 = struct.Struct("<I")

_FLAG_HAS_PPE = 0x01
_FLAG_SPE_OVERFLOW = 0x02
_FLAG_HAS_TIME = 0x04
_FLAG_CODE_OVERFLOW = 0x08

#: SPE ids below this fit the presence bitmap; larger ids set the
#: overflow flag, which disables SPE pruning for the chunk (sound).
SPE_BITMAP_BITS = 32
#: Record codes below this fit the per-side code bitmaps.
CODE_BITMAP_BITS = 128

#: Elapsed-tick guard: beyond this span the centered-residue arithmetic
#: the streaming accumulator relies on could wrap, so it declares the
#: chunk time-unbounded instead of risking an unsound bound.
_ELAPSED_GUARD = 1 << 30

#: Sentinel bounds for time-unbounded zones (never excluded by time).
_T_UNBOUNDED_MIN = -(1 << 62)
_T_UNBOUNDED_MAX = 1 << 62

#: Representable corrected-time range of the on-disk zone entry (signed
#: 64-bit).  Bounds outside it cannot be stored, so such a zone is
#: encoded time-unbounded — time pruning off for that chunk, never an
#: unsound bound.
_T_ENCODABLE_MIN = -(1 << 63)
_T_ENCODABLE_MAX = (1 << 63) - 1

_SIDE_PPE = 0
_SIDE_SPE = 1
_SYNC_CODE = 0x50  # repro.pdt.events: SPE sync record

_DECREMENTER_MODULUS = 1 << 32


def _elapsed_ticks(anchor: int, raw: int) -> int:
    """Signed centered residue of ``anchor - raw`` mod 2**32 (the
    decrementer counts down), mirroring ``repro.pdt.correlate``."""
    elapsed = (anchor - raw) % _DECREMENTER_MODULUS
    if elapsed >= _DECREMENTER_MODULUS // 2:
        elapsed -= _DECREMENTER_MODULUS
    return elapsed


@dataclasses.dataclass
class ZoneMap:
    """What a pruning reader may assume about one chunk.

    ``t_min``/``t_max`` bound the *corrected* (global SPU cycle)
    timestamps of every record in the chunk when ``has_time`` is true;
    they are conservative (possibly wider than the truth) but never
    narrower.  ``spe_bitmap`` bit *i* set means SPE *i* contributed at
    least one record; ``spe_overflow`` disables SPE pruning when an id
    does not fit the bitmap.  ``spe_codes``/``ppe_codes`` are 128-bit
    presence bitmaps over record codes, per side.
    """

    n_records: int
    has_time: bool = False
    t_min: int = _T_UNBOUNDED_MIN
    t_max: int = _T_UNBOUNDED_MAX
    spe_bitmap: int = 0
    has_ppe: bool = False
    spe_overflow: bool = False
    spe_codes: int = 0
    ppe_codes: int = 0
    code_overflow: bool = False

    def may_contain_spe(self, spe_id: int) -> bool:
        """Could the chunk hold records from SPE ``spe_id``?"""
        if self.spe_overflow:
            return True
        if spe_id < SPE_BITMAP_BITS:
            return bool(self.spe_bitmap & (1 << spe_id))
        return False

    def may_contain_code(self, side: int, code: int) -> bool:
        """Could the chunk hold a (side, code) record?"""
        if self.code_overflow:
            return True
        if code >= CODE_BITMAP_BITS:
            return False
        bits = self.ppe_codes if side == _SIDE_PPE else self.spe_codes
        return bool(bits & (1 << code))

    def may_overlap_time(
        self, t_min: typing.Optional[int], t_max: typing.Optional[int]
    ) -> bool:
        """Could the chunk hold a record with time in [t_min, t_max]?"""
        if not self.has_time:
            return True
        if t_min is not None and self.t_max < t_min:
            return False
        if t_max is not None and self.t_min > t_max:
            return False
        return True


# ----------------------------------------------------------------------
# serialization (v4 trailer section == .pdtx sidecar payload)
# ----------------------------------------------------------------------
def encode_index(zones: typing.Sequence[ZoneMap], total_records: int) -> bytes:
    """Serialize zone maps as the CRC-protected index section."""
    parts = [
        _IDX_HEADER.pack(
            INDEX_MAGIC, INDEX_VERSION, 0, len(zones), total_records
        )
    ]
    for zone in zones:
        has_time = (
            zone.has_time
            and _T_ENCODABLE_MIN <= zone.t_min
            and zone.t_max <= _T_ENCODABLE_MAX
        )
        flags = 0
        if zone.has_ppe:
            flags |= _FLAG_HAS_PPE
        if zone.spe_overflow:
            flags |= _FLAG_SPE_OVERFLOW
        if has_time:
            flags |= _FLAG_HAS_TIME
        if zone.code_overflow:
            flags |= _FLAG_CODE_OVERFLOW
        parts.append(
            _ZONE.pack(
                zone.n_records,
                flags,
                0,
                0,
                zone.spe_bitmap,
                zone.t_min if has_time else 0,
                zone.t_max if has_time else 0,
                zone.spe_codes.to_bytes(CODE_BITMAP_BITS // 8, "little"),
                zone.ppe_codes.to_bytes(CODE_BITMAP_BITS // 8, "little"),
            )
        )
    body = b"".join(parts)
    return body + _U32.pack(zlib.crc32(body) & 0xFFFF_FFFF)


def index_size(n_chunks: int) -> int:
    """Encoded byte size of an index over ``n_chunks`` chunks."""
    return _IDX_HEADER.size + n_chunks * _ZONE.size + _U32.size


def decode_index(
    blob: typing.Union[bytes, memoryview], offset: int = 0
) -> typing.Tuple[typing.List[ZoneMap], int, int]:
    """Parse one index section at ``offset``.

    Returns ``(zones, total_records, bytes_consumed)``.  Raises
    :class:`TraceFormatError` on any structural or checksum damage —
    callers that can fall back to a full scan catch it.
    """
    if offset + _IDX_HEADER.size > len(blob):
        raise TraceFormatError("truncated index header")
    magic, version, __, n_chunks, total_records = _IDX_HEADER.unpack_from(
        blob, offset
    )
    if magic != INDEX_MAGIC:
        raise TraceFormatError(
            f"bad index magic {bytes(magic)!r} (expected {INDEX_MAGIC!r})"
        )
    if version != INDEX_VERSION:
        raise TraceFormatError(f"unsupported index version {version}")
    size = index_size(n_chunks)
    if offset + size > len(blob):
        raise TraceFormatError(
            f"truncated index: need {size} bytes, have {len(blob) - offset}"
        )
    body = bytes(blob[offset : offset + size - _U32.size])
    (stored,) = _U32.unpack_from(blob, offset + size - _U32.size)
    computed = zlib.crc32(body) & 0xFFFF_FFFF
    if stored != computed:
        raise TraceFormatError(
            f"index CRC mismatch: stored 0x{stored:08x}, computed "
            f"0x{computed:08x}"
        )
    zones: typing.List[ZoneMap] = []
    entry_off = offset + _IDX_HEADER.size
    for __i in range(n_chunks):
        (
            n_records,
            flags,
            __r1,
            __r2,
            spe_bitmap,
            t_min,
            t_max,
            spe_codes,
            ppe_codes,
        ) = _ZONE.unpack_from(blob, entry_off)
        has_time = bool(flags & _FLAG_HAS_TIME)
        zones.append(
            ZoneMap(
                n_records=n_records,
                has_time=has_time,
                t_min=t_min if has_time else _T_UNBOUNDED_MIN,
                t_max=t_max if has_time else _T_UNBOUNDED_MAX,
                spe_bitmap=spe_bitmap,
                has_ppe=bool(flags & _FLAG_HAS_PPE),
                spe_overflow=bool(flags & _FLAG_SPE_OVERFLOW),
                spe_codes=int.from_bytes(spe_codes, "little"),
                ppe_codes=int.from_bytes(ppe_codes, "little"),
                code_overflow=bool(flags & _FLAG_CODE_OVERFLOW),
            )
        )
        entry_off += _ZONE.size
    return zones, total_records, size


def sidecar_path(trace_path: str) -> str:
    """Where the sidecar index for ``trace_path`` lives."""
    return trace_path + ".pdtx"


def write_sidecar(
    trace_path: str, zones: typing.Sequence[ZoneMap], total_records: int
) -> str:
    """Write a standalone ``.pdtx`` sidecar; returns its path."""
    path = sidecar_path(trace_path)
    with open(path, "wb") as handle:
        handle.write(encode_index(zones, total_records))
    return path


def read_sidecar(
    trace_path: str,
) -> typing.Optional[typing.Tuple[typing.List[ZoneMap], int]]:
    """Load the sidecar for ``trace_path`` if one exists and parses.

    Returns ``(zones, total_records)``, or ``None`` when there is no
    sidecar or it is damaged — a bad sidecar silently degrades to a
    full scan rather than failing the read.
    """
    path = sidecar_path(trace_path)
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError:
        return None
    try:
        zones, total_records, __ = decode_index(blob)
    except TraceFormatError:
        return None
    return zones, total_records


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
class _ZoneDraft:
    """Mutable per-chunk state while records stream through."""

    __slots__ = (
        "n_records", "spe_bitmap", "has_ppe", "spe_overflow", "spe_codes",
        "ppe_codes", "code_overflow", "ppe_raw_min", "ppe_raw_max", "cores",
    )

    def __init__(self) -> None:
        self.n_records = 0
        self.spe_bitmap = 0
        self.has_ppe = False
        self.spe_overflow = False
        self.spe_codes = 0
        self.ppe_codes = 0
        self.code_overflow = False
        self.ppe_raw_min: typing.Optional[int] = None
        self.ppe_raw_max: typing.Optional[int] = None
        #: core -> [e_min, raw_at_e_min, e_max, raw_at_e_max, overflowed]
        self.cores: typing.Dict[int, typing.List] = {}


class IndexAccumulator:
    """Builds zone maps while records stream to a writer.

    Feed every record through :meth:`observe` in write order, call
    :meth:`seal_chunk` exactly when the writer seals each chunk, and
    :meth:`finalize` once after the last seal.  Holds O(cores) state
    per chunk and never the records themselves.
    """

    def __init__(self) -> None:
        self._open = _ZoneDraft()
        self._sealed: typing.List[_ZoneDraft] = []
        #: core -> raw_ts of that core's first record (elapsed anchor)
        self._first_raw: typing.Dict[int, int] = {}
        #: core -> [(dec_raw, tb_raw)] sync pairs in stream order
        self._syncs: typing.Dict[int, typing.List[typing.Tuple[int, int]]] = {}
        self.total_records = 0

    def observe(
        self, side: int, code: int, core: int, raw_ts: int,
        values: typing.Sequence[int],
    ) -> None:
        draft = self._open
        draft.n_records += 1
        self.total_records += 1
        if code >= CODE_BITMAP_BITS:
            draft.code_overflow = True
        if side == _SIDE_PPE:
            draft.has_ppe = True
            if code < CODE_BITMAP_BITS:
                draft.ppe_codes |= 1 << code
            if draft.ppe_raw_min is None or raw_ts < draft.ppe_raw_min:
                draft.ppe_raw_min = raw_ts
            if draft.ppe_raw_max is None or raw_ts > draft.ppe_raw_max:
                draft.ppe_raw_max = raw_ts
            return
        if core < SPE_BITMAP_BITS:
            draft.spe_bitmap |= 1 << core
        else:
            draft.spe_overflow = True
        if code < CODE_BITMAP_BITS:
            draft.spe_codes |= 1 << code
        if code == _SYNC_CODE and values:
            self._syncs.setdefault(core, []).append((raw_ts, values[0]))
        first = self._first_raw.setdefault(core, raw_ts)
        elapsed = _elapsed_ticks(first, raw_ts)
        state = draft.cores.get(core)
        if state is None:
            draft.cores[core] = [elapsed, raw_ts, elapsed, raw_ts, False]
            state = draft.cores[core]
        else:
            if elapsed < state[0]:
                state[0], state[1] = elapsed, raw_ts
            if elapsed > state[2]:
                state[2], state[3] = elapsed, raw_ts
        if abs(elapsed) > _ELAPSED_GUARD:
            state[4] = True

    def seal_chunk(self) -> None:
        """The writer sealed the open chunk (even if empty writers skip
        empty chunks — call only for chunks actually written)."""
        self._sealed.append(self._open)
        self._open = _ZoneDraft()

    @property
    def n_chunks(self) -> int:
        return len(self._sealed)

    def finalize(self, timebase_divider: int) -> typing.List[ZoneMap]:
        """Fit the clocks from the collected syncs and emit zone maps."""
        from repro.pdt.correlate import fit_sync_pairs

        if self._open.n_records:
            raise ValueError(
                "IndexAccumulator.finalize called with an unsealed chunk "
                f"holding {self._open.n_records} records"
            )
        fits: typing.Dict[int, typing.Any] = {}
        for core, pairs in self._syncs.items():
            fits[core] = fit_sync_pairs(core, pairs, timebase_divider)
        zones: typing.List[ZoneMap] = []
        for draft in self._sealed:
            zones.append(self._zone_from_draft(draft, fits, timebase_divider))
        return zones

    def _zone_from_draft(
        self,
        draft: _ZoneDraft,
        fits: typing.Dict[int, typing.Any],
        divider: int,
    ) -> ZoneMap:
        bounds: typing.List[int] = []
        has_time = True
        if draft.ppe_raw_min is not None:
            bounds.append(draft.ppe_raw_min * divider)
            bounds.append(draft.ppe_raw_max * divider)
        for core, state in draft.cores.items():
            fit = fits.get(core)
            first = self._first_raw[core]
            if (
                fit is None
                or state[4]
                or abs(_elapsed_ticks(fit.dec_anchor, first)) > _ELAPSED_GUARD
            ):
                # No clock for this core, or its span flirts with the
                # decrementer modulus: time pruning off for this chunk.
                has_time = False
                break
            bounds.append(fit.to_global(state[1]))
            bounds.append(fit.to_global(state[3]))
        has_time = has_time and bool(bounds)
        return ZoneMap(
            n_records=draft.n_records,
            has_time=has_time,
            t_min=min(bounds) if has_time else _T_UNBOUNDED_MIN,
            t_max=max(bounds) if has_time else _T_UNBOUNDED_MAX,
            spe_bitmap=draft.spe_bitmap,
            has_ppe=draft.has_ppe,
            spe_overflow=draft.spe_overflow,
            spe_codes=draft.spe_codes,
            ppe_codes=draft.ppe_codes,
            code_overflow=draft.code_overflow,
        )


def zone_for_chunk(
    chunk: "ColumnChunk", correlator: typing.Optional["ClockCorrelator"]
) -> ZoneMap:
    """Exact zone map for one decoded chunk.

    With a ``correlator``, time bounds are the exact min/max of
    :meth:`~repro.pdt.correlate.ClockCorrelator.place_value` over the
    chunk's records (cores lacking a clock fit make the chunk
    time-unbounded); without one, only the presence summaries are
    filled, which still enables SPE/code pruning.
    """
    zone = ZoneMap(n_records=len(chunk))
    fits = correlator.fits if correlator is not None else {}
    divider = correlator.divider if correlator is not None else 0
    t_min: typing.Optional[int] = None
    t_max: typing.Optional[int] = None
    timeable = correlator is not None
    for i in range(len(chunk)):
        side, code, core = chunk.side[i], chunk.code[i], chunk.core[i]
        if code >= CODE_BITMAP_BITS:
            zone.code_overflow = True
        if side == _SIDE_PPE:
            zone.has_ppe = True
            if code < CODE_BITMAP_BITS:
                zone.ppe_codes |= 1 << code
            if timeable:
                time = chunk.raw_ts[i] * divider
        else:
            if core < SPE_BITMAP_BITS:
                zone.spe_bitmap |= 1 << core
            else:
                zone.spe_overflow = True
            if code < CODE_BITMAP_BITS:
                zone.spe_codes |= 1 << code
            if timeable:
                fit = fits.get(core)
                if fit is None:
                    timeable = False
                    continue
                time = fit.to_global(chunk.raw_ts[i])
        if timeable:
            if t_min is None or time < t_min:
                t_min = time
            if t_max is None or time > t_max:
                t_max = time
    if timeable and t_min is not None:
        zone.has_time = True
        zone.t_min = t_min
        zone.t_max = t_max
    return zone


def build_zone_maps(
    chunks: typing.Iterable["ColumnChunk"],
    correlator: typing.Optional["ClockCorrelator"] = None,
) -> typing.List[ZoneMap]:
    """Exact zone maps for a decoded chunk sequence (one per chunk, in
    order — alignment with the source's ``iter_chunks`` is the
    caller's contract)."""
    return [zone_for_chunk(chunk, correlator) for chunk in chunks]
