"""Trace-file writer: streams chunks from any :class:`EventSource`.

See :mod:`repro.pdt.format` for the on-disk layouts.  The writer
honours ``header.version`` exactly (round-tripping it) and rejects
versions it cannot produce with a clear error.

* :func:`write_trace` — serialize a :class:`Trace` or any
  :class:`EventSource`.  The chunked layouts (version 6 with
  per-section compressed columnar payloads, the default; version 5
  with whole-payload compression; version 4 with the zone-map index
  trailer; version 3 with CRC32 integrity checks; version 2 without)
  are written one chunk at a time in O(chunk) memory; the legacy
  layout (version 1) is still produced when ``header.version == 1``.
* :class:`ChunkWriter` — an :class:`EventSink` that writes records to
  disk *as they arrive*, sealing chunks as they fill; nothing but the
  open chunk (plus, for version 4, O(cores)-sized zone-map state per
  chunk) is ever held in memory.

Version 4 costs the writer almost nothing extra: while records stream
through, an :class:`~repro.pdt.index.IndexAccumulator` tracks per-chunk
presence bitmaps and elapsed-tick extremes, and at ``close`` the clock
fits are computed from the collected sync pairs (the same fit the
analyzer will make) to turn those extremes into exact corrected-time
bounds for the trailer.  Version 5 observes the same zone-map state
from the *raw* record components before the chunk payload is encoded
or compressed, so index construction never depends on being able to
decompress what was just written.

Both chunked writers work on non-seekable outputs (pipes, sockets):
when the stream cannot seek back to patch the header, the
:data:`CHUNKS_UNTIL_EOF` sentinel header is written up front and
readers consume chunks until end of file.
"""

from __future__ import annotations

import io
import typing

from repro.pdt import colenc
from repro.pdt.codec import _PREFIX, encode_batch, encode_fields
from repro.pdt.events import KIND_SYNC, SIDE_PPE, SIDE_SPE, code_for_kind
from repro.pdt.format import (
    _CHUNK,
    _CHUNK_CRC,
    _HEADER,
    _STREAM,
    _U32,
    CHUNKS_UNTIL_EOF,
    MAGIC,
    VERSION_COMPRESSED,
    VERSION_CRC,
    VERSION_INDEXED,
    VERSION_LEGACY,
    check_version,
    chunk_crc32,
    header_crc32,
)
from repro.pdt.index import IndexAccumulator, encode_index
from repro.pdt.store import CHUNK_RECORDS, ColumnChunk, EventSink, EventSource
from repro.pdt.trace import Trace, TraceHeader

_SYNC_CODE = code_for_kind(SIDE_SPE, KIND_SYNC).code


def _pack_header(header: TraceHeader, a: int, b: int) -> bytes:
    packed = _HEADER.pack(
        MAGIC,
        header.version,
        header.n_spes,
        header.timebase_divider,
        header.spu_clock_hz,
        header.groups_bitmap,
        header.buffer_bytes,
        a,
        b,
    )
    if header.version >= VERSION_CRC:
        packed += _U32.pack(header_crc32(packed))
    return packed


def _pack_chunk_frame(version: int, n_records: int, payload: bytes) -> bytes:
    if version >= VERSION_CRC:
        return _CHUNK_CRC.pack(
            n_records, len(payload), chunk_crc32(n_records, payload)
        )
    return _CHUNK.pack(n_records, len(payload))


def _seekable(out: typing.BinaryIO) -> bool:
    probe = getattr(out, "seekable", None)
    return bool(probe()) if callable(probe) else False


def _encode_chunk(chunk: ColumnChunk, version: int) -> bytes:
    # v5/v6 wrap the payload in the column-encoding (and optionally
    # compressing) layer — whole-payload compression for v5, per-
    # section for v6; earlier versions are the whole-chunk batch
    # encode (byte-identical to the per-record loop, which it falls
    # back to under REPRO_SCALAR_CODEC=1).
    if version >= VERSION_COMPRESSED:
        return colenc.encode_chunk_payload(chunk, version)
    return encode_batch(chunk)


def write_trace(
    trace: typing.Union[Trace, EventSource],
    path_or_file: typing.Union[str, typing.BinaryIO],
) -> int:
    """Serialize a trace or event source; returns bytes written."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "wb") as handle:
            return write_trace(trace, handle)
    source = trace.as_source() if isinstance(trace, Trace) else trace
    check_version(source.header.version)
    if source.header.version == VERSION_LEGACY:
        return _write_legacy(source, path_or_file)
    return _write_chunked(source, path_or_file)


def _write_chunked(source: EventSource, out: typing.BinaryIO) -> int:
    """Version-2/3/4/5/6 layout: header, then self-framed chunks in
    order, then (versions 4 and up) the zone-map index trailer.

    A non-seekable output gets the sentinel header (chunks run until
    EOF — for version 4, until the index trailer magic) instead of a
    seek-back patch.
    """
    version = source.header.version
    index = IndexAccumulator() if version >= VERSION_INDEXED else None
    seekable = _seekable(out)
    chunks = 0
    total = 0
    sentinel = CHUNKS_UNTIL_EOF if not seekable else 0
    written = out.write(_pack_header(source.header, sentinel, 0))
    for chunk in source.iter_chunks():
        if not len(chunk):
            continue
        payload = _encode_chunk(chunk, version)
        written += out.write(_pack_chunk_frame(version, len(chunk), payload))
        written += out.write(payload)
        chunks += 1
        total += len(chunk)
        if index is not None:
            off = chunk.val_off
            for i in range(len(chunk)):
                side, code = chunk.side[i], chunk.code[i]
                values: typing.Sequence[int] = ()
                if side == SIDE_SPE and code == _SYNC_CODE:
                    values = chunk.values[off[i] : off[i + 1]]
                index.observe(side, code, chunk.core[i], chunk.raw_ts[i], values)
            index.seal_chunk()
    if index is not None:
        zones = index.finalize(source.header.timebase_divider)
        written += out.write(encode_index(zones, total))
    if seekable:
        out.seek(0)
        out.write(_pack_header(source.header, chunks, total))
        out.seek(0, io.SEEK_END)
    return written


def _write_legacy(source: EventSource, out: typing.BinaryIO) -> int:
    """Version-1 layout: stream directory, then records grouped per
    stream (PPE first, then SPEs by id) — the seed's format."""
    counts: typing.Dict[typing.Tuple[int, int], int] = {}
    for chunk in source.iter_chunks():
        for side, core in zip(chunk.side, chunk.core):
            key = (side, core if side == SIDE_SPE else 0)
            counts[key] = counts.get(key, 0) + 1
    n_ppe = counts.get((SIDE_PPE, 0), 0)
    spe_ids = sorted(core for side, core in counts if side == SIDE_SPE)
    written = out.write(_pack_header(source.header, n_ppe, len(spe_ids)))
    for spe_id in spe_ids:
        written += out.write(_STREAM.pack(spe_id, counts[(SIDE_SPE, spe_id)]))
    streams = [(SIDE_PPE, None)] + [(SIDE_SPE, spe_id) for spe_id in spe_ids]
    for side, core in streams:
        for chunk in source.iter_chunks():
            off = chunk.val_off
            for i in range(len(chunk)):
                if chunk.side[i] != side:
                    continue
                if core is not None and chunk.core[i] != core:
                    continue
                written += out.write(
                    encode_fields(
                        chunk.side[i], chunk.code[i], chunk.core[i],
                        chunk.seq[i], chunk.raw_ts[i],
                        chunk.values[off[i] : off[i + 1]],
                    )
                )
    return written


def trace_to_bytes(trace: typing.Union[Trace, EventSource]) -> bytes:
    """Serialize to an in-memory buffer."""
    buffer = io.BytesIO()
    write_trace(trace, buffer)
    return buffer.getvalue()


class ChunkWriter(EventSink):
    """Stream records straight to a chunked (version 2–6) trace file.

    Records are encoded as they arrive and the chunk payload buffer is
    flushed to disk every ``chunk_records`` records, so writing a
    multi-million-event trace needs O(chunk) memory.  For version-4
    headers the zone-map index accumulates alongside (O(cores) extra
    state) and the trailer is appended at ``close``.  On ``close`` the
    header is patched with the final chunk/record counts when the
    output is seekable; otherwise the :data:`CHUNKS_UNTIL_EOF`
    sentinel header (written up front) stands and readers consume
    chunks until end of file (or the index trailer).
    """

    def __init__(
        self,
        path_or_file: typing.Union[str, typing.BinaryIO],
        header: TraceHeader,
        chunk_records: int = CHUNK_RECORDS,
    ):
        check_version(header.version)
        if header.version == VERSION_LEGACY:
            raise ValueError(
                "ChunkWriter only writes the chunked layouts (versions "
                f"2 through 6); got header version {header.version}"
            )
        if chunk_records < 1:
            raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
        self.header = header
        self.chunk_records = chunk_records
        self._owns_file = isinstance(path_or_file, str)
        self._out: typing.BinaryIO = (
            open(path_or_file, "wb") if self._owns_file else path_or_file
        )
        self._seekable = _seekable(self._out)
        # v5/v6 buffer raw components (the payload is column-encoded
        # at flush); earlier versions buffer pre-encoded records.
        self._columnar = header.version >= VERSION_COMPRESSED
        self._buffer: typing.List[bytes] = []
        self._column_buffer = ColumnChunk()
        self._buffered = 0
        self._index = (
            IndexAccumulator() if header.version >= VERSION_INDEXED else None
        )
        self.n_chunks = 0
        self.n_records = 0
        self.bytes_written = self._out.write(
            _pack_header(header, CHUNKS_UNTIL_EOF, 0)
        )
        self._closed = False

    def append(
        self, side: int, code: int, core: int, seq: int, raw_ts: int,
        values: typing.Sequence[int], truth: int = -1,
    ) -> None:
        if self._closed:
            raise ValueError("ChunkWriter is closed")
        if self._columnar:
            # Same eager out-of-range struct.error as encode_fields
            # raises on the pre-v5 path, before the record is buffered.
            _PREFIX.pack(side, code, core, seq, raw_ts)
            self._column_buffer.append(side, code, core, seq, raw_ts, values)
        else:
            self._buffer.append(
                encode_fields(side, code, core, seq, raw_ts, values)
            )
        self._buffered += 1
        if self._index is not None:
            self._index.observe(side, code, core, raw_ts, values)
        if self._buffered >= self.chunk_records:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        if not self._buffered:
            return
        if self._columnar:
            payload = colenc.encode_chunk_payload(
                self._column_buffer, self.header.version
            )
            self._column_buffer = ColumnChunk()
        else:
            payload = b"".join(self._buffer)
            self._buffer.clear()
        self.bytes_written += self._out.write(
            _pack_chunk_frame(self.header.version, self._buffered, payload)
        )
        self.bytes_written += self._out.write(payload)
        self.n_chunks += 1
        self.n_records += self._buffered
        self._buffered = 0
        if self._index is not None:
            self._index.seal_chunk()

    def close(self) -> None:
        if self._closed:
            return
        self._flush_chunk()
        if self._index is not None:
            zones = self._index.finalize(self.header.timebase_divider)
            self.bytes_written += self._out.write(
                encode_index(zones, self.n_records)
            )
        if self._seekable:
            self._out.seek(0)
            self._out.write(_pack_header(self.header, self.n_chunks, self.n_records))
            self._out.seek(0, io.SEEK_END)
        if self._owns_file:
            self._out.close()
        self._closed = True

    def __enter__(self) -> "ChunkWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
