"""Trace-file writer.

File layout (little endian)::

    magic           4s   b"PDT1"
    version         u16
    n_spes          u16
    timebase_div    u32
    spu_clock_hz    f64
    groups_bitmap   u32
    buffer_bytes    u32
    n_ppe_records   u32
    n_spe_streams   u32
    --- per SPE stream ---
    spe_id          u32
    n_records       u32
    --- payload ---
    PPE records, then each SPE stream's records, in the 16-byte
    record encoding of :mod:`repro.pdt.codec`.
"""

from __future__ import annotations

import io
import struct
import typing

from repro.pdt.codec import encode_record
from repro.pdt.trace import Trace

MAGIC = b"PDT1"
_HEADER = struct.Struct("<4sHHIdIIII")
_STREAM = struct.Struct("<II")


def write_trace(trace: Trace, path_or_file: typing.Union[str, typing.BinaryIO]) -> int:
    """Serialize a trace; returns the number of bytes written."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "wb") as handle:
            return write_trace(trace, handle)
    out: typing.BinaryIO = path_or_file
    header = trace.header
    spe_ids = sorted(trace.spe_records)
    written = out.write(
        _HEADER.pack(
            MAGIC,
            header.version,
            header.n_spes,
            header.timebase_divider,
            header.spu_clock_hz,
            header.groups_bitmap,
            header.buffer_bytes,
            len(trace.ppe_records),
            len(spe_ids),
        )
    )
    for spe_id in spe_ids:
        written += out.write(_STREAM.pack(spe_id, len(trace.spe_records[spe_id])))
    for record in trace.ppe_records:
        written += out.write(encode_record(record))
    for spe_id in spe_ids:
        for record in trace.spe_records[spe_id]:
            written += out.write(encode_record(record))
    return written


def trace_to_bytes(trace: Trace) -> bytes:
    """Serialize to an in-memory buffer."""
    buffer = io.BytesIO()
    write_trace(trace, buffer)
    return buffer.getvalue()
