"""Clock correlation: placing all records on one global timeline.

The trace contains PPE records timestamped with the (up-counting)
timebase and per-SPE records timestamped with (down-counting, wrapped,
offset, possibly drifting) decrementers.  Nothing in the file states
the relation between these clocks; the analyzer recovers it from the
*sync records* PDT writes, each pairing a decrementer reading with a
timebase reading taken at the same instant.

For each SPE we fit, by least squares over its sync records::

    global_cycles  ≈  a + b * elapsed_ticks(dec_first, dec_i)

which absorbs the unknown decrementer load offset (``a``) and the
effective tick period including drift (``b``).  PPE records are placed
directly at ``raw_ts * timebase_divider``.

Both clocks tick ~two orders of magnitude coarser than the SPU
executes, so placement has inherent quantization error; the per-core
sequence numbers preserve *order* exactly, and placement additionally
clamps each core's stream to be monotone so downstream interval
reconstruction never sees time run backwards.

Two placement APIs share the fits:

* the seed's materialized one — :meth:`ClockCorrelator.place_records`
  returning a sorted list of :class:`PlacedRecord` objects — kept for
  compatibility and as the reference implementation;
* the streaming one — :meth:`ClockCorrelator.place_core_stream`,
  :meth:`place_ppe_stream` and :meth:`iter_placed`, which yield
  :class:`PlacedEvent` values chunk by chunk.  ``iter_placed`` merges
  the per-stream iterators by the same ``(time, side, core, seq)`` key
  the materialized sort uses, so both APIs produce records in the
  identical global order.
"""

from __future__ import annotations

import dataclasses
import heapq
import typing

import numpy as np

from repro.pdt import events as ev
from repro.pdt.events import TraceRecord, spec_for_code
from repro.pdt.store import EventSource
from repro.pdt.trace import Trace

_DECREMENTER_MODULUS = 1 << 32


def _elapsed_ticks(dec_anchor: int, dec_raw: int) -> int:
    """Signed tick count from the anchor sync to ``dec_raw``.

    The decrementer counts *down* modulo 2**32, so the raw difference
    is only meaningful modulo the counter width.  Taking the centered
    residue keeps readings *before* the anchor (larger decrementer
    values) slightly negative instead of wrapping a full modulus into
    the future — which matters whenever records survive from before
    the first surviving sync, e.g. wrap-mode traces whose early syncs
    were overwritten, or ``trace_loss`` spans that by construction
    describe records older than everything retained.
    """
    elapsed = (dec_anchor - dec_raw) % _DECREMENTER_MODULUS
    if elapsed >= _DECREMENTER_MODULUS // 2:
        elapsed -= _DECREMENTER_MODULUS
    return elapsed

#: Sync observations for one SPE: (decrementer raw, timebase raw) pairs.
_SyncPairs = typing.List[typing.Tuple[int, int]]


class CorrelationError(Exception):
    """The trace lacks the sync records needed to correlate a clock."""


@dataclasses.dataclass
class SpeClockFit:
    """The recovered decrementer->global mapping for one SPE."""

    spe_id: int
    dec_anchor: int  # decrementer value of the first sync record
    intercept: float  # global cycles at the anchor
    cycles_per_tick: float
    n_sync: int
    #: Max |fit - observed| over the sync records, in cycles.
    max_residual: float

    def to_global(self, dec_raw: int) -> int:
        elapsed = _elapsed_ticks(self.dec_anchor, dec_raw)
        return int(round(self.intercept + self.cycles_per_tick * elapsed))


def fit_sync_pairs(
    spe_id: int, pairs: "_SyncPairs", divider: int
) -> SpeClockFit:
    """Least-squares fit of one SPE's clock from its sync pairs.

    The single source of the fit math: :class:`ClockCorrelator` and the
    writer-side zone-map builder (:mod:`repro.pdt.index`) both call it,
    so an index built at write time predicts exactly the timestamps the
    analyzer will later compute from the same sync records.
    """
    if not pairs:
        raise CorrelationError(
            f"SPE {spe_id} trace has no sync records; cannot correlate"
        )
    anchor = pairs[0][0]
    elapsed = np.array(
        [_elapsed_ticks(anchor, dec_raw) for dec_raw, __ in pairs],
        dtype=float,
    )
    global_cycles = np.array(
        [tb_raw * divider for __, tb_raw in pairs], dtype=float
    )
    if len(pairs) == 1 or elapsed.max() == 0:
        # One anchor: assume the nominal period.
        intercept = float(global_cycles[0])
        slope = float(divider)
    else:
        design = np.vstack([np.ones_like(elapsed), elapsed]).T
        (intercept, slope), *__ = np.linalg.lstsq(design, global_cycles, rcond=None)
    predicted = intercept + slope * elapsed
    max_residual = float(np.max(np.abs(predicted - global_cycles)))
    return SpeClockFit(
        spe_id=spe_id,
        dec_anchor=anchor,
        intercept=float(intercept),
        cycles_per_tick=float(slope),
        n_sync=len(pairs),
        max_residual=max_residual,
    )


class PlacedEvent:
    """One record on the global timeline, without a backing object.

    The streaming analogue of :class:`PlacedRecord`: all record
    components are carried as plain slots, and the ``fields`` dict (or
    a full :class:`TraceRecord`) materializes only if asked for.
    """

    __slots__ = ("time", "side", "code", "core", "seq", "raw_ts", "values",
                 "truth", "_fields", "_spec")

    def __init__(
        self, time: int, side: int, code: int, core: int, seq: int,
        raw_ts: int, values: typing.Sequence[int], truth: int = -1,
    ):
        self.time = time
        self.side = side
        self.code = code
        self.core = core
        self.seq = seq
        self.raw_ts = raw_ts
        self.values = values
        self.truth = truth
        self._fields: typing.Optional[typing.Dict[str, int]] = None
        self._spec: typing.Optional[ev.EventSpec] = None

    @property
    def spec(self) -> ev.EventSpec:
        # Cached: the timeline builders ask for spec/kind/fields two or
        # three times per record, and the registry lookup is a
        # measurable slice of a whole streaming pass.
        spec = self._spec
        if spec is None:
            spec = self._spec = spec_for_code(self.side, self.code)
        return spec

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def is_spe(self) -> bool:
        return self.side == ev.SIDE_SPE

    @property
    def fields(self) -> typing.Dict[str, int]:
        if self._fields is None:
            self._fields = dict(zip(self.spec.fields, self.values))
        return self._fields

    @property
    def record(self) -> TraceRecord:
        """Materialize a compatibility :class:`TraceRecord`."""
        return TraceRecord(
            side=self.side, code=self.code, core=self.core, seq=self.seq,
            raw_ts=self.raw_ts, fields=dict(self.fields),
            truth_time=self.truth,
        )

    @property
    def sort_key(self) -> typing.Tuple[int, int, int, int]:
        return (self.time, self.side, self.core, self.seq)

    def __repr__(self) -> str:
        side = "spe" if self.is_spe else "ppe"
        return (
            f"PlacedEvent({self.kind} {side}{self.core} seq={self.seq} "
            f"t={self.time})"
        )


@dataclasses.dataclass
class PlacedRecord:
    """A record with its reconstructed global time (SPU cycles)."""

    record: TraceRecord
    time: int

    @property
    def kind(self) -> str:
        return self.record.kind

    # Delegation mirrors PlacedEvent so timeline builders can consume
    # either representation.
    @property
    def side(self) -> int:
        return self.record.side

    @property
    def core(self) -> int:
        return self.record.core

    @property
    def seq(self) -> int:
        return self.record.seq

    @property
    def raw_ts(self) -> int:
        return self.record.raw_ts

    @property
    def is_spe(self) -> bool:
        return self.record.is_spe

    @property
    def fields(self) -> typing.Dict[str, int]:
        return self.record.fields

    @property
    def sort_key(self) -> typing.Tuple[int, int, int, int]:
        return (self.time, self.record.side, self.record.core, self.record.seq)


def _sort_key(p: typing.Union[PlacedEvent, PlacedRecord]) -> typing.Tuple[int, int, int, int]:
    return p.sort_key


class ClockCorrelator:
    """Fits and applies the per-core clock maps for one trace.

    Accepts either a :class:`Trace` (compatibility: sync records are
    collected from the materialized per-SPE lists, honoring any edits
    made to them) or any :class:`EventSource` (streaming: syncs are
    collected in one pass over the chunks).
    """

    def __init__(self, trace: typing.Union[Trace, EventSource]):
        self.trace = trace if isinstance(trace, Trace) else None
        self.source: EventSource = (
            trace.as_source() if isinstance(trace, Trace) else trace
        )
        self.divider = self.source.header.timebase_divider
        #: Carried from a non-strict read (``open_trace``/``read_trace``
        #: with ``strict=False``): the SalvageReport describing file
        #: damage, so losses reach the TA model's data-quality section.
        self.salvage = getattr(trace, "salvage", None)
        self.fits: typing.Dict[int, SpeClockFit] = {}
        if self.trace is not None:
            for spe_id, records in sorted(self.trace.spe_records.items()):
                pairs = [
                    (r.raw_ts, r.fields["tb_raw"])
                    for r in records
                    if r.kind == ev.KIND_SYNC
                ]
                self.fits[spe_id] = self._fit_pairs(spe_id, pairs)
        else:
            spe_ids, syncs = self.source.scan_sync()
            for spe_id in sorted(spe_ids):
                self.fits[spe_id] = self._fit_pairs(spe_id, syncs.get(spe_id, []))

    @classmethod
    def from_fits(
        cls,
        divider: int,
        fits: typing.Dict[int, SpeClockFit],
        source: typing.Optional[EventSource] = None,
    ) -> "ClockCorrelator":
        """Rebuild a correlator from already-computed fits.

        The shard-worker path: the parent process fits the clocks once
        on the whole unpruned file and ships ``(divider, fits)`` to
        each worker, which must place every record *identically* to a
        serial scan without re-reading the sync records.  ``source`` is
        only needed for the streaming placement APIs, not for
        :meth:`place_value`.
        """
        correlator = cls.__new__(cls)
        correlator.trace = None
        correlator.source = source  # type: ignore[assignment]
        correlator.divider = divider
        correlator.salvage = getattr(source, "salvage", None)
        correlator.fits = dict(fits)
        return correlator

    # ------------------------------------------------------------------
    def _fit_pairs(self, spe_id: int, pairs: _SyncPairs) -> SpeClockFit:
        return fit_sync_pairs(spe_id, pairs, self.divider)

    # ------------------------------------------------------------------
    def place_value(self, side: int, core: int, raw_ts: int) -> int:
        """Global time (SPU cycles) from raw record components."""
        if side == ev.SIDE_PPE:
            return raw_ts * self.divider
        fit = self.fits.get(core)
        if fit is None:
            raise CorrelationError(f"no clock fit for SPE {core}")
        return fit.to_global(raw_ts)

    def place(self, record: TraceRecord) -> int:
        """Global time (SPU cycles) for one record."""
        return self.place_value(record.side, record.core, record.raw_ts)

    def place_records(self) -> typing.List[PlacedRecord]:
        """Place every record; monotone per core; globally sorted.

        Sort key is (time, side, core, seq) so equal-time records have
        a stable, deterministic order.  Requires a :class:`Trace` (the
        compatibility path); streaming consumers use
        :meth:`iter_placed` instead.
        """
        if self.trace is None:
            raise CorrelationError(
                "place_records needs a materialized Trace; use iter_placed "
                "for streaming sources"
            )
        placed: typing.List[PlacedRecord] = []
        streams = [self.trace.ppe_records] + [
            self.trace.spe_records[i] for i in sorted(self.trace.spe_records)
        ]
        for stream in streams:
            last = None
            for record in stream:
                time = self.place(record)
                if last is not None and time < last:
                    time = last  # clamp: order within a core is truth
                last = time
                placed.append(PlacedRecord(record=record, time=time))
        placed.sort(key=_sort_key)
        return placed

    # -- streaming placement -------------------------------------------
    def spe_ids(self) -> typing.List[int]:
        return sorted(self.fits)

    def _placed_stream(
        self, side: int, core: typing.Optional[int]
    ) -> typing.Iterator[PlacedEvent]:
        """One recording stream placed and clamped, in recording order."""
        last = None
        for chunk in self.source.iter_chunks():
            off = chunk.val_off
            for i in range(len(chunk)):
                if chunk.side[i] != side:
                    continue
                if core is not None and chunk.core[i] != core:
                    continue
                time = self.place_value(side, chunk.core[i], chunk.raw_ts[i])
                if last is not None and time < last:
                    time = last  # clamp: order within a core is truth
                last = time
                yield PlacedEvent(
                    time, side, chunk.code[i], chunk.core[i], chunk.seq[i],
                    chunk.raw_ts[i], chunk.values[off[i] : off[i + 1]],
                    chunk.truth[i],
                )

    def place_core_stream(self, spe_id: int) -> typing.Iterator[PlacedEvent]:
        """One SPE's records placed, clamped, in recording order.

        After clamping, time is non-decreasing in seq, so this order is
        exactly the global sort order restricted to the core.
        """
        return self._placed_stream(ev.SIDE_SPE, spe_id)

    def place_ppe_stream(self) -> typing.Iterator[PlacedEvent]:
        """The PPE stream placed, clamped, in global sort order.

        The PPE stream is clamped in recording (seq) order like any
        other stream, but its ``core`` field carries the *thread id*,
        which varies freely within equal-time runs — so matching the
        global ``(time, side, core, seq)`` order additionally requires
        re-sorting each equal-time run by (core, seq).
        """
        run: typing.List[PlacedEvent] = []
        for placed in self._placed_stream(ev.SIDE_PPE, None):
            if run and placed.time != run[0].time:
                run.sort(key=lambda p: (p.core, p.seq))
                yield from run
                run = []
            run.append(placed)
        run.sort(key=lambda p: (p.core, p.seq))
        yield from run

    def iter_demuxed(
        self,
    ) -> typing.Iterator[typing.Tuple[typing.Optional[int], PlacedEvent]]:
        """Every stream placed in ONE pass over the source.

        Yields ``(stream, placed)`` pairs where ``stream`` is the SPE id
        for SPE records and ``None`` for PPE records.  Each stream's
        subsequence is identical to what :meth:`place_core_stream` /
        :meth:`place_ppe_stream` produce (clamping and the PPE
        equal-time-run resort included), but the chunks are decoded only
        once — this is what lets :func:`repro.ta.analyze` drive every
        timeline builder from a single scan.  There is no ordering
        guarantee *across* streams.
        """
        spe_last: typing.Dict[int, int] = {}
        ppe_last: typing.Optional[int] = None
        ppe_run: typing.List[PlacedEvent] = []
        # The demux loop runs once per record over the whole trace, so
        # :meth:`place_value` is inlined here: the three stacked frames
        # (place_value -> to_global -> _elapsed_ticks) cost more than
        # the arithmetic they wrap.  The math below is the same
        # expression — ``x % 2**32`` written as ``x & 0xFFFFFFFF``,
        # identical on Python ints of either sign.
        fit_params = {
            core: (fit.dec_anchor, fit.intercept, fit.cycles_per_tick)
            for core, fit in self.fits.items()
        }
        divider = self.divider
        side_spe = ev.SIDE_SPE
        for chunk in self.source.iter_chunks():
            off = chunk.val_off
            sides = chunk.side
            codes = chunk.code
            cores = chunk.core
            seqs = chunk.seq
            raws = chunk.raw_ts
            truths = chunk.truth
            values = chunk.values
            for i in range(len(sides)):
                side = sides[i]
                core = cores[i]
                raw = raws[i]
                if side == side_spe:
                    try:
                        anchor, intercept, per_tick = fit_params[core]
                    except KeyError:
                        raise CorrelationError(
                            f"no clock fit for SPE {core}"
                        ) from None
                    elapsed = (anchor - raw) & 0xFFFFFFFF
                    if elapsed >= 0x80000000:
                        elapsed -= 0x100000000
                    time = int(round(intercept + per_tick * elapsed))
                    last = spe_last.get(core)
                    if last is not None and time < last:
                        time = last  # clamp: order within a core is truth
                    spe_last[core] = time
                    yield core, PlacedEvent(
                        time, side, codes[i], core, seqs[i],
                        raw, values[off[i] : off[i + 1]], truths[i],
                    )
                else:
                    time = raw * divider
                    if ppe_last is not None and time < ppe_last:
                        time = ppe_last
                    ppe_last = time
                    placed = PlacedEvent(
                        time, side, codes[i], core, seqs[i],
                        raw, values[off[i] : off[i + 1]], truths[i],
                    )
                    if ppe_run and time != ppe_run[0].time:
                        ppe_run.sort(key=lambda p: (p.core, p.seq))
                        for pending in ppe_run:
                            yield None, pending
                        ppe_run = []
                    ppe_run.append(placed)
        ppe_run.sort(key=lambda p: (p.core, p.seq))
        for pending in ppe_run:
            yield None, pending

    def iter_placed(self) -> typing.Iterator[PlacedEvent]:
        """Every record placed, in the global sort order, streamed.

        Merges the per-stream iterators (each already in global-order
        restricted to itself) by the global key; since keys are unique
        across streams, this reproduces exactly the order
        :meth:`place_records` produces — without materializing
        anything.
        """
        streams: typing.List[typing.Iterator[PlacedEvent]] = [
            self.place_ppe_stream()
        ]
        streams.extend(self.place_core_stream(spe_id) for spe_id in self.spe_ids())
        return heapq.merge(*streams, key=_sort_key)


def correlation_errors(
    placed: typing.Sequence[typing.Union[PlacedRecord, PlacedEvent]]
) -> typing.List[int]:
    """|placed - ground truth| per record, where truth is available.

    Only meaningful for in-memory traces (``truth_time`` does not
    survive file round-trips); powers the F6 accuracy experiment.
    """
    return [
        abs(p.time - p.record.truth_time)
        for p in placed
        if p.record.truth_time >= 0
    ]


@dataclasses.dataclass
class CorrelatedTrace:
    """A trace with its correlator and globally placed records."""

    trace: Trace
    correlator: ClockCorrelator
    placed: typing.List[PlacedRecord]

    @classmethod
    def build(cls, trace: Trace) -> "CorrelatedTrace":
        correlator = ClockCorrelator(trace)
        return cls(trace=trace, correlator=correlator, placed=correlator.place_records())

    def for_core(self, side: int, core: int) -> typing.List[PlacedRecord]:
        return [
            p for p in self.placed
            if p.record.side == side and p.record.core == core
        ]

    def spe_stream(self, spe_id: int) -> typing.List[PlacedRecord]:
        return self.for_core(ev.SIDE_SPE, spe_id)

    @property
    def ppe_stream(self) -> typing.List[PlacedRecord]:
        """All PPE records (the core field holds the thread id)."""
        return [p for p in self.placed if p.record.side == ev.SIDE_PPE]
