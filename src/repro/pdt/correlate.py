"""Clock correlation: placing all records on one global timeline.

The trace contains PPE records timestamped with the (up-counting)
timebase and per-SPE records timestamped with (down-counting, wrapped,
offset, possibly drifting) decrementers.  Nothing in the file states
the relation between these clocks; the analyzer recovers it from the
*sync records* PDT writes, each pairing a decrementer reading with a
timebase reading taken at the same instant.

For each SPE we fit, by least squares over its sync records::

    global_cycles  ≈  a + b * elapsed_ticks(dec_first, dec_i)

which absorbs the unknown decrementer load offset (``a``) and the
effective tick period including drift (``b``).  PPE records are placed
directly at ``raw_ts * timebase_divider``.

Both clocks tick ~two orders of magnitude coarser than the SPU
executes, so placement has inherent quantization error; the per-core
sequence numbers preserve *order* exactly, and :func:`place_records`
additionally clamps each core's stream to be monotone so downstream
interval reconstruction never sees time run backwards.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.pdt import events as ev
from repro.pdt.events import TraceRecord
from repro.pdt.trace import Trace

_DECREMENTER_MODULUS = 1 << 32


class CorrelationError(Exception):
    """The trace lacks the sync records needed to correlate a clock."""


@dataclasses.dataclass
class SpeClockFit:
    """The recovered decrementer->global mapping for one SPE."""

    spe_id: int
    dec_anchor: int  # decrementer value of the first sync record
    intercept: float  # global cycles at the anchor
    cycles_per_tick: float
    n_sync: int
    #: Max |fit - observed| over the sync records, in cycles.
    max_residual: float

    def to_global(self, dec_raw: int) -> int:
        elapsed = (self.dec_anchor - dec_raw) % _DECREMENTER_MODULUS
        return int(round(self.intercept + self.cycles_per_tick * elapsed))


@dataclasses.dataclass
class PlacedRecord:
    """A record with its reconstructed global time (SPU cycles)."""

    record: TraceRecord
    time: int

    @property
    def kind(self) -> str:
        return self.record.kind


class ClockCorrelator:
    """Fits and applies the per-core clock maps for one trace."""

    def __init__(self, trace: Trace):
        self.trace = trace
        self.divider = trace.header.timebase_divider
        self.fits: typing.Dict[int, SpeClockFit] = {}
        for spe_id, records in sorted(trace.spe_records.items()):
            self.fits[spe_id] = self._fit_spe(spe_id, records)

    # ------------------------------------------------------------------
    def _fit_spe(self, spe_id: int, records: typing.List[TraceRecord]) -> SpeClockFit:
        syncs = [r for r in records if r.kind == ev.KIND_SYNC]
        if not syncs:
            raise CorrelationError(
                f"SPE {spe_id} trace has no sync records; cannot correlate"
            )
        anchor = syncs[0].raw_ts
        elapsed = np.array(
            [(anchor - r.raw_ts) % _DECREMENTER_MODULUS for r in syncs], dtype=float
        )
        global_cycles = np.array(
            [r.fields["tb_raw"] * self.divider for r in syncs], dtype=float
        )
        if len(syncs) == 1 or elapsed.max() == 0:
            # One anchor: assume the nominal period.
            intercept = float(global_cycles[0])
            slope = float(self.divider)
        else:
            design = np.vstack([np.ones_like(elapsed), elapsed]).T
            (intercept, slope), *__ = np.linalg.lstsq(design, global_cycles, rcond=None)
        predicted = intercept + slope * elapsed
        max_residual = float(np.max(np.abs(predicted - global_cycles)))
        return SpeClockFit(
            spe_id=spe_id,
            dec_anchor=anchor,
            intercept=float(intercept),
            cycles_per_tick=float(slope),
            n_sync=len(syncs),
            max_residual=max_residual,
        )

    # ------------------------------------------------------------------
    def place(self, record: TraceRecord) -> int:
        """Global time (SPU cycles) for one record."""
        if record.side == ev.SIDE_PPE:
            return record.raw_ts * self.divider
        fit = self.fits.get(record.core)
        if fit is None:
            raise CorrelationError(f"no clock fit for SPE {record.core}")
        return fit.to_global(record.raw_ts)

    def place_records(self) -> typing.List[PlacedRecord]:
        """Place every record; monotone per core; globally sorted.

        Sort key is (time, side, core, seq) so equal-time records have
        a stable, deterministic order.
        """
        placed: typing.List[PlacedRecord] = []
        streams = [self.trace.ppe_records] + [
            self.trace.spe_records[i] for i in sorted(self.trace.spe_records)
        ]
        for stream in streams:
            last = None
            for record in stream:
                time = self.place(record)
                if last is not None and time < last:
                    time = last  # clamp: order within a core is truth
                last = time
                placed.append(PlacedRecord(record=record, time=time))
        placed.sort(key=lambda p: (p.time, p.record.side, p.record.core, p.record.seq))
        return placed


def correlation_errors(placed: typing.Sequence[PlacedRecord]) -> typing.List[int]:
    """|placed - ground truth| per record, where truth is available.

    Only meaningful for in-memory traces (``truth_time`` does not
    survive file round-trips); powers the F6 accuracy experiment.
    """
    return [
        abs(p.time - p.record.truth_time)
        for p in placed
        if p.record.truth_time >= 0
    ]


@dataclasses.dataclass
class CorrelatedTrace:
    """A trace with its correlator and globally placed records."""

    trace: Trace
    correlator: ClockCorrelator
    placed: typing.List[PlacedRecord]

    @classmethod
    def build(cls, trace: Trace) -> "CorrelatedTrace":
        correlator = ClockCorrelator(trace)
        return cls(trace=trace, correlator=correlator, placed=correlator.place_records())

    def for_core(self, side: int, core: int) -> typing.List[PlacedRecord]:
        return [
            p for p in self.placed
            if p.record.side == side and p.record.core == core
        ]

    def spe_stream(self, spe_id: int) -> typing.List[PlacedRecord]:
        return self.for_core(ev.SIDE_SPE, spe_id)

    @property
    def ppe_stream(self) -> typing.List[PlacedRecord]:
        """All PPE records (the core field holds the thread id)."""
        return [p for p in self.placed if p.record.side == ev.SIDE_PPE]
