"""Per-column chunk encodings for the version-5 trace layout.

A v5 chunk payload is a small header (:data:`~repro.pdt.format._V5_PAYLOAD`:
``enc``, ``codec``, ``packed_bytes``) followed by a body that is
optionally whole-compressed (zlib, or zstd when the interpreter ships
one).  Two body encodings exist:

* ``ENC_RECORDS`` — the v2–v4 record stream verbatim.  Writers emit it
  under ``REPRO_NO_COMPRESS=1`` (the differential-testing escape hatch
  mirroring ``REPRO_SCALAR_CODEC``); readers accept it always.
* ``ENC_COLUMNS`` — six u32-length-prefixed sections in order:

  1. ``raw_ts``  delta + zigzag varint (timestamps are near-monotone,
     so deltas are small signed numbers that varint-encode to a byte
     or two instead of eight)
  2. ``seq``     delta + zigzag varint (per-core sequence counters
     interleave, but deltas stay tiny)
  3. ``side``    dictionary + run-length pairs
  4. ``code``    dictionary + run-length pairs
  5. ``core``    dictionary + run-length pairs
  6. ``values``  raw little-endian i64 (whole-payload compression
     catches the redundancy here)

  Per-record field counts are *not* stored: they are derived from
  (side, code) through the event specs, exactly as the record-stream
  decoder derives record sizes — a v5 file cannot describe records
  the event model does not know.

Like :mod:`repro.pdt.codec`, every encoding has a vectorized and a
scalar implementation selected by :func:`repro.pdt.codec.batch_enabled`
(``REPRO_SCALAR_CODEC=1`` forces the scalar reference).  The two are
byte-identical in both directions — property-tested — so the scalar
path stays a true differential oracle.

Integrity: the chunk frame's CRC32 covers the *stored* payload
(header + compressed body), so corruption is detected before any
decompression; everything past the CRC re-validates structurally
(section lengths, varint termination, dictionary bounds, run totals,
component ranges) and raises :class:`TraceFormatError` on any
inconsistency — a trial decode during salvage resynchronization can
therefore reject byte runs that merely *look* like a chunk.
"""

from __future__ import annotations

import os
import struct
import typing
import zlib
from array import array

import numpy as np

from repro.pdt import codec
from repro.pdt.format import (
    _V5_PAYLOAD,
    CODEC_NONE,
    CODEC_ZLIB,
    CODEC_ZSTD,
    ENC_COLUMNS,
    ENC_RECORDS,
    TraceFormatError,
)
from repro.pdt.store import ColumnChunk

try:  # Python 3.14+ ships zstd in the standard library
    from compression import zstd as _zstd  # pragma: no cover
except ImportError:  # pragma: no cover - absence is the common case
    _zstd = None

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_U64_MAX = 0xFFFF_FFFF_FFFF_FFFF

#: Matches the wire's u32 sequence-number field (the RECORDS encoding
#: cannot hold more, so neither may the columnar one).
_SEQ_MAX = 0xFFFF_FFFF


def compress_enabled() -> bool:
    """Whether v5 writers use the columnar + compressed payload.

    ``REPRO_NO_COMPRESS=1`` flips every writer to ``ENC_RECORDS`` with
    ``CODEC_NONE`` — v5 framing around v4 payload bytes — the escape
    hatch for differential testing and for triage of suspected codec
    bugs.  Readers are unaffected: they accept every payload kind.
    """
    return not os.environ.get("REPRO_NO_COMPRESS")


# ----------------------------------------------------------------------
# unsigned LEB128 varints
# ----------------------------------------------------------------------
def _uvarint_encode_scalar(values: typing.Iterable[int]) -> bytes:
    out = bytearray()
    append = out.append
    for value in values:
        v = int(value)
        while True:
            low = v & 0x7F
            v >>= 7
            if v:
                append(low | 0x80)
            else:
                append(low)
                break
    return bytes(out)


def _uvarint_encode_vec(values: np.ndarray) -> bytes:
    n = len(values)
    if n == 0:
        return b""
    vals = values.astype(np.uint64, copy=False)
    nbytes = np.ones(n, dtype=np.int64)
    for k in range(1, 10):
        nbytes += vals >= np.uint64(1 << (7 * k))
    starts = np.empty(n + 1, dtype=np.int64)
    starts[0] = 0
    np.cumsum(nbytes, out=starts[1:])
    out = np.zeros(int(starts[-1]), dtype=np.uint8)
    heads = starts[:-1]
    for k in range(10):
        mask = nbytes > k
        if not mask.any():
            break
        group = (vals[mask] >> np.uint64(7 * k)) & np.uint64(0x7F)
        cont = (nbytes[mask] - 1 > k).astype(np.uint8) << 7
        out[heads[mask] + k] = group.astype(np.uint8) | cont
    return out.tobytes()


def _uvarint_decode_all_scalar(data) -> typing.List[int]:
    """Every varint in ``data``; raises on truncation or u64 overflow."""
    values: typing.List[int] = []
    pos, end = 0, len(data)
    while pos < end:
        acc = 0
        shift = 0
        while True:
            if pos >= end:
                raise TraceFormatError(
                    "truncated varint at the end of a column section"
                )
            byte = data[pos]
            pos += 1
            acc |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise TraceFormatError("varint overflows 64 bits")
        if acc > _U64_MAX:
            raise TraceFormatError("varint overflows 64 bits")
        values.append(acc)
    return values


def _uvarint_decode_all_vec(data: np.ndarray) -> np.ndarray:
    """Every varint in ``data`` as uint64; same errors as the scalar."""
    if len(data) == 0:
        return np.empty(0, dtype=np.uint64)
    if int(data.max()) < 0x80:
        # Every varint is a single byte — the common case for
        # dictionary/run-length sections and small-delta timestamp
        # sections — so the byte column IS the value column.
        return data.astype(np.uint64)
    ends = np.flatnonzero(data < 0x80)
    if len(ends) == 0 or int(ends[-1]) != len(data) - 1:
        raise TraceFormatError(
            "truncated varint at the end of a column section"
        )
    count = len(ends)
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    max_len = int(lengths.max())
    if max_len > 10:
        raise TraceFormatError("varint overflows 64 bits")
    payload = (data & 0x7F).astype(np.uint64)
    values = np.zeros(count, dtype=np.uint64)
    for k in range(max_len):
        mask = lengths > k
        values[mask] |= payload[starts[mask] + k] << np.uint64(7 * k)
    if max_len == 10:
        last = data[ends[lengths == 10]] & 0x7F
        if int(last.max()) > 1:
            raise TraceFormatError("varint overflows 64 bits")
    return values


def _as_u8(data) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8)


# ----------------------------------------------------------------------
# delta + zigzag varint (raw_ts, seq)
# ----------------------------------------------------------------------
def dzv_encode(values: typing.Sequence[int]) -> bytes:
    """Delta + zigzag + varint encode a u64 column.

    The first value is stored verbatim; every later one as the
    zigzagged two's-complement difference mod 2**64 — an exact
    bijection, so arbitrary (even non-monotone) columns round-trip.
    """
    if codec.batch_enabled():
        vals = np.asarray(values, dtype=np.uint64)
        n = len(vals)
        if n == 0:
            return b""
        deltas = vals[1:] - vals[:-1]  # uint64 wraparound
        signed = deltas.view(np.int64)
        zig = ((signed << np.int64(1)) ^ (signed >> np.int64(63))).view(
            np.uint64
        )
        enc = np.empty(n, dtype=np.uint64)
        enc[0] = vals[0]
        enc[1:] = zig
        return _uvarint_encode_vec(enc)
    out: typing.List[int] = []
    prev = None
    for value in values:
        v = int(value) & _U64_MAX
        if prev is None:
            out.append(v)
        else:
            delta = (v - prev) & _U64_MAX
            if delta >= 1 << 63:
                signed = delta - (1 << 64)
            else:
                signed = delta
            out.append(((signed << 1) ^ (signed >> 63)) & _U64_MAX)
        prev = v
    return _uvarint_encode_scalar(out)


def _dzv_decode_vec(data, count: int) -> np.ndarray:
    enc = _uvarint_decode_all_vec(_as_u8(data))
    if len(enc) != count:
        raise TraceFormatError(
            f"column section holds {len(enc)} values; expected {count}"
        )
    if count == 0:
        return enc
    zig = enc[1:]
    deltas = (zig >> np.uint64(1)) ^ (np.uint64(0) - (zig & np.uint64(1)))
    out = np.empty(count, dtype=np.uint64)
    out[0] = enc[0]
    if count > 1:
        np.cumsum(deltas, out=out[1:])
        out[1:] += enc[0]
    return out


def _dzv_decode_scalar(data, count: int) -> typing.List[int]:
    enc_list = _uvarint_decode_all_scalar(data)
    if len(enc_list) != count:
        raise TraceFormatError(
            f"column section holds {len(enc_list)} values; expected {count}"
        )
    values: typing.List[int] = []
    prev = 0
    for i, z in enumerate(enc_list):
        if i == 0:
            prev = z
        else:
            delta = (z >> 1) ^ (-(z & 1) & _U64_MAX)
            prev = (prev + delta) & _U64_MAX
        values.append(prev)
    return values


def dzv_decode(data, count: int) -> typing.Union[np.ndarray, typing.List[int]]:
    """Decode ``count`` u64 values from a :func:`dzv_encode` section."""
    if codec.batch_enabled():
        return _dzv_decode_vec(data, count)
    return _dzv_decode_scalar(data, count)


# ----------------------------------------------------------------------
# dictionary + run-length (side, code, core)
# ----------------------------------------------------------------------
def drle_encode(values: typing.Sequence[int]) -> bytes:
    """Dictionary + RLE encode a small-integer column.

    Layout (all varints): dictionary size, the sorted distinct values,
    then (dictionary index, run length) pairs covering the column.
    """
    if codec.batch_enabled():
        vals = np.asarray(values, dtype=np.uint64)
        n = len(vals)
        if n == 0:
            return b""
        change = np.flatnonzero(vals[1:] != vals[:-1])
        run_starts = np.concatenate((np.zeros(1, dtype=np.int64), change + 1))
        run_vals = vals[run_starts]
        bounds = np.concatenate((run_starts, np.array([n], dtype=np.int64)))
        run_lens = np.diff(bounds).astype(np.uint64)
        dict_vals = np.unique(run_vals)
        idx = np.searchsorted(dict_vals, run_vals).astype(np.uint64)
        head = np.concatenate(
            (np.array([len(dict_vals)], dtype=np.uint64), dict_vals)
        )
        pairs = np.empty(2 * len(run_vals), dtype=np.uint64)
        pairs[0::2] = idx
        pairs[1::2] = run_lens
        return _uvarint_encode_vec(np.concatenate((head, pairs)))
    vals_list = [int(v) for v in values]
    if not vals_list:
        return b""
    runs: typing.List[typing.Tuple[int, int]] = []
    for v in vals_list:
        if runs and runs[-1][0] == v:
            runs[-1] = (v, runs[-1][1] + 1)
        else:
            runs.append((v, 1))
    dictionary = sorted({v for v, __ in runs})
    index = {v: i for i, v in enumerate(dictionary)}
    flat: typing.List[int] = [len(dictionary)]
    flat.extend(dictionary)
    for v, length in runs:
        flat.append(index[v])
        flat.append(length)
    return _uvarint_encode_scalar(flat)


def _drle_decode_vec(data, count: int) -> np.ndarray:
    flat = _uvarint_decode_all_vec(_as_u8(data))
    if count == 0:
        if len(flat):
            raise TraceFormatError("dictionary section for empty column")
        return np.empty(0, dtype=np.uint64)
    if len(flat) == 0:
        raise TraceFormatError("empty dictionary section")
    n_dict = int(flat[0])
    pairs = flat[1 + n_dict :]
    if len(flat) < 1 + n_dict or n_dict == 0 or len(pairs) % 2:
        raise TraceFormatError("malformed dictionary section")
    dictionary = flat[1 : 1 + n_dict]
    idx = pairs[0::2]
    lens = pairs[1::2]
    # min/max bound every run before np.repeat so a corrupt section can
    # never ask for a huge allocation; unsigned fancy indexing bounds-
    # checks the dictionary references for free.
    if len(idx) == 0 or int(lens.min()) < 1 or int(lens.max()) > count:
        raise TraceFormatError("malformed run-length section")
    try:
        run_vals = dictionary[idx]
    except IndexError:
        raise TraceFormatError("malformed run-length section") from None
    out = np.repeat(run_vals, lens.astype(np.int64))
    if len(out) != count:
        raise TraceFormatError(
            f"run lengths cover {len(out)} values; expected {count}"
        )
    return out


def _drle_decode_scalar(data, count: int) -> typing.List[int]:
    flat_list = _uvarint_decode_all_scalar(data)
    if count == 0:
        if flat_list:
            raise TraceFormatError("dictionary section for empty column")
        return []
    if not flat_list:
        raise TraceFormatError("empty dictionary section")
    n_dict = flat_list[0]
    if n_dict == 0 or len(flat_list) < 1 + n_dict:
        raise TraceFormatError("malformed dictionary section")
    dictionary = flat_list[1 : 1 + n_dict]
    pairs = flat_list[1 + n_dict :]
    if len(pairs) % 2 or not pairs:
        raise TraceFormatError("malformed run-length section")
    out: typing.List[int] = []
    for i in range(0, len(pairs), 2):
        index, length = pairs[i], pairs[i + 1]
        if index >= n_dict or length < 1:
            raise TraceFormatError("malformed run-length section")
        out.extend([dictionary[index]] * length)
    if len(out) != count:
        raise TraceFormatError(
            f"run lengths cover {len(out)} values; expected {count}"
        )
    return out


def drle_decode(
    data, count: int
) -> typing.Union[np.ndarray, typing.List[int]]:
    """Decode ``count`` values from a :func:`drle_encode` section."""
    if codec.batch_enabled():
        return _drle_decode_vec(data, count)
    return _drle_decode_scalar(data, count)


# ----------------------------------------------------------------------
# whole-chunk payload
# ----------------------------------------------------------------------
def _sections(packed, expected: int) -> typing.List[memoryview]:
    """Split a packed columnar body into its length-prefixed sections."""
    view = memoryview(packed)
    out: typing.List[memoryview] = []
    pos = 0
    for __ in range(expected):
        if pos + _U32.size > len(view):
            raise TraceFormatError("truncated column section header")
        (length,) = _U32.unpack_from(view, pos)
        pos += _U32.size
        if pos + length > len(view):
            raise TraceFormatError(
                f"column section overruns the payload by "
                f"{pos + length - len(view)} bytes"
            )
        out.append(view[pos : pos + length])
        pos += length
    if pos != len(view):
        raise TraceFormatError(
            f"{len(view) - pos} trailing bytes after the column sections"
        )
    return out


def _pack_columns(chunk: ColumnChunk) -> bytes:
    """The uncompressed columnar body of one chunk."""
    seqs = list(chunk.seq) if not codec.batch_enabled() else None
    if codec.batch_enabled():
        seq_arr = np.frombuffer(chunk.seq, codec.SEQ_DTYPE)
        if len(seq_arr) and int(seq_arr.max()) > _SEQ_MAX:
            raise struct.error("sequence number exceeds the wire's u32")
        sections = (
            dzv_encode(np.frombuffer(chunk.raw_ts, np.uint64)),
            dzv_encode(seq_arr.astype(np.uint64)),
            drle_encode(np.frombuffer(chunk.side, np.uint8)),
            drle_encode(np.frombuffer(chunk.code, np.uint8)),
            drle_encode(np.frombuffer(chunk.core, codec.CORE_DTYPE)),
            chunk.values.tobytes(),
        )
    else:
        if seqs and max(seqs) > _SEQ_MAX:
            raise struct.error("sequence number exceeds the wire's u32")
        sections = (
            dzv_encode(chunk.raw_ts),
            dzv_encode(seqs),
            drle_encode(chunk.side),
            drle_encode(chunk.code),
            drle_encode(chunk.core),
            chunk.values.tobytes(),
        )
    return b"".join(_U32.pack(len(s)) + s for s in sections)


def _compress(packed: bytes) -> typing.Tuple[int, bytes]:
    """Pick the smallest stored body: zstd (when available) or zlib,
    falling back to stored-uncompressed when compression loses."""
    best_codec, best = CODEC_NONE, packed
    if _zstd is not None:  # pragma: no cover - environment-dependent
        candidate = _zstd.compress(packed)
        if len(candidate) < len(best):
            best_codec, best = CODEC_ZSTD, candidate
    candidate = zlib.compress(packed, 6)
    if len(candidate) < len(best):
        best_codec, best = CODEC_ZLIB, candidate
    return best_codec, best


def _decompress(codec_id: int, body, packed_bytes: int) -> bytes:
    if codec_id == CODEC_NONE:
        if len(body) != packed_bytes:
            raise TraceFormatError(
                f"stored payload is {len(body)} bytes; header declares "
                f"{packed_bytes}"
            )
        return body
    if codec_id == CODEC_ZLIB:
        try:
            # The header names the decoded size, so size the output
            # buffer to it instead of zlib's 16 KB default — on the
            # ~KB chunks of small traces that default dominated the
            # reader's whole transient footprint.  The +1 leaves the
            # buffer non-full at stream end, without which zlib grows
            # a whole extra block just to discover the stream is over.
            packed = zlib.decompress(body, bufsize=packed_bytes + 1)
        except zlib.error as exc:
            raise TraceFormatError(f"corrupt zlib chunk body: {exc}") from exc
    elif codec_id == CODEC_ZSTD:
        if _zstd is None:
            raise TraceFormatError(
                "chunk is zstd-compressed but this interpreter has no "
                "zstd module"
            )
        try:  # pragma: no cover - environment-dependent
            packed = _zstd.decompress(bytes(body))
        except Exception as exc:  # pragma: no cover
            raise TraceFormatError(f"corrupt zstd chunk body: {exc}") from exc
    else:
        raise TraceFormatError(f"unknown chunk codec {codec_id}")
    if len(packed) != packed_bytes:
        raise TraceFormatError(
            f"decompressed payload is {len(packed)} bytes; header declares "
            f"{packed_bytes}"
        )
    return packed


def encode_chunk_payload(chunk: ColumnChunk) -> bytes:
    """Serialize one chunk as a v5 payload (header + body).

    Under ``REPRO_NO_COMPRESS=1`` the body is the plain v2–v4 record
    stream; otherwise the columnar sections, whole-compressed when that
    wins, stored raw when it does not.
    """
    if not compress_enabled():
        body = codec.encode_batch(chunk)
        return _V5_PAYLOAD.pack(ENC_RECORDS, CODEC_NONE, 0, len(body)) + body
    packed = _pack_columns(chunk)
    codec_id, body = _compress(packed)
    return _V5_PAYLOAD.pack(ENC_COLUMNS, codec_id, 0, len(packed)) + body


def _decode_record_stream(packed, n_records: int) -> ColumnChunk:
    """Decode an ``ENC_RECORDS`` body — the v2–v4 payload decoder."""
    chunk = ColumnChunk()
    end = len(packed)
    batch = codec.decode_batch(packed, 0, n_records)
    if batch is not None:
        if batch.next_offset != end:
            raise TraceFormatError(
                f"chunk payload size mismatch: declared {end} bytes, "
                f"decoded {batch.next_offset}"
            )
        chunk.extend_run(batch)
        return chunk
    offset = 0
    try:
        for __ in range(n_records):
            side, code, core, seq, raw_ts, values, offset = (
                codec.decode_fields(packed, offset)
            )
            chunk.append(side, code, core, seq, raw_ts, values)
    except (ValueError, KeyError) as exc:
        raise TraceFormatError(f"corrupt trace payload: {exc}") from exc
    if offset != end:
        raise TraceFormatError(
            f"chunk payload size mismatch: declared {end} bytes, "
            f"decoded {offset}"
        )
    return chunk


#: numpy view of the codec's record-size LUT (0 marks unknown types).
_SIZE_LUT_NP = np.asarray(codec._SIZE_LUT, dtype=np.int64)

#: Below this many records the scalar reference decoder beats the
#: vectorized one — a columnar decode is ~40 numpy kernel launches
#: whose fixed cost dwarfs tiny chunks (measured crossover ≈48 on this
#: stack).  The paths are byte-identical (property-tested), so the
#: cutoff is a pure speed dispatch.
_SMALL_CHUNK = 48


def _decode_sync_columns(sections, n_records: int):
    """Decode the columns a sync scan needs — everything but ``seq`` —
    returning ``(sides, codes, cores, raws, val_off, values)`` arrays
    without assembling a chunk.  Validation matches the full decoder
    for every column it touches."""
    raws = _dzv_decode_vec(sections[0], n_records)
    sides = _drle_decode_vec(sections[2], n_records)
    codes = _drle_decode_vec(sections[3], n_records)
    cores = _drle_decode_vec(sections[4], n_records)
    if (
        (len(sides) and int(sides.max()) > 0xFF)
        or (len(codes) and int(codes.max()) > 0xFF)
        or (len(cores) and int(cores.max()) > 0xFFFF)
    ):
        raise TraceFormatError("column value out of range for its wire type")
    tids = (sides.astype(np.int64) << 8) | codes.astype(np.int64)
    sizes = _SIZE_LUT_NP[tids]
    if len(sizes) and int(sizes.min()) == 0:
        raise TraceFormatError("chunk contains an unknown record type")
    nf = codec._NF_LUT[tids]
    val_off = np.empty(n_records + 1, dtype=np.int64)
    val_off[0] = 0
    np.cumsum(nf, out=val_off[1:])
    want = int(val_off[-1]) * 8
    if len(sections[5]) != want:
        raise TraceFormatError(
            f"values section is {len(sections[5])} bytes; record types "
            f"require {want}"
        )
    values = np.frombuffer(sections[5], dtype="<i8")
    return sides, codes, cores, raws, val_off, values


def decode_sync_view(payload, n_records: int):
    """The sync-scan subset of one v5 payload, skipping the ``seq``
    column and the :class:`ColumnChunk` build both of which a
    correlation pass never reads.

    Returns ``(sides, codes, cores, raws, val_off, values)`` numpy
    arrays; raises :class:`TraceFormatError` exactly like
    :func:`decode_chunk_payload` for everything it decodes.  Requires
    the batch codec (callers fall back to a full decode without it).
    """
    if len(payload) < _V5_PAYLOAD.size:
        raise TraceFormatError(
            f"v5 chunk payload is {len(payload)} bytes; the payload "
            f"header needs {_V5_PAYLOAD.size}"
        )
    enc, codec_id, reserved, packed_bytes = _V5_PAYLOAD.unpack_from(payload, 0)
    if reserved:
        raise TraceFormatError(
            f"v5 payload header has nonzero reserved field 0x{reserved:04x}"
        )
    body = memoryview(payload)[_V5_PAYLOAD.size :]
    packed = _decompress(codec_id, body, packed_bytes)
    if enc == ENC_RECORDS:
        return _chunk_views(_decode_record_stream(packed, n_records))
    if enc != ENC_COLUMNS:
        raise TraceFormatError(f"unknown v5 payload encoding {enc}")
    sections = _sections(packed, 6)
    if n_records < _SMALL_CHUNK:
        return _chunk_views(_decode_columns_scalar(sections, n_records))
    return _decode_sync_columns(sections, n_records)


def _chunk_views(chunk: ColumnChunk):
    """A decoded chunk's columns as the array tuple the sync scan eats."""
    return (
        np.frombuffer(chunk.side, np.uint8),
        np.frombuffer(chunk.code, np.uint8),
        np.frombuffer(chunk.core, codec.CORE_DTYPE),
        np.frombuffer(chunk.raw_ts, np.uint64),
        np.asarray(chunk.val_off, dtype=np.int64),
        np.frombuffer(chunk.values, dtype="<i8"),
    )


def scan_sync_chunk(payload, n_records: int, spe_side: int, sync_code: int):
    """Scalar sync scan of one small v5 ``ENC_COLUMNS`` payload.

    Decodes only what a correlation scan reads — the three dictionary
    sections, the timestamp column, and the first value of each sync
    record — with no numpy and no chunk assembly, which beats the
    column decoders outright below :data:`_SMALL_CHUNK` records.
    Returns ``(spe_cores, syncs)`` with ``syncs`` a list of
    ``(core, raw_ts, tb_raw)`` tuples, or ``None`` for an
    ``ENC_RECORDS`` payload (callers fall back to a full decode).
    Raises :class:`TraceFormatError` on any structural inconsistency,
    like the full decoder does for the columns it shares.
    """
    if len(payload) < _V5_PAYLOAD.size:
        raise TraceFormatError(
            f"v5 chunk payload is {len(payload)} bytes; the payload "
            f"header needs {_V5_PAYLOAD.size}"
        )
    enc, codec_id, reserved, packed_bytes = _V5_PAYLOAD.unpack_from(payload, 0)
    if reserved:
        raise TraceFormatError(
            f"v5 payload header has nonzero reserved field 0x{reserved:04x}"
        )
    if enc == ENC_RECORDS:
        return None
    if enc != ENC_COLUMNS:
        raise TraceFormatError(f"unknown v5 payload encoding {enc}")
    body = memoryview(payload)[_V5_PAYLOAD.size :]
    packed = _decompress(codec_id, body, packed_bytes)
    sections = _sections(packed, 6)
    raws = _dzv_decode_scalar(sections[0], n_records)
    sides = _drle_decode_scalar(sections[2], n_records)
    codes = _drle_decode_scalar(sections[3], n_records)
    cores = _drle_decode_scalar(sections[4], n_records)
    values = sections[5]
    spe_cores: typing.Set[int] = set()
    syncs: typing.List[typing.Tuple[int, int, int]] = []
    pos = 0
    for i in range(n_records):
        side, code, core = sides[i], codes[i], cores[i]
        if side > 0xFF or code > 0xFF or core > 0xFFFF:
            raise TraceFormatError(
                "column value out of range for its wire type"
            )
        try:
            values_struct, __, __ = codec.record_info(side, code)
        except KeyError as exc:
            raise TraceFormatError(
                "chunk contains an unknown record type"
            ) from exc
        if side == spe_side:
            spe_cores.add(core)
            if code == sync_code:
                try:
                    (tb_raw,) = _I64.unpack_from(values, pos * 8)
                except struct.error as exc:
                    raise TraceFormatError(
                        f"values section is {len(values)} bytes; record "
                        f"types require more"
                    ) from exc
                syncs.append((core, raws[i], tb_raw))
        pos += values_struct.size // 8
    if pos * 8 != len(values):
        raise TraceFormatError(
            f"values section is {len(values)} bytes; record types "
            f"require {pos * 8}"
        )
    return spe_cores, syncs


def _decode_columns_vec(sections, n_records: int) -> ColumnChunk:
    sides, codes, cores, raws, val_off, values = _decode_sync_columns(
        sections, n_records
    )
    seqs = _dzv_decode_vec(sections[1], n_records)
    if len(seqs) and int(seqs.max()) > _SEQ_MAX:
        raise TraceFormatError("column value out of range for its wire type")
    batch = codec.DecodedBatch(
        n_records,
        sides.astype(np.uint8),
        codes.astype(np.uint8),
        cores.astype(codec.CORE_DTYPE),
        seqs,
        raws,
        val_off,
        values,
        0,
    )
    chunk = ColumnChunk()
    chunk.extend_run(batch)
    return chunk


def _decode_columns_scalar(sections, n_records: int) -> ColumnChunk:
    raws = _dzv_decode_scalar(sections[0], n_records)
    seqs = _dzv_decode_scalar(sections[1], n_records)
    sides = _drle_decode_scalar(sections[2], n_records)
    codes = _drle_decode_scalar(sections[3], n_records)
    cores = _drle_decode_scalar(sections[4], n_records)
    values = array("q")
    values.frombytes(bytes(sections[5]))
    chunk = ColumnChunk()
    pos = 0
    for i in range(n_records):
        side, code, core, seq = sides[i], codes[i], cores[i], seqs[i]
        if side > 0xFF or code > 0xFF or core > 0xFFFF or seq > _SEQ_MAX:
            raise TraceFormatError(
                "column value out of range for its wire type"
            )
        try:
            values_struct, __, __ = codec.record_info(side, code)
        except KeyError as exc:
            raise TraceFormatError(
                "chunk contains an unknown record type"
            ) from exc
        nf = values_struct.size // 8
        if pos + nf > len(values):
            raise TraceFormatError(
                f"values section is {8 * len(values)} bytes; record types "
                f"require more"
            )
        chunk.append(side, code, core, seq, raws[i], values[pos : pos + nf])
        pos += nf
    if pos != len(values):
        raise TraceFormatError(
            f"values section is {8 * len(values)} bytes; record types "
            f"require {8 * pos}"
        )
    return chunk


def decode_chunk_payload(payload, n_records: int) -> ColumnChunk:
    """Decode one v5 chunk payload (header + body) into a chunk.

    Raises :class:`TraceFormatError` on any structural inconsistency;
    never returns a partially-decoded chunk.
    """
    if len(payload) < _V5_PAYLOAD.size:
        raise TraceFormatError(
            f"v5 chunk payload is {len(payload)} bytes; the payload "
            f"header needs {_V5_PAYLOAD.size}"
        )
    enc, codec_id, reserved, packed_bytes = _V5_PAYLOAD.unpack_from(payload, 0)
    if reserved:
        raise TraceFormatError(
            f"v5 payload header has nonzero reserved field 0x{reserved:04x}"
        )
    body = memoryview(payload)[_V5_PAYLOAD.size :]
    packed = _decompress(codec_id, body, packed_bytes)
    if enc == ENC_RECORDS:
        return _decode_record_stream(packed, n_records)
    if enc != ENC_COLUMNS:
        raise TraceFormatError(f"unknown v5 payload encoding {enc}")
    sections = _sections(packed, 6)
    if codec.batch_enabled() and n_records >= _SMALL_CHUNK:
        return _decode_columns_vec(sections, n_records)
    return _decode_columns_scalar(sections, n_records)
