"""Per-column chunk encodings for the version-5 and -6 trace layouts.

A v5 chunk payload is a small header (:data:`~repro.pdt.format._V5_PAYLOAD`:
``enc``, ``codec``, ``packed_bytes``) followed by a body that is
optionally whole-compressed (zlib, or zstd when the interpreter ships
one).  Two body encodings exist:

* ``ENC_RECORDS`` — the v2–v4 record stream verbatim.  Writers emit it
  under ``REPRO_NO_COMPRESS=1`` (the differential-testing escape hatch
  mirroring ``REPRO_SCALAR_CODEC``); readers accept it always.
* ``ENC_COLUMNS`` — six u32-length-prefixed sections in order:

  1. ``raw_ts``  delta + zigzag varint (timestamps are near-monotone,
     so deltas are small signed numbers that varint-encode to a byte
     or two instead of eight)
  2. ``seq``     delta + zigzag varint (per-core sequence counters
     interleave, but deltas stay tiny)
  3. ``side``    dictionary + run-length pairs
  4. ``code``    dictionary + run-length pairs
  5. ``core``    dictionary + run-length pairs
  6. ``values``  raw little-endian i64 (whole-payload compression
     catches the redundancy here)

  Per-record field counts are *not* stored: they are derived from
  (side, code) through the event specs, exactly as the record-stream
  decoder derives record sizes — a v5 file cannot describe records
  the event model does not know.

A **v6** columnar payload keeps the same header and the same six
section encodings but compresses each section *independently*: a
six-entry table (:data:`~repro.pdt.format._V6_SECTION` — per-section
codec id, stored length, decoded length) replaces both the whole-body
codec and the u32 length prefixes, so a reader can decompress exactly
the sections a query plan references (**projection pushdown**).
:func:`decode_chunk_payload` takes a ``columns`` mask for that: the
static columns (``side``/``code``/``core``, plus the derived
``val_off``) always decode eagerly — predicates, record-type
validation, and field-count derivation need them — while ``raw_ts``,
``seq``, and ``values`` decode lazily through a
:class:`~repro.pdt.store.LazyChunk` unless the mask requests them.

The corrupt-section rule under a mask (tested by the property suite):

1. the chunk frame's CRC covers every *stored* byte, so on-disk
   corruption is refused before any decompression, masked or not;
2. the payload header, the full v6 section table, and every
   cross-check derivable without decompressing (section bounds,
   stored/decoded length consistency, codec ids, the values-section
   length implied by the record types) are validated eagerly on every
   decode, whether or not the broken section was requested;
3. a requested section's body is fully validated at decode time; an
   unrequested section's body is not decompressed, and any
   inconsistency inside it surfaces — with the same error a full
   decode raises — at first materialization.

``REPRO_FULL_DECODE=1`` disables masking entirely (every decode
materializes every column), the differential escape hatch for the
whole projection-pushdown path.

Like :mod:`repro.pdt.codec`, every encoding has a vectorized and a
scalar implementation selected by :func:`repro.pdt.codec.batch_enabled`
(``REPRO_SCALAR_CODEC=1`` forces the scalar reference).  The two are
byte-identical in both directions — property-tested — so the scalar
path stays a true differential oracle.

Integrity: the chunk frame's CRC32 covers the *stored* payload
(header + compressed body), so corruption is detected before any
decompression; everything past the CRC re-validates structurally
(section lengths, varint termination, dictionary bounds, run totals,
component ranges) and raises :class:`TraceFormatError` on any
inconsistency — a trial decode during salvage resynchronization can
therefore reject byte runs that merely *look* like a chunk.
"""

from __future__ import annotations

import os
import struct
import typing
import zlib
from array import array

import numpy as np

from repro.pdt import codec
from repro.pdt.format import (
    _V5_PAYLOAD,
    _V6_SECTION,
    CODEC_NONE,
    CODEC_ZLIB,
    CODEC_ZSTD,
    ENC_COLUMNS,
    ENC_RECORDS,
    V6_SECTION_COUNT,
    VERSION_COMPRESSED,
    VERSION_SECTIONED,
    TraceFormatError,
)
from repro.pdt.store import CHUNK_COLUMNS, ColumnChunk, LazyChunk

try:  # Python 3.14+ ships zstd in the standard library
    from compression import zstd as _zstd  # pragma: no cover
except ImportError:  # pragma: no cover - absence is the common case
    _zstd = None

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_U64_MAX = 0xFFFF_FFFF_FFFF_FFFF

#: Matches the wire's u32 sequence-number field (the RECORDS encoding
#: cannot hold more, so neither may the columnar one).
_SEQ_MAX = 0xFFFF_FFFF


def compress_enabled() -> bool:
    """Whether v5 writers use the columnar + compressed payload.

    ``REPRO_NO_COMPRESS=1`` flips every writer to ``ENC_RECORDS`` with
    ``CODEC_NONE`` — v5 framing around v4 payload bytes — the escape
    hatch for differential testing and for triage of suspected codec
    bugs.  Readers are unaffected: they accept every payload kind.
    """
    return not os.environ.get("REPRO_NO_COMPRESS")


def full_decode_forced() -> bool:
    """Whether ``REPRO_FULL_DECODE=1`` disables projection pushdown.

    With it set, every decode materializes every column regardless of
    the mask the query plan derived — the differential escape hatch
    proving masked scans byte-identical to full scans.
    """
    return bool(os.environ.get("REPRO_FULL_DECODE"))


def _effective_columns(
    columns: typing.Optional[typing.Iterable[str]],
) -> typing.Optional[typing.FrozenSet[str]]:
    """Normalize a column mask: ``None`` means decode everything, and
    a mask covering every column degrades to the (cheaper) eager
    full-decode path."""
    if columns is None or full_decode_forced():
        return None
    columns = frozenset(columns)
    if columns.issuperset(CHUNK_COLUMNS):
        return None
    return columns


# ----------------------------------------------------------------------
# unsigned LEB128 varints
# ----------------------------------------------------------------------
def _uvarint_encode_scalar(values: typing.Iterable[int]) -> bytes:
    out = bytearray()
    append = out.append
    for value in values:
        v = int(value)
        while True:
            low = v & 0x7F
            v >>= 7
            if v:
                append(low | 0x80)
            else:
                append(low)
                break
    return bytes(out)


def _uvarint_encode_vec(values: np.ndarray) -> bytes:
    n = len(values)
    if n == 0:
        return b""
    vals = values.astype(np.uint64, copy=False)
    nbytes = np.ones(n, dtype=np.int64)
    for k in range(1, 10):
        nbytes += vals >= np.uint64(1 << (7 * k))
    starts = np.empty(n + 1, dtype=np.int64)
    starts[0] = 0
    np.cumsum(nbytes, out=starts[1:])
    out = np.zeros(int(starts[-1]), dtype=np.uint8)
    heads = starts[:-1]
    for k in range(10):
        mask = nbytes > k
        if not mask.any():
            break
        group = (vals[mask] >> np.uint64(7 * k)) & np.uint64(0x7F)
        cont = (nbytes[mask] - 1 > k).astype(np.uint8) << 7
        out[heads[mask] + k] = group.astype(np.uint8) | cont
    return out.tobytes()


def _uvarint_decode_all_scalar(data) -> typing.List[int]:
    """Every varint in ``data``; raises on truncation or u64 overflow."""
    values: typing.List[int] = []
    pos, end = 0, len(data)
    while pos < end:
        acc = 0
        shift = 0
        while True:
            if pos >= end:
                raise TraceFormatError(
                    "truncated varint at the end of a column section"
                )
            byte = data[pos]
            pos += 1
            acc |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise TraceFormatError("varint overflows 64 bits")
        if acc > _U64_MAX:
            raise TraceFormatError("varint overflows 64 bits")
        values.append(acc)
    return values


def _uvarint_decode_all_vec(data: np.ndarray) -> np.ndarray:
    """Every varint in ``data`` as uint64; same errors as the scalar."""
    if len(data) == 0:
        return np.empty(0, dtype=np.uint64)
    if int(data.max()) < 0x80:
        # Every varint is a single byte — the common case for
        # dictionary/run-length sections and small-delta timestamp
        # sections — so the byte column IS the value column.
        return data.astype(np.uint64)
    ends = np.flatnonzero(data < 0x80)
    if len(ends) == 0 or int(ends[-1]) != len(data) - 1:
        raise TraceFormatError(
            "truncated varint at the end of a column section"
        )
    count = len(ends)
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    max_len = int(lengths.max())
    if max_len > 10:
        raise TraceFormatError("varint overflows 64 bits")
    payload = (data & 0x7F).astype(np.uint64)
    values = np.zeros(count, dtype=np.uint64)
    for k in range(max_len):
        mask = lengths > k
        values[mask] |= payload[starts[mask] + k] << np.uint64(7 * k)
    if max_len == 10:
        last = data[ends[lengths == 10]] & 0x7F
        if int(last.max()) > 1:
            raise TraceFormatError("varint overflows 64 bits")
    return values


def _as_u8(data) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8)


# ----------------------------------------------------------------------
# delta + zigzag varint (raw_ts, seq)
# ----------------------------------------------------------------------
def dzv_encode(values: typing.Sequence[int]) -> bytes:
    """Delta + zigzag + varint encode a u64 column.

    The first value is stored verbatim; every later one as the
    zigzagged two's-complement difference mod 2**64 — an exact
    bijection, so arbitrary (even non-monotone) columns round-trip.
    """
    if codec.batch_enabled():
        vals = np.asarray(values, dtype=np.uint64)
        n = len(vals)
        if n == 0:
            return b""
        deltas = vals[1:] - vals[:-1]  # uint64 wraparound
        signed = deltas.view(np.int64)
        zig = ((signed << np.int64(1)) ^ (signed >> np.int64(63))).view(
            np.uint64
        )
        enc = np.empty(n, dtype=np.uint64)
        enc[0] = vals[0]
        enc[1:] = zig
        return _uvarint_encode_vec(enc)
    out: typing.List[int] = []
    prev = None
    for value in values:
        v = int(value) & _U64_MAX
        if prev is None:
            out.append(v)
        else:
            delta = (v - prev) & _U64_MAX
            if delta >= 1 << 63:
                signed = delta - (1 << 64)
            else:
                signed = delta
            out.append(((signed << 1) ^ (signed >> 63)) & _U64_MAX)
        prev = v
    return _uvarint_encode_scalar(out)


def _dzv_decode_vec(data, count: int) -> np.ndarray:
    enc = _uvarint_decode_all_vec(_as_u8(data))
    if len(enc) != count:
        raise TraceFormatError(
            f"column section holds {len(enc)} values; expected {count}"
        )
    if count == 0:
        return enc
    zig = enc[1:]
    deltas = (zig >> np.uint64(1)) ^ (np.uint64(0) - (zig & np.uint64(1)))
    out = np.empty(count, dtype=np.uint64)
    out[0] = enc[0]
    if count > 1:
        np.cumsum(deltas, out=out[1:])
        out[1:] += enc[0]
    return out


def _dzv_decode_scalar(data, count: int) -> typing.List[int]:
    enc_list = _uvarint_decode_all_scalar(data)
    if len(enc_list) != count:
        raise TraceFormatError(
            f"column section holds {len(enc_list)} values; expected {count}"
        )
    values: typing.List[int] = []
    prev = 0
    for i, z in enumerate(enc_list):
        if i == 0:
            prev = z
        else:
            delta = (z >> 1) ^ (-(z & 1) & _U64_MAX)
            prev = (prev + delta) & _U64_MAX
        values.append(prev)
    return values


def dzv_decode(data, count: int) -> typing.Union[np.ndarray, typing.List[int]]:
    """Decode ``count`` u64 values from a :func:`dzv_encode` section."""
    if codec.batch_enabled():
        return _dzv_decode_vec(data, count)
    return _dzv_decode_scalar(data, count)


# ----------------------------------------------------------------------
# dictionary + run-length (side, code, core)
# ----------------------------------------------------------------------
def drle_encode(values: typing.Sequence[int]) -> bytes:
    """Dictionary + RLE encode a small-integer column.

    Layout (all varints): dictionary size, the sorted distinct values,
    then (dictionary index, run length) pairs covering the column.
    """
    if codec.batch_enabled():
        vals = np.asarray(values, dtype=np.uint64)
        n = len(vals)
        if n == 0:
            return b""
        change = np.flatnonzero(vals[1:] != vals[:-1])
        run_starts = np.concatenate((np.zeros(1, dtype=np.int64), change + 1))
        run_vals = vals[run_starts]
        bounds = np.concatenate((run_starts, np.array([n], dtype=np.int64)))
        run_lens = np.diff(bounds).astype(np.uint64)
        dict_vals = np.unique(run_vals)
        idx = np.searchsorted(dict_vals, run_vals).astype(np.uint64)
        head = np.concatenate(
            (np.array([len(dict_vals)], dtype=np.uint64), dict_vals)
        )
        pairs = np.empty(2 * len(run_vals), dtype=np.uint64)
        pairs[0::2] = idx
        pairs[1::2] = run_lens
        return _uvarint_encode_vec(np.concatenate((head, pairs)))
    vals_list = [int(v) for v in values]
    if not vals_list:
        return b""
    runs: typing.List[typing.Tuple[int, int]] = []
    for v in vals_list:
        if runs and runs[-1][0] == v:
            runs[-1] = (v, runs[-1][1] + 1)
        else:
            runs.append((v, 1))
    dictionary = sorted({v for v, __ in runs})
    index = {v: i for i, v in enumerate(dictionary)}
    flat: typing.List[int] = [len(dictionary)]
    flat.extend(dictionary)
    for v, length in runs:
        flat.append(index[v])
        flat.append(length)
    return _uvarint_encode_scalar(flat)


def _drle_decode_vec(data, count: int) -> np.ndarray:
    flat = _uvarint_decode_all_vec(_as_u8(data))
    if count == 0:
        if len(flat):
            raise TraceFormatError("dictionary section for empty column")
        return np.empty(0, dtype=np.uint64)
    if len(flat) == 0:
        raise TraceFormatError("empty dictionary section")
    n_dict = int(flat[0])
    pairs = flat[1 + n_dict :]
    if len(flat) < 1 + n_dict or n_dict == 0 or len(pairs) % 2:
        raise TraceFormatError("malformed dictionary section")
    dictionary = flat[1 : 1 + n_dict]
    idx = pairs[0::2]
    lens = pairs[1::2]
    # min/max bound every run before np.repeat so a corrupt section can
    # never ask for a huge allocation; unsigned fancy indexing bounds-
    # checks the dictionary references for free.
    if len(idx) == 0 or int(lens.min()) < 1 or int(lens.max()) > count:
        raise TraceFormatError("malformed run-length section")
    try:
        run_vals = dictionary[idx]
    except IndexError:
        raise TraceFormatError("malformed run-length section") from None
    out = np.repeat(run_vals, lens.astype(np.int64))
    if len(out) != count:
        raise TraceFormatError(
            f"run lengths cover {len(out)} values; expected {count}"
        )
    return out


def _drle_decode_scalar(data, count: int) -> typing.List[int]:
    flat_list = _uvarint_decode_all_scalar(data)
    if count == 0:
        if flat_list:
            raise TraceFormatError("dictionary section for empty column")
        return []
    if not flat_list:
        raise TraceFormatError("empty dictionary section")
    n_dict = flat_list[0]
    if n_dict == 0 or len(flat_list) < 1 + n_dict:
        raise TraceFormatError("malformed dictionary section")
    dictionary = flat_list[1 : 1 + n_dict]
    pairs = flat_list[1 + n_dict :]
    if len(pairs) % 2 or not pairs:
        raise TraceFormatError("malformed run-length section")
    out: typing.List[int] = []
    for i in range(0, len(pairs), 2):
        index, length = pairs[i], pairs[i + 1]
        if index >= n_dict or length < 1:
            raise TraceFormatError("malformed run-length section")
        out.extend([dictionary[index]] * length)
    if len(out) != count:
        raise TraceFormatError(
            f"run lengths cover {len(out)} values; expected {count}"
        )
    return out


def drle_decode(
    data, count: int
) -> typing.Union[np.ndarray, typing.List[int]]:
    """Decode ``count`` values from a :func:`drle_encode` section."""
    if codec.batch_enabled():
        return _drle_decode_vec(data, count)
    return _drle_decode_scalar(data, count)


# ----------------------------------------------------------------------
# whole-chunk payload
# ----------------------------------------------------------------------
def _sections(packed, expected: int) -> typing.List[memoryview]:
    """Split a packed columnar body into its length-prefixed sections."""
    view = memoryview(packed)
    out: typing.List[memoryview] = []
    pos = 0
    for __ in range(expected):
        if pos + _U32.size > len(view):
            raise TraceFormatError("truncated column section header")
        (length,) = _U32.unpack_from(view, pos)
        pos += _U32.size
        if pos + length > len(view):
            raise TraceFormatError(
                f"column section overruns the payload by "
                f"{pos + length - len(view)} bytes"
            )
        out.append(view[pos : pos + length])
        pos += length
    if pos != len(view):
        raise TraceFormatError(
            f"{len(view) - pos} trailing bytes after the column sections"
        )
    return out


def _pack_columns(chunk: ColumnChunk) -> bytes:
    """The uncompressed length-prefixed v5 columnar body of one chunk."""
    return b"".join(
        _U32.pack(len(s)) + s for s in _section_bodies(chunk)
    )


def _compress(packed: bytes) -> typing.Tuple[int, bytes]:
    """Pick the smallest stored body: zstd (when available) or zlib,
    falling back to stored-uncompressed when compression loses."""
    best_codec, best = CODEC_NONE, packed
    if _zstd is not None:  # pragma: no cover - environment-dependent
        candidate = _zstd.compress(packed)
        if len(candidate) < len(best):
            best_codec, best = CODEC_ZSTD, candidate
    candidate = zlib.compress(packed, 6)
    if len(candidate) < len(best):
        best_codec, best = CODEC_ZLIB, candidate
    return best_codec, best


def _decompress(codec_id: int, body, packed_bytes: int) -> bytes:
    if codec_id == CODEC_NONE:
        if len(body) != packed_bytes:
            raise TraceFormatError(
                f"stored payload is {len(body)} bytes; header declares "
                f"{packed_bytes}"
            )
        return body
    if codec_id == CODEC_ZLIB:
        try:
            # The header names the decoded size, so size the output
            # buffer to it instead of zlib's 16 KB default — on the
            # ~KB chunks of small traces that default dominated the
            # reader's whole transient footprint.  The +1 leaves the
            # buffer non-full at stream end, without which zlib grows
            # a whole extra block just to discover the stream is over.
            packed = zlib.decompress(body, bufsize=packed_bytes + 1)
        except zlib.error as exc:
            raise TraceFormatError(f"corrupt zlib chunk body: {exc}") from exc
    elif codec_id == CODEC_ZSTD:
        if _zstd is None:
            raise TraceFormatError(
                "chunk is zstd-compressed but this interpreter has no "
                "zstd module"
            )
        try:  # pragma: no cover - environment-dependent
            packed = _zstd.decompress(bytes(body))
        except Exception as exc:  # pragma: no cover
            raise TraceFormatError(f"corrupt zstd chunk body: {exc}") from exc
    else:
        raise TraceFormatError(f"unknown chunk codec {codec_id}")
    if len(packed) != packed_bytes:
        raise TraceFormatError(
            f"decompressed payload is {len(packed)} bytes; header declares "
            f"{packed_bytes}"
        )
    return packed


def _payload_header(payload) -> typing.Tuple[int, int, int]:
    """Parse and validate the (shared v5/v6) payload header."""
    if len(payload) < _V5_PAYLOAD.size:
        raise TraceFormatError(
            f"v5 chunk payload is {len(payload)} bytes; the payload "
            f"header needs {_V5_PAYLOAD.size}"
        )
    enc, codec_id, reserved, packed_bytes = _V5_PAYLOAD.unpack_from(payload, 0)
    if reserved:
        raise TraceFormatError(
            f"v5 payload header has nonzero reserved field 0x{reserved:04x}"
        )
    return enc, codec_id, packed_bytes


class _SectionSource:
    """Decoded column-section bodies by index, in wire order.

    One construction serves both columnar layouts: v5 hands it the six
    already-inflated length-prefixed sections (codec ``CODEC_NONE``
    each), v6 the table-described stored bodies — so ``source[i]``
    decompresses a v6 section on first demand and at most once, and
    every decoder above this line is layout-agnostic.
    """

    __slots__ = ("_parts", "_cache")

    def __init__(
        self,
        parts: typing.Sequence[typing.Tuple[int, typing.Any, int]],
    ):
        #: (codec_id, stored body buffer, decoded length) per section.
        self._parts = parts
        self._cache: typing.Dict[int, typing.Any] = {}

    def __len__(self) -> int:
        return len(self._parts)

    def __getitem__(self, i: int):
        got = self._cache.get(i)
        if got is None:
            codec_id, stored, decoded_len = self._parts[i]
            got = _decompress(codec_id, stored, decoded_len)
            self._cache[i] = got
        return got

    def decoded_len(self, i: int) -> int:
        """Section ``i``'s decoded size, without decompressing it."""
        return self._parts[i][2]

    def stored(self, i: int) -> typing.Tuple[int, bytes, int]:
        """Section ``i`` as ``(codec_id, stored bytes copy, decoded
        length)`` — the *copy* matters: deferral closures built from
        this never alias the reader's mmap, so a lazy chunk stays
        valid past the handle that decoded it."""
        codec_id, stored, decoded_len = self._parts[i]
        return codec_id, bytes(stored), decoded_len


def _section_source(
    payload, codec_id: int, packed_bytes: int
) -> _SectionSource:
    """Parse a v6 ``ENC_COLUMNS`` body: validate the whole section
    table eagerly (the corrupt-section rule's mask-independent part),
    defer each body's decompression to the source."""
    if codec_id != CODEC_NONE:
        raise TraceFormatError(
            f"v6 columnar payload has nonzero outer codec {codec_id}"
        )
    body = memoryview(payload)[_V5_PAYLOAD.size :]
    table_size = V6_SECTION_COUNT * _V6_SECTION.size
    if len(body) < table_size:
        raise TraceFormatError("truncated column section header")
    parts: typing.List[typing.Tuple[int, typing.Any, int]] = []
    pos = table_size
    total_decoded = 0
    for i in range(V6_SECTION_COUNT):
        sec_codec, flags, reserved, stored_len, decoded_len = (
            _V6_SECTION.unpack_from(body, i * _V6_SECTION.size)
        )
        if flags or reserved:
            raise TraceFormatError(
                f"v6 section table entry {i} has nonzero reserved bits"
            )
        if sec_codec not in (CODEC_NONE, CODEC_ZLIB, CODEC_ZSTD):
            raise TraceFormatError(f"unknown chunk codec {sec_codec}")
        if sec_codec == CODEC_NONE and stored_len != decoded_len:
            raise TraceFormatError(
                f"stored payload is {stored_len} bytes; header declares "
                f"{decoded_len}"
            )
        if pos + stored_len > len(body):
            raise TraceFormatError(
                f"column section overruns the payload by "
                f"{pos + stored_len - len(body)} bytes"
            )
        parts.append((sec_codec, body[pos : pos + stored_len], decoded_len))
        pos += stored_len
        total_decoded += decoded_len
    if pos != len(body):
        raise TraceFormatError(
            f"{len(body) - pos} trailing bytes after the column sections"
        )
    if total_decoded != packed_bytes:
        raise TraceFormatError(
            f"decompressed payload is {total_decoded} bytes; header "
            f"declares {packed_bytes}"
        )
    return _SectionSource(parts)


def _open_columns(
    payload, codec_id: int, packed_bytes: int, version: int
) -> _SectionSource:
    """An ``ENC_COLUMNS`` payload's sections, whichever layout."""
    if version >= VERSION_SECTIONED:
        return _section_source(payload, codec_id, packed_bytes)
    body = memoryview(payload)[_V5_PAYLOAD.size :]
    packed = _decompress(codec_id, body, packed_bytes)
    return _SectionSource(
        [(CODEC_NONE, s, len(s)) for s in _sections(packed, 6)]
    )


def _section_bodies(chunk: ColumnChunk) -> typing.Tuple[bytes, ...]:
    """The six uncompressed section bodies of one chunk, in wire
    order (raw_ts, seq, side, code, core, values)."""
    if codec.batch_enabled():
        seq_arr = np.frombuffer(chunk.seq, codec.SEQ_DTYPE)
        if len(seq_arr) and int(seq_arr.max()) > _SEQ_MAX:
            raise struct.error("sequence number exceeds the wire's u32")
        return (
            dzv_encode(np.frombuffer(chunk.raw_ts, np.uint64)),
            dzv_encode(seq_arr.astype(np.uint64)),
            drle_encode(np.frombuffer(chunk.side, np.uint8)),
            drle_encode(np.frombuffer(chunk.code, np.uint8)),
            drle_encode(np.frombuffer(chunk.core, codec.CORE_DTYPE)),
            chunk.values.tobytes(),
        )
    seqs = list(chunk.seq)
    if seqs and max(seqs) > _SEQ_MAX:
        raise struct.error("sequence number exceeds the wire's u32")
    return (
        dzv_encode(chunk.raw_ts),
        dzv_encode(seqs),
        drle_encode(chunk.side),
        drle_encode(chunk.code),
        drle_encode(chunk.core),
        chunk.values.tobytes(),
    )


def encode_chunk_payload(
    chunk: ColumnChunk, version: int = VERSION_COMPRESSED
) -> bytes:
    """Serialize one chunk as a v5 or v6 payload (header + body).

    Under ``REPRO_NO_COMPRESS=1`` the body is the plain v2–v4 record
    stream for both versions.  Otherwise v5 whole-compresses the
    length-prefixed columnar body when that wins; v6 compresses each
    section independently (each falling back to stored when
    compression loses) behind the per-section table.
    """
    if not compress_enabled():
        body = codec.encode_batch(chunk)
        return _V5_PAYLOAD.pack(ENC_RECORDS, CODEC_NONE, 0, len(body)) + body
    if version >= VERSION_SECTIONED:
        sections = _section_bodies(chunk)
        table = bytearray()
        bodies: typing.List[bytes] = []
        for section in sections:
            codec_id, stored = _compress(section)
            table += _V6_SECTION.pack(
                codec_id, 0, 0, len(stored), len(section)
            )
            bodies.append(stored)
        packed_bytes = sum(len(s) for s in sections)
        return (
            _V5_PAYLOAD.pack(ENC_COLUMNS, CODEC_NONE, 0, packed_bytes)
            + bytes(table)
            + b"".join(bodies)
        )
    packed = _pack_columns(chunk)
    codec_id, body = _compress(packed)
    return _V5_PAYLOAD.pack(ENC_COLUMNS, codec_id, 0, len(packed)) + body


def _decode_record_stream(
    packed,
    n_records: int,
    columns: typing.Optional[typing.FrozenSet[str]] = None,
) -> ColumnChunk:
    """Decode an ``ENC_RECORDS`` body — the v2–v4 payload decoder.

    With a ``columns`` mask the stream is still walked end to end (a
    record stream interleaves every column, so skipping bytes is
    impossible), but the numpy gathers and the value scatter for
    unrequested columns are deferred to first access.  The scalar
    fallback decodes fully — a full chunk satisfies any mask — keeping
    results and errors identical either way.
    """
    end = len(packed)
    if columns is not None:
        masked = codec.decode_batch_masked(bytes(packed), 0, n_records)
        if masked is not None:
            if masked.next_offset != end:
                raise TraceFormatError(
                    f"chunk payload size mismatch: declared {end} bytes, "
                    f"decoded {masked.next_offset}"
                )
            return _masked_record_chunk(masked, columns)
    else:
        batch = codec.decode_batch(packed, 0, n_records)
        if batch is not None:
            if batch.next_offset != end:
                raise TraceFormatError(
                    f"chunk payload size mismatch: declared {end} bytes, "
                    f"decoded {batch.next_offset}"
                )
            chunk = ColumnChunk()
            chunk.extend_run(batch)
            return chunk
    chunk = ColumnChunk()
    offset = 0
    try:
        for __ in range(n_records):
            side, code, core, seq, raw_ts, values, offset = (
                codec.decode_fields(packed, offset)
            )
            chunk.append(side, code, core, seq, raw_ts, values)
    except (ValueError, KeyError) as exc:
        raise TraceFormatError(f"corrupt trace payload: {exc}") from exc
    if offset != end:
        raise TraceFormatError(
            f"chunk payload size mismatch: declared {end} bytes, "
            f"decoded {offset}"
        )
    return chunk


def _masked_record_chunk(
    masked: "codec.MaskedBatch", columns: typing.FrozenSet[str]
) -> LazyChunk:
    """A lazy chunk over a masked record-stream decode: static columns
    installed now, the rest materialized through the batch's makers."""
    chunk = LazyChunk(masked.count)
    side = array("B")
    side.frombytes(masked.sides.tobytes())
    chunk.set_column("side", side)
    code = array("B")
    code.frombytes(masked.codes.tobytes())
    chunk.set_column("code", code)
    val_off = array("L")
    val_off.frombytes(masked.val_off.astype(codec.OFF_DTYPE).tobytes())
    chunk.set_column("val_off", val_off)
    typecodes = {"core": "H", "seq": "L", "raw_ts": "Q", "values": "q"}
    for name, maker in masked.makers.items():
        def thunk(target, name=name, maker=maker):
            col = array(typecodes[name])
            col.frombytes(maker().tobytes())
            target.set_column(name, col)
        chunk.defer(name, thunk)
        if name in columns:
            getattr(chunk, name)  # materialize now, as a full decode would
    return chunk


def _defer_dzv(
    chunk: LazyChunk,
    name: str,
    part: typing.Tuple[int, bytes, int],
    n_records: int,
    typecode: str,
    np_dtype,
    limit: typing.Optional[int] = None,
) -> None:
    """Defer one delta-zigzag-varint section (``raw_ts`` or ``seq``):
    decompress + decode + range-check on first access, with exactly the
    full decoder's errors, into the stdlib array type the column has on
    an eager chunk."""
    sec_codec, stored, decoded_len = part

    def thunk(target: LazyChunk) -> None:
        body = _decompress(sec_codec, stored, decoded_len)
        if codec.batch_enabled() and n_records >= _SMALL_CHUNK:
            vals = _dzv_decode_vec(body, n_records)
            if limit is not None and len(vals) and int(vals.max()) > limit:
                raise TraceFormatError(
                    "column value out of range for its wire type"
                )
            col = array(typecode)
            col.frombytes(vals.astype(np_dtype).tobytes())
        else:
            vals_list = _dzv_decode_scalar(body, n_records)
            if limit is not None and vals_list and max(vals_list) > limit:
                raise TraceFormatError(
                    "column value out of range for its wire type"
                )
            col = array(typecode, vals_list)
        target.set_column(name, col)

    chunk.defer(name, thunk)


def _defer_drle(
    chunk: LazyChunk,
    name: str,
    part: typing.Tuple[int, bytes, int],
    n_records: int,
    typecode: str,
    np_dtype,
    limit: int,
) -> None:
    """Defer one dictionary-RLE section (``core``): decompress +
    decode + range-check on first access, with exactly the full
    decoder's errors, into the stdlib array type the column has on an
    eager chunk."""
    sec_codec, stored, decoded_len = part

    def thunk(target: LazyChunk) -> None:
        body = _decompress(sec_codec, stored, decoded_len)
        if codec.batch_enabled() and n_records >= _SMALL_CHUNK:
            vals = _drle_decode_vec(body, n_records)
            if len(vals) and int(vals.max()) > limit:
                raise TraceFormatError(
                    "column value out of range for its wire type"
                )
            col = array(typecode)
            col.frombytes(vals.astype(np_dtype).tobytes())
        else:
            vals_list = _drle_decode_scalar(body, n_records)
            if vals_list and max(vals_list) > limit:
                raise TraceFormatError(
                    "column value out of range for its wire type"
                )
            col = array(typecode, vals_list)
        target.set_column(name, col)

    chunk.defer(name, thunk)


def _defer_values(
    chunk: LazyChunk, part: typing.Tuple[int, bytes, int]
) -> None:
    """Defer the raw-i64 values section; its length was validated
    eagerly against the record types, so materialization is one
    decompress + one copy."""
    sec_codec, stored, decoded_len = part

    def thunk(target: LazyChunk) -> None:
        col = array("q")
        col.frombytes(_decompress(sec_codec, stored, decoded_len))
        target.set_column("values", col)

    chunk.defer("values", thunk)


def _masked_chunk(
    source: _SectionSource, n_records: int, columns: typing.FrozenSet[str]
) -> LazyChunk:
    """Masked decode of an ``ENC_COLUMNS`` payload.

    ``side`` and ``code`` decode eagerly — record-type validation and
    the derived ``val_off`` need them, and every predicate's kind test
    reads them.  The values-section length is cross-checked eagerly
    from the section table without decompressing it.  ``core``,
    ``raw_ts``, ``seq``, and ``values`` decode on demand unless
    requested by the mask, so a count-by-event scan inflates exactly
    two dictionary sections per chunk.
    """
    chunk = LazyChunk(n_records)
    if codec.batch_enabled() and n_records >= _SMALL_CHUNK:
        sides = _drle_decode_vec(source[2], n_records)
        codes = _drle_decode_vec(source[3], n_records)
        # side/code drive record-type validation and val_off; core
        # drives nothing here, so it decompresses only when the plan
        # asked for it (an SPE clause, time placement, a core group).
        cores = (
            _drle_decode_vec(source[4], n_records)
            if "core" in columns
            else None
        )
        if (
            (len(sides) and int(sides.max()) > 0xFF)
            or (len(codes) and int(codes.max()) > 0xFF)
            or (cores is not None and len(cores) and int(cores.max()) > 0xFFFF)
        ):
            raise TraceFormatError(
                "column value out of range for its wire type"
            )
        tids = (sides.astype(np.int64) << 8) | codes.astype(np.int64)
        sizes = _SIZE_LUT_NP[tids]
        if len(sizes) and int(sizes.min()) == 0:
            raise TraceFormatError("chunk contains an unknown record type")
        nf = codec._NF_LUT[tids]
        val_off = np.empty(n_records + 1, dtype=np.int64)
        val_off[0] = 0
        np.cumsum(nf, out=val_off[1:])
        want = int(val_off[-1]) * 8
        side_col = array("B")
        side_col.frombytes(sides.astype(np.uint8).tobytes())
        code_col = array("B")
        code_col.frombytes(codes.astype(np.uint8).tobytes())
        core_col: typing.Optional[array] = None
        if cores is not None:
            core_col = array("H")
            core_col.frombytes(cores.astype(codec.CORE_DTYPE).tobytes())
        off_col = array("L")
        off_col.frombytes(val_off.astype(codec.OFF_DTYPE).tobytes())
    else:
        sides_list = _drle_decode_scalar(source[2], n_records)
        codes_list = _drle_decode_scalar(source[3], n_records)
        cores_list = _drle_decode_scalar(source[4], n_records)
        offs = [0]
        pos = 0
        for i in range(n_records):
            side, code, core = sides_list[i], codes_list[i], cores_list[i]
            if side > 0xFF or code > 0xFF or core > 0xFFFF:
                raise TraceFormatError(
                    "column value out of range for its wire type"
                )
            try:
                values_struct, __, __ = codec.record_info(side, code)
            except KeyError as exc:
                raise TraceFormatError(
                    "chunk contains an unknown record type"
                ) from exc
            pos += values_struct.size // 8
            offs.append(pos)
        want = pos * 8
        side_col = array("B", sides_list)
        code_col = array("B", codes_list)
        core_col = array("H", cores_list)
        off_col = array("L", offs)
    if source.decoded_len(5) != want:
        raise TraceFormatError(
            f"values section is {source.decoded_len(5)} bytes; record "
            f"types require {want}"
        )
    chunk.set_column("side", side_col)
    chunk.set_column("code", code_col)
    if core_col is not None:
        chunk.set_column("core", core_col)
    else:
        _defer_drle(chunk, "core", source.stored(4), n_records, "H",
                    codec.CORE_DTYPE, 0xFFFF)
    chunk.set_column("val_off", off_col)
    _defer_dzv(chunk, "raw_ts", source.stored(0), n_records, "Q", np.uint64)
    _defer_dzv(
        chunk, "seq", source.stored(1), n_records, "L", codec.SEQ_DTYPE,
        limit=_SEQ_MAX,
    )
    _defer_values(chunk, source.stored(5))
    for name in ("raw_ts", "seq", "values"):
        if name in columns:
            getattr(chunk, name)  # materialize now, as a full decode would
    return chunk


#: numpy view of the codec's record-size LUT (0 marks unknown types).
_SIZE_LUT_NP = np.asarray(codec._SIZE_LUT, dtype=np.int64)

#: Below this many records the scalar reference decoder beats the
#: vectorized one — a columnar decode is ~40 numpy kernel launches
#: whose fixed cost dwarfs tiny chunks (measured crossover ≈48 on this
#: stack).  The paths are byte-identical (property-tested), so the
#: cutoff is a pure speed dispatch.
_SMALL_CHUNK = 48


def _decode_sync_columns(sections, n_records: int):
    """Decode the columns a sync scan needs — everything but ``seq`` —
    returning ``(sides, codes, cores, raws, val_off, values)`` arrays
    without assembling a chunk.  Validation matches the full decoder
    for every column it touches."""
    raws = _dzv_decode_vec(sections[0], n_records)
    sides = _drle_decode_vec(sections[2], n_records)
    codes = _drle_decode_vec(sections[3], n_records)
    cores = _drle_decode_vec(sections[4], n_records)
    if (
        (len(sides) and int(sides.max()) > 0xFF)
        or (len(codes) and int(codes.max()) > 0xFF)
        or (len(cores) and int(cores.max()) > 0xFFFF)
    ):
        raise TraceFormatError("column value out of range for its wire type")
    tids = (sides.astype(np.int64) << 8) | codes.astype(np.int64)
    sizes = _SIZE_LUT_NP[tids]
    if len(sizes) and int(sizes.min()) == 0:
        raise TraceFormatError("chunk contains an unknown record type")
    nf = codec._NF_LUT[tids]
    val_off = np.empty(n_records + 1, dtype=np.int64)
    val_off[0] = 0
    np.cumsum(nf, out=val_off[1:])
    want = int(val_off[-1]) * 8
    if len(sections[5]) != want:
        raise TraceFormatError(
            f"values section is {len(sections[5])} bytes; record types "
            f"require {want}"
        )
    values = np.frombuffer(sections[5], dtype="<i8")
    return sides, codes, cores, raws, val_off, values


def decode_sync_view(
    payload, n_records: int, version: int = VERSION_COMPRESSED
):
    """The sync-scan subset of one v5/v6 payload, skipping the ``seq``
    column and the :class:`ColumnChunk` build both of which a
    correlation pass never reads (on v6 the seq section is not even
    decompressed).

    Returns ``(sides, codes, cores, raws, val_off, values)`` numpy
    arrays; raises :class:`TraceFormatError` exactly like
    :func:`decode_chunk_payload` for everything it decodes.  Requires
    the batch codec (callers fall back to a full decode without it).
    """
    enc, codec_id, packed_bytes = _payload_header(payload)
    if enc == ENC_RECORDS or (
        enc != ENC_COLUMNS and version < VERSION_SECTIONED
    ):
        body = memoryview(payload)[_V5_PAYLOAD.size :]
        packed = _decompress(codec_id, body, packed_bytes)
        if enc == ENC_RECORDS:
            return _chunk_views(_decode_record_stream(packed, n_records))
    if enc != ENC_COLUMNS:
        raise TraceFormatError(f"unknown v5 payload encoding {enc}")
    source = _open_columns(payload, codec_id, packed_bytes, version)
    if n_records < _SMALL_CHUNK:
        return _chunk_views(_decode_columns_scalar(source, n_records))
    return _decode_sync_columns(source, n_records)


def _chunk_views(chunk: ColumnChunk):
    """A decoded chunk's columns as the array tuple the sync scan eats."""
    return (
        np.frombuffer(chunk.side, np.uint8),
        np.frombuffer(chunk.code, np.uint8),
        np.frombuffer(chunk.core, codec.CORE_DTYPE),
        np.frombuffer(chunk.raw_ts, np.uint64),
        np.asarray(chunk.val_off, dtype=np.int64),
        np.frombuffer(chunk.values, dtype="<i8"),
    )


def scan_sync_chunk(
    payload,
    n_records: int,
    spe_side: int,
    sync_code: int,
    version: int = VERSION_COMPRESSED,
):
    """Scalar sync scan of one small v5/v6 ``ENC_COLUMNS`` payload.

    Decodes only what a correlation scan reads — the three dictionary
    sections, the timestamp column, and the first value of each sync
    record — with no numpy and no chunk assembly, which beats the
    column decoders outright below :data:`_SMALL_CHUNK` records.
    Returns ``(spe_cores, syncs)`` with ``syncs`` a list of
    ``(core, raw_ts, tb_raw)`` tuples, or ``None`` for an
    ``ENC_RECORDS`` payload (callers fall back to a full decode).
    Raises :class:`TraceFormatError` on any structural inconsistency,
    like the full decoder does for the columns it shares.
    """
    enc, codec_id, packed_bytes = _payload_header(payload)
    if enc == ENC_RECORDS:
        return None
    if enc != ENC_COLUMNS:
        raise TraceFormatError(f"unknown v5 payload encoding {enc}")
    sections = _open_columns(payload, codec_id, packed_bytes, version)
    raws = _dzv_decode_scalar(sections[0], n_records)
    sides = _drle_decode_scalar(sections[2], n_records)
    codes = _drle_decode_scalar(sections[3], n_records)
    cores = _drle_decode_scalar(sections[4], n_records)
    values = sections[5]
    spe_cores: typing.Set[int] = set()
    syncs: typing.List[typing.Tuple[int, int, int]] = []
    pos = 0
    for i in range(n_records):
        side, code, core = sides[i], codes[i], cores[i]
        if side > 0xFF or code > 0xFF or core > 0xFFFF:
            raise TraceFormatError(
                "column value out of range for its wire type"
            )
        try:
            values_struct, __, __ = codec.record_info(side, code)
        except KeyError as exc:
            raise TraceFormatError(
                "chunk contains an unknown record type"
            ) from exc
        if side == spe_side:
            spe_cores.add(core)
            if code == sync_code:
                try:
                    (tb_raw,) = _I64.unpack_from(values, pos * 8)
                except struct.error as exc:
                    raise TraceFormatError(
                        f"values section is {len(values)} bytes; record "
                        f"types require more"
                    ) from exc
                syncs.append((core, raws[i], tb_raw))
        pos += values_struct.size // 8
    if pos * 8 != len(values):
        raise TraceFormatError(
            f"values section is {len(values)} bytes; record types "
            f"require {pos * 8}"
        )
    return spe_cores, syncs


def _decode_columns_vec(sections, n_records: int) -> ColumnChunk:
    sides, codes, cores, raws, val_off, values = _decode_sync_columns(
        sections, n_records
    )
    seqs = _dzv_decode_vec(sections[1], n_records)
    if len(seqs) and int(seqs.max()) > _SEQ_MAX:
        raise TraceFormatError("column value out of range for its wire type")
    batch = codec.DecodedBatch(
        n_records,
        sides.astype(np.uint8),
        codes.astype(np.uint8),
        cores.astype(codec.CORE_DTYPE),
        seqs,
        raws,
        val_off,
        values,
        0,
    )
    chunk = ColumnChunk()
    chunk.extend_run(batch)
    return chunk


def _decode_columns_scalar(sections, n_records: int) -> ColumnChunk:
    raws = _dzv_decode_scalar(sections[0], n_records)
    seqs = _dzv_decode_scalar(sections[1], n_records)
    sides = _drle_decode_scalar(sections[2], n_records)
    codes = _drle_decode_scalar(sections[3], n_records)
    cores = _drle_decode_scalar(sections[4], n_records)
    values = array("q")
    values.frombytes(bytes(sections[5]))
    chunk = ColumnChunk()
    pos = 0
    for i in range(n_records):
        side, code, core, seq = sides[i], codes[i], cores[i], seqs[i]
        if side > 0xFF or code > 0xFF or core > 0xFFFF or seq > _SEQ_MAX:
            raise TraceFormatError(
                "column value out of range for its wire type"
            )
        try:
            values_struct, __, __ = codec.record_info(side, code)
        except KeyError as exc:
            raise TraceFormatError(
                "chunk contains an unknown record type"
            ) from exc
        nf = values_struct.size // 8
        if pos + nf > len(values):
            raise TraceFormatError(
                f"values section is {8 * len(values)} bytes; record types "
                f"require more"
            )
        chunk.append(side, code, core, seq, raws[i], values[pos : pos + nf])
        pos += nf
    if pos != len(values):
        raise TraceFormatError(
            f"values section is {8 * len(values)} bytes; record types "
            f"require {8 * pos}"
        )
    return chunk


def decode_chunk_payload(
    payload,
    n_records: int,
    version: int = VERSION_COMPRESSED,
    columns: typing.Optional[typing.Iterable[str]] = None,
) -> ColumnChunk:
    """Decode one v5/v6 chunk payload (header + body) into a chunk.

    ``columns`` (a subset of
    :data:`~repro.pdt.store.CHUNK_COLUMNS`, or ``None`` for all)
    enables projection pushdown: the returned chunk is then a
    :class:`~repro.pdt.store.LazyChunk` that decoded only the
    requested sections (plus side/code/core and the derived
    ``val_off``, which every consumer needs) and materializes the rest
    on first access.  ``REPRO_FULL_DECODE=1`` ignores the mask.

    Raises :class:`TraceFormatError` on any structural inconsistency;
    never returns a partially-decoded chunk.  See the module docstring
    for exactly which checks stay eager under a mask.
    """
    enc, codec_id, packed_bytes = _payload_header(payload)
    columns = _effective_columns(columns)
    if enc == ENC_RECORDS or (
        enc != ENC_COLUMNS and version < VERSION_SECTIONED
    ):
        body = memoryview(payload)[_V5_PAYLOAD.size :]
        packed = _decompress(codec_id, body, packed_bytes)
        if enc == ENC_RECORDS:
            return _decode_record_stream(packed, n_records, columns)
    if enc != ENC_COLUMNS:
        raise TraceFormatError(f"unknown v5 payload encoding {enc}")
    source = _open_columns(payload, codec_id, packed_bytes, version)
    if columns is not None:
        return _masked_chunk(source, n_records, columns)
    if codec.batch_enabled() and n_records >= _SMALL_CHUNK:
        return _decode_columns_vec(source, n_records)
    return _decode_columns_scalar(source, n_records)
