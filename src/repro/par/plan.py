"""Shard planning: carve a trace's chunk range into contiguous work
units of near-equal decode cost.

The planner weighs chunks before splitting:

* **zone-index partitioning** — when the source carries zone maps (v4
  trailer or attached ``.pdtx`` sidecar), a chunk's weight is its zone
  record count, zeroed when the query predicate excludes the chunk.
  Shards then balance the records that will actually be decoded, so a
  selective query does not strand all its surviving chunks in one
  worker.
* **frame-offset partitioning** — without zones, weights fall back to
  the per-chunk record counts read from the chunk frame index (no
  payload decode), balancing the full-scan cost instead.

Partitioning is contiguous and exhaustive: every chunk of ``[0, n)``
lands in exactly one shard, in order — which is what lets the merge
step reassemble results in serial scan order, and keeps per-shard
PruneStats summing to exactly the serial accounting.
"""

from __future__ import annotations

import typing

from repro.pdt.handle import TraceHandle
from repro.pdt.store import EventSource
from repro.tq.predicate import Predicate


def chunk_weights(
    source: typing.Union[EventSource, TraceHandle],
    predicate: typing.Optional[Predicate] = None,
) -> typing.List[int]:
    """Planning weight per chunk (see module docstring)."""
    if isinstance(source, TraceHandle):
        source = source.source()
    zones = source.zone_maps()
    if zones is not None:
        if predicate is None:
            return [zone.n_records for zone in zones]
        return [
            zone.n_records if predicate.admits(zone) else 0 for zone in zones
        ]
    counts = getattr(source, "chunk_record_counts", None)
    if counts is not None:
        return list(counts())
    return [len(chunk) for chunk in source.iter_chunks()]


def partition(
    weights: typing.Sequence[int], shards: int
) -> typing.List[typing.Tuple[int, int]]:
    """Split ``[0, len(weights))`` into at most ``shards`` contiguous
    half-open ranges of near-equal cumulative weight.

    Deterministic; ranges are in order, non-empty, and cover every
    index exactly once.  With an all-zero weight vector (every chunk
    pruned) the split is even by count, so accounting still
    distributes.
    """
    n = len(weights)
    if n == 0:
        return []
    shards = max(1, min(shards, n))
    if shards == 1:
        return [(0, n)]
    total = sum(weights)
    cuts: typing.List[int] = []
    if total <= 0:
        cuts = sorted(
            {round(k * n / shards) for k in range(1, shards)} - {0, n}
        )
    else:
        acc = 0
        k = 1
        for i, weight in enumerate(weights):
            acc += weight
            # Close shard k at the first chunk where the cumulative
            # weight reaches k/shards of the total.
            while k < shards and acc * shards >= k * total:
                cut = i + 1
                if cut < n and (not cuts or cut > cuts[-1]):
                    cuts.append(cut)
                k += 1
    ranges: typing.List[typing.Tuple[int, int]] = []
    lo = 0
    for cut in cuts:
        ranges.append((lo, cut))
        lo = cut
    ranges.append((lo, n))
    return ranges


def plan_shards(
    source: typing.Union[EventSource, TraceHandle],
    jobs: int,
    predicate: typing.Optional[Predicate] = None,
) -> typing.List[typing.Tuple[int, int]]:
    """Chunk ranges for up to ``jobs`` workers over ``source``."""
    return partition(chunk_weights(source, predicate), jobs)
