"""The multiprocessing shard executor and its byte-identical merge.

One call shape underneath everything: the parent opens the trace,
fits the clock correlator once on the whole unpruned file, plans
contiguous chunk-range shards (:mod:`repro.par.plan`), and ships each
worker a picklable :class:`ShardTask` — the reopen descriptor (path or
blob + strictness + sidecar flag), the chunk range, the
:class:`~repro.tq.pipeline.QueryPlan`, and the already-computed clock
fits.  Workers reopen the file, seek straight to their range through
:meth:`~repro.pdt.reader.TraceFileSource.range_view`, run the ordinary
serial pipeline over the view, and return mergeable partial results.
The parent merges in shard order, so:

* aggregation rows are identical (partial states merge associatively,
  percentile populations concatenate in chunk order and are sorted
  once at finalize);
* record streams concatenate back into exact serial scan order;
* per-shard :class:`~repro.tq.source.PruneStats` sum to exactly the
  serial accounting.

**Fault handling**: any worker failure — a crashed process, a broken
pool, a poisoned task — degrades to serial re-execution of that shard
in the parent, through the very same :func:`run_shard` code path, so a
fault can delay an answer but never change it.  A shard that also
fails serially raises exactly what a serial run would have raised.
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import multiprocessing
import os
import typing

from repro.pdt.correlate import ClockCorrelator, SpeClockFit
from repro.pdt.events import SIDE_PPE, spec_for_code
from repro.pdt.handle import HandleSource, TraceHandle
from repro.pdt.reader import open_trace
from repro.pdt.store import EventSource
from repro.par.plan import chunk_weights, partition
from repro.tq.pipeline import PartialAggregation, Query, QueryPlan
from repro.tq.source import PruneStats

#: Set by the pool initializer in worker processes only; lets tests
#: inject faults that fire in pool children but not in the parent's
#: serial re-execution of the same task.
_IN_POOL_WORKER = False

#: Test hook: when set, _prepare stamps this fault onto every task.
_TEST_FAULT: typing.Optional[str] = None

_DEFAULT_PROJECTION = ("time", "side", "core", "kind", "seq")


@dataclasses.dataclass(frozen=True)
class TraceTarget:
    """How a worker reopens the parent's trace: by path or by bytes,
    with the same strictness and index attachment the parent used."""

    path: typing.Optional[str]
    blob: typing.Optional[bytes]
    strict: bool
    attach_sidecar: bool


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs, picklable."""

    target: TraceTarget
    lo: int
    hi: int
    mode: str  # "aggregate" | "records" | "count" | "profile"
    plan: typing.Optional[QueryPlan] = None
    divider: typing.Optional[int] = None
    fits: typing.Optional[typing.Dict[int, SpeClockFit]] = None
    fault: typing.Optional[str] = None  # test-only injection


def _mark_pool_worker() -> None:
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _profile_counts(
    source: EventSource,
) -> typing.Dict[typing.Tuple[int, int], typing.Dict[str, int]]:
    """(side, core) -> kind -> count over one shard; mirrors
    ``repro.ta.profile._count_events`` exactly (PPE folded to core 0)
    so merged shard counts equal the serial counts."""
    counts: typing.Dict[typing.Tuple[int, int], typing.Dict[str, int]] = {}
    for chunk in source.iter_chunks():
        for side, code, core in zip(chunk.side, chunk.code, chunk.core):
            key = (side, core if side != SIDE_PPE else 0)
            kinds = counts.setdefault(key, {})
            kind = spec_for_code(side, code).kind
            kinds[kind] = kinds.get(kind, 0) + 1
    return counts


#: Per-process cache of open handles, used only inside pool workers: a
#: worker that serves several shards of the same trace (or several
#: queries of one server session) reopens and re-parses it once, not
#: once per shard.  The parent's serial fallback path deliberately
#: bypasses this — it opens fresh and closes in ``finally``, keeping
#: the historical no-descriptors-after-return guarantee the fd-leak
#: tests pin down.
_WORKER_HANDLES: "collections.OrderedDict[typing.Tuple, TraceHandle]" = (
    collections.OrderedDict()
)
_WORKER_HANDLE_CAP = 4


def _worker_handle(target: TraceTarget) -> TraceHandle:
    """The pool worker's cached handle for ``target`` (LRU, capped)."""
    key = (target.path, target.blob, target.strict, target.attach_sidecar)
    handle = _WORKER_HANDLES.get(key)
    if handle is not None and not handle.closed:
        _WORKER_HANDLES.move_to_end(key)
        return handle
    raw: typing.Union[str, bytes]
    raw = target.path if target.path is not None else target.blob
    handle = TraceHandle(raw, strict=target.strict)
    if target.attach_sidecar and handle.zone_maps() is None:
        handle.attach_sidecar()
    _WORKER_HANDLES[key] = handle
    while len(_WORKER_HANDLES) > _WORKER_HANDLE_CAP:
        __, evicted = _WORKER_HANDLES.popitem(last=False)
        evicted.close()
    return handle


def run_shard(task: ShardTask) -> typing.Any:
    """Execute one shard — in a worker process or, for fault recovery,
    serially in the parent.  Returns ``(partial, stats)`` for
    aggregate, ``(rows, stats)`` for records, ``(count, stats)`` for
    count, and a counts dict for profile."""
    if task.fault and _IN_POOL_WORKER:
        if task.fault == "crash":
            os._exit(3)  # simulate a worker dying without cleanup
        raise RuntimeError(f"injected shard fault: {task.fault}")
    if _IN_POOL_WORKER:
        # A borrowed view over the worker's cached handle; its close()
        # is a no-op, so the handle survives for the next shard.
        base: EventSource = _worker_handle(task.target).source()
    else:
        raw: typing.Union[str, bytes]
        raw = (
            task.target.path
            if task.target.path is not None
            else task.target.blob
        )
        base = open_trace(raw, strict=task.target.strict)
    try:
        if task.target.attach_sidecar and base.zone_maps() is None:
            base.attach_sidecar()
        view = base.range_view(task.lo, task.hi)
        if task.mode == "profile":
            return _profile_counts(view)
        assert task.plan is not None
        correlator = None
        if task.fits is not None:
            assert task.divider is not None
            correlator = ClockCorrelator.from_fits(
                task.divider, task.fits, view
            )
        query = Query.from_plan(view, task.plan, correlator)
        if task.mode == "aggregate":
            return query.run_partial(), query.stats
        if task.mode == "records":
            return list(query.records()), query.stats
        if task.mode == "count":
            return query.count(), query.stats
        raise ValueError(f"unknown shard mode {task.mode!r}")
    finally:
        base.close()


_UNSET = object()


def execute_shards(
    tasks: typing.Sequence[ShardTask], jobs: int
) -> typing.List[typing.Any]:
    """Run every task, fanned out over up to ``jobs`` processes.

    Results come back indexed like ``tasks``.  Worker faults degrade
    per shard: whatever a pool child fails to deliver is re-executed
    serially in the parent (see module docstring).
    """
    results: typing.List[typing.Any] = [_UNSET] * len(tasks)
    if jobs > 1 and len(tasks) > 1:
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(jobs, len(tasks)),
                mp_context=_pool_context(),
                initializer=_mark_pool_worker,
            ) as pool:
                futures = [pool.submit(run_shard, task) for task in tasks]
                for i, future in enumerate(futures):
                    try:
                        results[i] = future.result()
                    except Exception:
                        pass  # re-run this shard serially below
        except Exception:
            pass  # pool-level failure: every unfinished shard re-runs
    for i, task in enumerate(tasks):
        if results[i] is _UNSET:
            results[i] = run_shard(task)
    return results


# ----------------------------------------------------------------------
# parent-side preparation and merge
# ----------------------------------------------------------------------
def _file_target(source: EventSource) -> typing.Optional[TraceTarget]:
    """A reopen descriptor for ``source``, or ``None`` when the source
    cannot be handed to another process (in-memory stores, wrapped
    views) — the caller then degrades to a serial run.  Any
    handle-backed source qualifies: a private
    :class:`~repro.pdt.reader.TraceFileSource` or a borrowed
    :meth:`~repro.pdt.handle.TraceHandle.source` view both describe
    the same reopenable file."""
    if not isinstance(source, HandleSource):
        return None
    strict = source.salvage is None
    attach = source.zone_maps() is not None
    if source.path is not None:
        return TraceTarget(
            path=source.path, blob=None, strict=strict, attach_sidecar=attach
        )
    if source.blob is not None:
        return TraceTarget(
            path=None, blob=source.blob, strict=strict, attach_sidecar=attach
        )
    return None


def _prepare(
    query: Query, jobs: int, mode: str
) -> typing.Optional[typing.List[ShardTask]]:
    """Shard tasks for ``query``, or ``None`` when a parallel run
    cannot help (serial fallback): one job, a non-file source, or a
    trace too small to split."""
    if jobs <= 1:
        return None
    source = query.source
    target = _file_target(source)
    if target is None:
        return None
    ranges = partition(chunk_weights(source, query.predicate), jobs)
    if len(ranges) < 2:
        return None
    divider: typing.Optional[int] = None
    fits: typing.Optional[typing.Dict[int, SpeClockFit]] = None
    if query._needs_time():
        # Fitted once, on the whole unpruned file, then shipped — every
        # worker places every record exactly as a serial scan would.
        correlator = query._get_correlator()
        divider = correlator.divider
        fits = correlator.fits
    plan = query.plan()
    return [
        ShardTask(
            target=target,
            lo=lo,
            hi=hi,
            mode=mode,
            plan=plan,
            divider=divider,
            fits=fits,
            fault=_TEST_FAULT,
        )
        for lo, hi in ranges
    ]


def parallel_rows(
    query: Query, jobs: int
) -> typing.List[typing.Dict[str, typing.Any]]:
    """:meth:`Query.run` with the scan sharded over ``jobs`` worker
    processes; byte-identical results, merged PruneStats on
    ``query.stats``."""
    tasks = _prepare(query, jobs, "aggregate")
    if tasks is None:
        return query.run()
    outs = execute_shards(tasks, jobs)
    merged: PartialAggregation = outs[0][0]
    for partial, __ in outs[1:]:
        merged.merge(partial)
    query.stats = PruneStats.merged(stats for __, stats in outs)
    return merged.finalize()


def parallel_records(query: Query, jobs: int) -> typing.List[typing.Tuple]:
    """:meth:`Query.records` (materialized) sharded over ``jobs``
    workers; shard outputs concatenate in shard order, which *is*
    serial chunk order."""
    fork = (
        query if query._projection else query.project(*_DEFAULT_PROJECTION)
    )
    tasks = _prepare(fork, jobs, "records")
    if tasks is None:
        return list(query.records())
    outs = execute_shards(tasks, jobs)
    rows: typing.List[typing.Tuple] = []
    for shard_rows, __ in outs:
        rows.extend(shard_rows)
    query.stats = PruneStats.merged(stats for __, stats in outs)
    return rows


def parallel_count(query: Query, jobs: int) -> int:
    """:meth:`Query.count` sharded over ``jobs`` workers."""
    tasks = _prepare(query, jobs, "count")
    if tasks is None:
        return query.count()
    outs = execute_shards(tasks, jobs)
    query.stats = PruneStats.merged(stats for __, stats in outs)
    return sum(count for count, __ in outs)


def parallel_event_counts(
    source: EventSource, jobs: int
) -> typing.Optional[
    typing.Dict[typing.Tuple[int, int], typing.Dict[str, int]]
]:
    """Sharded ``(side, core) -> kind -> count`` tally for the profile
    pane, or ``None`` when the source cannot be sharded (the caller
    counts serially).  Counts are order-independent, so the merged
    result is identical to a serial tally."""
    if jobs <= 1:
        return None
    target = _file_target(source)
    if target is None:
        return None
    ranges = partition(chunk_weights(source, None), jobs)
    if len(ranges) < 2:
        return None
    tasks = [
        ShardTask(target=target, lo=lo, hi=hi, mode="profile", fault=_TEST_FAULT)
        for lo, hi in ranges
    ]
    merged: typing.Dict[typing.Tuple[int, int], typing.Dict[str, int]] = {}
    for counts in execute_shards(tasks, jobs):
        for key, kinds in counts.items():
            mine = merged.setdefault(key, {})
            for kind, count in kinds.items():
                mine[kind] = mine.get(kind, 0) + count
    return merged
