"""par — the parallel sharded query/analysis execution layer.

Single-process scans cap the Trace Analyzer's throughput far below
what the chunked on-disk layout allows; this package shards a v1–v4
trace by chunk ranges and runs the :mod:`repro.tq` pipeline (and the
:mod:`repro.ta` summary/series builders layered on it) in N worker
processes:

* **planning** (:mod:`repro.par.plan`) — contiguous chunk ranges
  balanced by the v4/``.pdtx`` zone index when present (pruned chunks
  weigh nothing), by frame-index record counts otherwise;
* **execution** (:mod:`repro.par.executor`) — a process pool of shard
  workers, each reopening the trace and seeking straight to its range
  (:meth:`~repro.pdt.reader.TraceFileSource.range_view`), with the
  clock correlator fitted once by the parent on the whole unpruned
  file and shipped to every worker;
* **merging** — aggregation partial states
  (:class:`~repro.tq.pipeline.PartialAggregation`) merge in shard
  order; record streams concatenate back into serial scan order;
  PruneStats sum to the serial accounting.

The contract throughout: **byte-identical to serial, in every mode** —
any worker fault degrades to serial re-execution of that shard, never
to a different answer.  ``pdt-analyze --jobs N`` and the parallel
``repro.ta`` variants route through here.  See ``docs/parallel.md``.
"""

from repro.par.executor import (
    ShardTask,
    TraceTarget,
    execute_shards,
    parallel_count,
    parallel_event_counts,
    parallel_records,
    parallel_rows,
    run_shard,
)
from repro.par.plan import chunk_weights, partition, plan_shards

__all__ = [
    "ShardTask",
    "TraceTarget",
    "chunk_weights",
    "execute_shards",
    "parallel_count",
    "parallel_event_counts",
    "parallel_records",
    "parallel_rows",
    "partition",
    "plan_shards",
    "run_shard",
]
