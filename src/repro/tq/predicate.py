"""Query predicates: one object, two evaluation granularities.

A :class:`Predicate` states what records a query wants.  It is
evaluated twice, against different amounts of information:

* **chunk granularity** — :meth:`Predicate.admits` asks a
  :class:`~repro.pdt.index.ZoneMap` whether a chunk *could* contain a
  matching record.  This is the pushdown path: an admitted chunk may
  still turn out empty of matches (zones are conservative), but a
  refused chunk provably holds none, so the reader can seek past its
  payload.
* **record granularity** — :meth:`matches_static`,
  :meth:`matches_time` and :meth:`matches_fields` decide each record
  exactly.  Every record the query returns passed these, whether or
  not its chunk was admitted by a zone map — which is why query
  results are byte-identical with and without an index.

Predicates are immutable; refinement (:meth:`refine`) returns a new,
strictly-narrower predicate, so a :class:`~repro.tq.pipeline.Query`
can be forked cheaply.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.pdt.events import EVENT_SPECS, SIDE_PPE, SIDE_SPE, spec_for_code
from repro.pdt.index import ZoneMap


def events_matching(
    selector: typing.Union[int, str]
) -> typing.FrozenSet[typing.Tuple[int, int]]:
    """Resolve an event selector to the (side, code) pairs it names.

    An ``int`` selects that record code on whichever sides define it; a
    ``str`` selects every spec whose kind name matches (kind names can
    exist on both sides, e.g. user markers).  Raises :class:`ValueError`
    for selectors that name nothing — a typo'd event filter should fail
    loudly, not return zero records.
    """
    if isinstance(selector, bool):
        raise ValueError(f"not an event selector: {selector!r}")
    if isinstance(selector, int):
        pairs = frozenset(key for key in EVENT_SPECS if key[1] == selector)
        if not pairs:
            raise ValueError(f"no event has code {selector:#x}")
        return pairs
    name = str(selector)
    pairs = frozenset(
        (spec.side, spec.code)
        for spec in EVENT_SPECS.values()
        if str(spec.kind) == name
    )
    if not pairs:
        known = sorted({str(s.kind) for s in EVENT_SPECS.values()})
        raise ValueError(
            f"unknown event kind {name!r}; known kinds: {', '.join(known)}"
        )
    return pairs


@dataclasses.dataclass(frozen=True)
class Predicate:
    """What records a query selects (conjunction of the set clauses).

    ``t_min``/``t_max`` bound the corrected global time, inclusive.
    ``spes`` restricts to SPE-side records from those cores (so it
    implies the SPE side).  ``side`` restricts to one side.  ``events``
    is a set of (side, code) pairs; a record matches if its own pair is
    in the set.  ``fields`` is a tuple of ``(name, lo, hi)`` payload
    clauses: the record's spec must define ``name`` and the value must
    fall in ``[lo, hi]`` (either bound may be ``None``).
    """

    t_min: typing.Optional[int] = None
    t_max: typing.Optional[int] = None
    side: typing.Optional[int] = None
    spes: typing.Optional[typing.FrozenSet[int]] = None
    events: typing.Optional[
        typing.FrozenSet[typing.Tuple[int, int]]
    ] = None
    fields: typing.Tuple[
        typing.Tuple[str, typing.Optional[int], typing.Optional[int]], ...
    ] = ()

    @property
    def needs_time(self) -> bool:
        """Whether evaluating this predicate requires placed time."""
        return self.t_min is not None or self.t_max is not None

    def required_columns(self) -> typing.FrozenSet[str]:
        """The chunk columns record-exact evaluation reads:
        ``side``/``code`` always (they carry the kind machinery),
        ``core`` only when an SPE clause tests it or a time window
        needs records placed (placement is per-core), ``raw_ts`` when
        a time window needs records placed, and ``values`` when
        payload clauses must be checked.  This is the predicate's
        contribution to a query plan's projection-pushdown set —
        columns outside it (and the plan's own needs) are never
        decoded, so a count-by-event scan decodes two dictionary
        sections, not three."""
        needed = {"side", "code"}
        if self.spes is not None:
            needed.add("core")
        if self.needs_time:
            needed.update(("raw_ts", "core"))
        if self.fields:
            needed.add("values")
        return frozenset(needed)

    @property
    def is_unrestricted(self) -> bool:
        return (
            not self.needs_time
            and self.side is None
            and self.spes is None
            and self.events is None
            and not self.fields
        )

    # -- construction --------------------------------------------------
    def refine(
        self,
        t0: typing.Optional[int] = None,
        t1: typing.Optional[int] = None,
        spe: typing.Union[int, typing.Iterable[int], None] = None,
        side: typing.Optional[int] = None,
        event: typing.Union[int, str, typing.Iterable, None] = None,
    ) -> "Predicate":
        """A new predicate selecting the intersection with the clauses.

        ``event`` accepts a kind name, a record code, or an iterable of
        either; repeated refinement intersects (never widens) each
        clause.
        """
        t_min, t_max = self.t_min, self.t_max
        if t0 is not None:
            t_min = t0 if t_min is None else max(t_min, t0)
        if t1 is not None:
            t_max = t1 if t_max is None else min(t_max, t1)
        spes = self.spes
        if spe is not None:
            new = frozenset([spe] if isinstance(spe, int) else spe)
            spes = new if spes is None else spes & new
        events = self.events
        if event is not None:
            if isinstance(event, (int, str)):
                new = events_matching(event)
            else:
                new = frozenset().union(
                    *(events_matching(e) for e in event)
                )
            events = new if events is None else events & new
        new_side = self.side
        if side is not None:
            if new_side is not None and new_side != side:
                # Contradictory sides: select nothing, via an empty
                # event set (keeps the type simple).
                events = frozenset()
            new_side = side
        return dataclasses.replace(
            self, t_min=t_min, t_max=t_max, side=new_side, spes=spes,
            events=events,
        )

    def refine_field(
        self,
        name: str,
        lo: typing.Optional[int] = None,
        hi: typing.Optional[int] = None,
        eq: typing.Optional[int] = None,
    ) -> "Predicate":
        if eq is not None:
            lo = hi = eq
        return dataclasses.replace(
            self, fields=self.fields + ((name, lo, hi),)
        )

    # -- chunk granularity (pushdown) ----------------------------------
    def admits(self, zone: ZoneMap) -> bool:
        """Could a chunk summarized by ``zone`` hold a matching record?

        Must err toward ``True``: a false admit costs one chunk decode,
        a false refusal would silently drop results.
        """
        if zone.n_records == 0:
            return False
        if not zone.may_overlap_time(self.t_min, self.t_max):
            return False
        want_spe = self.spes is not None or self.side == SIDE_SPE
        if want_spe and not zone.spe_overflow:
            if self.spes is not None:
                if not any(zone.may_contain_spe(s) for s in self.spes):
                    return False
            elif zone.spe_bitmap == 0:
                return False
        if self.side == SIDE_PPE and not zone.has_ppe:
            return False
        if self.events is not None:
            if not any(
                zone.may_contain_code(side, code)
                for side, code in self.events
            ):
                return False
        return True

    # -- record granularity --------------------------------------------
    def matches_static(self, side: int, code: int, core: int) -> bool:
        """The time-free, payload-free part of the record test."""
        if self.side is not None and side != self.side:
            return False
        if self.spes is not None and (side != SIDE_SPE or core not in self.spes):
            return False
        if self.events is not None and (side, code) not in self.events:
            return False
        return True

    def matches_time(self, time: int) -> bool:
        if self.t_min is not None and time < self.t_min:
            return False
        if self.t_max is not None and time > self.t_max:
            return False
        return True

    def matches_fields(
        self, side: int, code: int, values: typing.Sequence[int]
    ) -> bool:
        if not self.fields:
            return True
        spec = spec_for_code(side, code)
        for name, lo, hi in self.fields:
            try:
                value = values[spec.fields.index(name)]
            except ValueError:
                return False  # record type has no such field
            if lo is not None and value < lo:
                return False
            if hi is not None and value > hi:
                return False
        return True
