"""IndexedSource: an :class:`~repro.pdt.store.EventSource` that prunes.

Wrapping any source with a predicate yields another source that
serves only the chunks the source's zone maps admit — a *superset* of
the matching records at chunk granularity (record-exact filtering is
the query pipeline's job).  For a file-backed source the excluded
payloads are never read (``iter_chunks_selected`` seeks past them),
so a selective query over a v4 trace costs O(selected chunks) I/O and
decode instead of O(trace).

Sources without pruning information (salvaged reads, v1–v3 files with
no sidecar) degrade to a plain full scan through the same interface —
callers never branch on indexedness, and results cannot differ.

Also here: :func:`build_sidecar`, the backfill tool that gives an
existing v1–v3 trace file a ``.pdtx`` index without rewriting it, and
:func:`open_indexed`, which opens a trace and attaches any sidecar.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.pdt.correlate import ClockCorrelator, CorrelationError
from repro.pdt.handle import TraceHandle
from repro.pdt.index import build_zone_maps, write_sidecar
from repro.pdt.reader import TraceFileSource, open_trace
from repro.pdt.store import ColumnChunk, EventSource
from repro.tq.predicate import Predicate


@dataclasses.dataclass
class PruneStats:
    """How much the zone maps saved on one scan."""

    total_chunks: int = 0
    scanned_chunks: int = 0
    indexed: bool = False

    @property
    def pruned_chunks(self) -> int:
        return self.total_chunks - self.scanned_chunks

    @classmethod
    def merged(cls, parts: typing.Iterable["PruneStats"]) -> "PruneStats":
        """Combine per-shard accounting into whole-scan accounting.

        Shard totals sum (each shard owns a disjoint chunk range), and
        the scan counts as indexed only when every shard pruned — which
        matches serial behaviour, where indexedness is a property of
        the whole source.
        """
        merged = cls(indexed=True)
        seen = False
        for part in parts:
            seen = True
            merged.total_chunks += part.total_chunks
            merged.scanned_chunks += part.scanned_chunks
            merged.indexed = merged.indexed and part.indexed
        if not seen:
            merged.indexed = False
        return merged

    def note(self) -> str:
        """One line for verbose CLI output."""
        if not self.indexed:
            return (
                f"no usable index: full scan over {self.total_chunks} chunks"
            )
        return (
            f"pruned {self.pruned_chunks}/{self.total_chunks} chunks "
            f"(scanned {self.scanned_chunks})"
        )


class IndexedSource(EventSource):
    """A predicate-pruned view over a base source.

    ``iter_chunks`` yields, in order, exactly the base chunks whose
    zone map admits the predicate (all of them when the base has no
    zone maps).  ``n_records`` counts the records *served* — the
    admitted superset, not the exact match count.  ``scan_sync``
    deliberately delegates to the *unpruned* base: clock correlation
    must always see every sync record, or placed times would depend on
    the predicate.

    ``columns`` is the query plan's required-column set, threaded to
    the base's ``iter_chunks_projected`` so admitted chunks decode only
    what the plan reads (the projection-pushdown path); ``None`` keeps
    the full decode.
    """

    def __init__(
        self,
        base: typing.Union[EventSource, TraceHandle],
        predicate: Predicate,
        correlator: typing.Optional[ClockCorrelator] = None,
        columns: typing.Optional[typing.FrozenSet[str]] = None,
    ):
        if isinstance(base, TraceHandle):
            base = base.source()
        self.base = base
        self.header = base.header
        self.predicate = predicate
        self._correlator = correlator
        self._columns = columns
        self._mask: typing.Optional[typing.List[bool]] = None
        self._stats: typing.Optional[PruneStats] = None

    def _zone_correlator(self) -> typing.Optional[ClockCorrelator]:
        """The correlator used only to *compute* in-memory zone maps.

        Needed only for time pruning over non-file sources; a trace
        whose clocks cannot be fitted simply loses time pruning
        (zones without time bounds admit every window).
        """
        if self._correlator is not None:
            return self._correlator
        if not self.predicate.needs_time:
            return None
        handle = getattr(self.base, "handle", None)
        try:
            if handle is not None:
                self._correlator = handle.correlator()
            else:
                self._correlator = ClockCorrelator(self.base)
        except CorrelationError:
            return None
        return self._correlator

    def _compute_mask(self) -> typing.Optional[typing.List[bool]]:
        if self._mask is not None:
            return self._mask
        zones = self.base.zone_maps(self._zone_correlator())
        if zones is None:
            self._stats = PruneStats(indexed=False)
            return None
        self._mask = [self.predicate.admits(zone) for zone in zones]
        self._stats = PruneStats(
            total_chunks=len(self._mask),
            scanned_chunks=sum(self._mask),
            indexed=True,
        )
        return self._mask

    @property
    def stats(self) -> PruneStats:
        """Prune accounting (forces the mask computation)."""
        self._compute_mask()
        assert self._stats is not None
        if not self._stats.indexed and not self._stats.total_chunks:
            # Count what the full scan costs, for an honest note —
            # from the chunk index when the source has one (counting
            # via iter_chunks would decode the whole file).
            total = getattr(self.base, "n_chunks", None)
            if total is None:
                total = sum(1 for __ in self.base.iter_chunks())
            self._stats.total_chunks = total
            self._stats.scanned_chunks = total
        return self._stats

    def iter_chunks(self) -> typing.Iterator[ColumnChunk]:
        mask = self._compute_mask()
        if self._columns is not None:
            return self.base.iter_chunks_projected(mask, self._columns)
        if mask is None:
            return self.base.iter_chunks()
        return self.base.iter_chunks_selected(mask)

    @property
    def n_records(self) -> int:
        mask = self._compute_mask()
        if mask is None:
            return self.base.n_records
        zones = self.base.zone_maps(self._zone_correlator()) or []
        return sum(
            zone.n_records for zone, keep in zip(zones, mask) if keep
        )

    def scan_sync(self):
        return self.base.scan_sync()

    def close(self) -> None:
        """Close the wrapped source (a no-op for in-memory bases)."""
        closer = getattr(self.base, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "IndexedSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_sidecar(
    trace_path: str,
    source: typing.Union[EventSource, TraceHandle, None] = None,
) -> str:
    """Backfill a ``.pdtx`` sidecar index for an existing trace file.

    Reads the trace once (strictly — an index must never be derived
    from salvaged, possibly-misaligned chunks), computes exact zone
    maps, and writes them next to the file.  Traces whose clocks
    cannot be correlated still get an index — without time bounds, so
    SPE/event pruning works and time windows scan fully.  Returns the
    sidecar path.

    ``source`` lets a caller that already holds the trace open — a
    :class:`~repro.pdt.handle.TraceHandle` or any source over it —
    reuse that parse and clock fit instead of reopening the file; the
    caller keeps ownership (nothing is closed here).
    """
    if source is None:
        with open_trace(trace_path, strict=True) as opened:
            return _write_sidecar_from(trace_path, opened)
    if isinstance(source, TraceHandle):
        source = source.source()
    if source.salvage is not None:
        raise ValueError(
            "refusing to index a salvaged source: chunk alignment is "
            "not trustworthy"
        )
    return _write_sidecar_from(trace_path, source)


def _write_sidecar_from(trace_path: str, source: EventSource) -> str:
    handle = getattr(source, "handle", None)
    try:
        correlator: typing.Optional[ClockCorrelator] = (
            handle.correlator() if handle is not None else ClockCorrelator(source)
        )
    except CorrelationError:
        correlator = None
    zones = build_zone_maps(source.iter_chunks(), correlator)
    return write_sidecar(trace_path, zones, source.n_records)


def open_indexed(trace_path: str, strict: bool = True) -> TraceFileSource:
    """Open a trace file, attaching any matching sidecar index.

    Exactly :func:`repro.pdt.open_trace` plus a best-effort
    :meth:`~repro.pdt.reader.TraceFileSource.attach_sidecar` — v4
    files already carry their index, older files pick up a ``.pdtx``
    if one matches, and everything else reads fine without pruning.
    """
    source = open_trace(trace_path, strict=strict)
    if source.zone_maps() is None:
        source.attach_sidecar()
    return source
