"""The query pipeline: filter → project → group → reduce, streamed.

A :class:`Query` composes over any :class:`~repro.pdt.store.EventSource`:

    Query(source).where(t0=a, t1=b, spe=3, event="mfc_get")
                 .groupby("spe", "kind")
                 .agg(n="count", bytes=("sum", "size"))
                 .run()

Execution is chunk-at-a-time: the predicate is pushed down into the
source's zone maps through :class:`~repro.tq.source.IndexedSource`
(chunks a zone refuses are never read), then applied record-exactly to
the admitted chunks, then the survivors stream into the grouping and
reduction accumulators.  Memory is O(chunk + groups) — plus O(matched
values) only for the percentile reductions, which must see their whole
population.

Determinism rules, so results are byte-identical however the chunks
were served (indexed v4 file, sidecar, in-memory store, or full scan):

* record time is the *unclamped* :meth:`ClockCorrelator.place_value`
  (clamped placement depends on scan history, which pruning changes);
* the clock correlator is always fitted on the **unpruned** base
  source, never the pruned view;
* streamed records keep chunk order (pruning only removes chunks);
* grouped rows are sorted by their key tuple; percentiles use the
  nearest-rank method on sorted integer populations.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.pdt.correlate import ClockCorrelator
from repro.pdt.events import spec_for_code
from repro.pdt.handle import TraceHandle
from repro.pdt.store import ColumnChunk, EventSource
from repro.tq import kernels
from repro.tq.predicate import Predicate
from repro.tq.source import IndexedSource, PruneStats

#: Columns every record has, before payload fields.
_INTRINSIC = ("time", "side", "code", "core", "seq", "raw_ts", "kind", "spe")

#: The tuple layout :meth:`Query.records` yields without a projection.
DEFAULT_PROJECTION = ("time", "side", "core", "kind", "seq")

#: Reduction operators taking a value column.
_VALUE_OPS = ("sum", "min", "max", "mean", "p50", "p99")

_GROUP_KEYS = ("spe", "core", "side", "code", "kind", "bucket")

#: Group value for "spe" when the record is PPE-side (sortable int).
PPE_GROUP = -1

_FIELD_POS: typing.Dict[
    typing.Tuple[int, int], typing.Dict[str, int]
] = {}


def _field_pos(side: int, code: int) -> typing.Dict[str, int]:
    key = (side, code)
    pos = _FIELD_POS.get(key)
    if pos is None:
        spec = spec_for_code(side, code)
        pos = {name: i for i, name in enumerate(spec.fields)}
        _FIELD_POS[key] = pos
    return pos


def nearest_rank(sorted_values: typing.Sequence[int], q: int) -> int:
    """The q-th percentile by the nearest-rank method (exact, integer
    population in, member of the population out)."""
    if not sorted_values:
        raise ValueError("percentile of an empty population")
    rank = -(-q * len(sorted_values) // 100)  # ceil without floats
    return sorted_values[max(rank, 1) - 1]


class AggState:
    """One reduction's mergeable partial state.

    The full lifecycle is ``create`` → ``update`` per matching value →
    ``merge`` with sibling states from other shards (in shard order) →
    ``finalize``.  Merging is associative, and because ``finalize``
    sorts percentile populations and mean divides once at the end, a
    merged chain of shard states finalizes to exactly the value a
    single serial state would have produced — this is what lets
    :mod:`repro.par` split a scan by chunk ranges without changing any
    answer.
    """

    __slots__ = ("op", "column", "count", "total", "lo", "hi", "population")

    def __init__(self, op: str, column: typing.Optional[str]):
        self.op = op
        self.column = column
        self.count = 0
        self.total = 0
        self.lo: typing.Optional[int] = None
        self.hi: typing.Optional[int] = None
        self.population: typing.Optional[typing.List[int]] = (
            [] if op in ("p50", "p99") else None
        )

    @classmethod
    def create(cls, op: str, column: typing.Optional[str]) -> "AggState":
        return cls(op, column)

    def update(self, value: int) -> None:
        self.count += 1
        if self.op == "sum" or self.op == "mean":
            self.total += value
        elif self.op == "min":
            self.lo = value if self.lo is None else min(self.lo, value)
        elif self.op == "max":
            self.hi = value if self.hi is None else max(self.hi, value)
        elif self.population is not None:
            self.population.append(value)

    def update_many(self, values: typing.Sequence[int]) -> None:
        """Bulk :meth:`update` with a slice of matching values (kernel
        path).  ``sum``/``min``/``max`` run as C builtins over the
        slice; percentile populations extend wholesale.  Values must be
        Python ints so sums keep exact arbitrary precision."""
        k = len(values)
        if not k:
            return
        self.count += k
        if self.op == "sum" or self.op == "mean":
            self.total += sum(values)
        elif self.op == "min":
            lo = min(values)
            self.lo = lo if self.lo is None else min(self.lo, lo)
        elif self.op == "max":
            hi = max(values)
            self.hi = hi if self.hi is None else max(self.hi, hi)
        elif self.population is not None:
            self.population.extend(values)

    def merge(self, other: "AggState") -> "AggState":
        """Fold another shard's state into this one (self comes first
        in shard order; population order follows chunk order)."""
        if other.op != self.op or other.column != self.column:
            raise ValueError(
                f"cannot merge {other.op!r}/{other.column!r} state into "
                f"{self.op!r}/{self.column!r}"
            )
        self.count += other.count
        self.total += other.total
        if other.lo is not None:
            self.lo = other.lo if self.lo is None else min(self.lo, other.lo)
        if other.hi is not None:
            self.hi = other.hi if self.hi is None else max(self.hi, other.hi)
        if self.population is not None and other.population:
            self.population.extend(other.population)
        return self

    def finalize(self) -> typing.Union[int, float, None]:
        if self.op == "count":
            return self.count
        if self.count == 0:
            return None
        if self.op == "sum":
            return self.total
        if self.op == "mean":
            return self.total / self.count
        if self.op == "min":
            return self.lo
        if self.op == "max":
            return self.hi
        assert self.population is not None
        return nearest_rank(sorted(self.population), 50 if self.op == "p50" else 99)


class PartialAggregation:
    """The group-and-reduce state of one shard: a mapping from group
    key tuple to one :class:`AggState` per named reduction.

    Shards merge in shard (chunk-range) order; :meth:`finalize` then
    emits the same sorted rows — including the single all-empty row an
    ungrouped empty selection yields — that a serial run produces.
    """

    __slots__ = ("keys", "aggs", "groups")

    def __init__(
        self,
        keys: typing.Tuple[str, ...],
        aggs: typing.Tuple[typing.Tuple[str, str, typing.Optional[str]], ...],
    ):
        self.keys = tuple(keys)
        self.aggs = tuple(aggs)
        self.groups: typing.Dict[typing.Tuple, typing.List[AggState]] = {}

    @classmethod
    def create(
        cls,
        keys: typing.Tuple[str, ...],
        aggs: typing.Tuple[typing.Tuple[str, str, typing.Optional[str]], ...],
    ) -> "PartialAggregation":
        return cls(keys, aggs)

    def states_for(self, group: typing.Tuple) -> typing.List[AggState]:
        states = self.groups.get(group)
        if states is None:
            states = [AggState.create(op, column) for __, op, column in self.aggs]
            self.groups[group] = states
        return states

    def merge(self, other: "PartialAggregation") -> "PartialAggregation":
        """Fold a later shard's groups into this one.  The other
        partial is consumed: its states may be adopted wholesale."""
        if other.keys != self.keys or other.aggs != self.aggs:
            raise ValueError("cannot merge partials with different shapes")
        for group, states in other.groups.items():
            mine = self.groups.get(group)
            if mine is None:
                self.groups[group] = states
            else:
                for acc, theirs in zip(mine, states):
                    acc.merge(theirs)
        return self

    def finalize(self) -> typing.List[typing.Dict[str, typing.Any]]:
        rows = []
        for group in sorted(self.groups):
            out: typing.Dict[str, typing.Any] = dict(zip(self.keys, group))
            for (name, __, __c), acc in zip(self.aggs, self.groups[group]):
                out[name] = acc.finalize()
            rows.append(out)
        if not self.keys and not rows:
            # An empty selection still yields one all-empty row.
            rows.append(
                {
                    name: AggState.create(op, col).finalize()
                    for name, op, col in self.aggs
                }
            )
        return rows


@dataclasses.dataclass(frozen=True)
class QueryPlan:
    """The picklable shape of a query, detached from its source.

    Everything a worker process needs to re-instantiate the same query
    over its own chunk-range view: the predicate plus the projection /
    grouping / reduction spec.  Built by :meth:`Query.plan`, consumed
    by :meth:`Query.from_plan`.
    """

    predicate: Predicate
    projection: typing.Optional[typing.Tuple[str, ...]]
    group_keys: typing.Tuple[str, ...]
    time_bucket: typing.Optional[int]
    aggs: typing.Tuple[typing.Tuple[str, str, typing.Optional[str]], ...]

    def needs_time(self) -> bool:
        """Whether executing this plan places record times (same rule
        as :meth:`Query._needs_time`, detached from a source)."""
        if self.predicate.needs_time or "bucket" in self.group_keys:
            return True
        if self.projection is not None and "time" in self.projection:
            return True
        return any(column == "time" for __, __, column in self.aggs)

    def required_columns(
        self, terminal: str = "all"
    ) -> typing.FrozenSet[str]:
        """The chunk columns executing this plan can read — the
        projection-pushdown set handed to the reader so everything
        outside it is never decompressed or materialized.

        Always included: the predicate's own needs (``side``/``code``
        carry the kind machinery; ``core`` rides along only when an
        SPE clause or time placement reads it), plus ``raw_ts`` *and*
        ``core`` whenever times are placed — clock correlation is
        per-core.  ``terminal`` narrows the rest to what one terminal
        actually touches: ``"records"`` adds the projection's columns
        (the default projection when none was set), ``"fold"`` adds
        group keys and aggregation columns, ``"count"`` adds nothing,
        and ``"all"`` (the default) is the union — the conservative
        set for consumers that replay a plan through several
        terminals.
        """
        needed = set(self.predicate.required_columns())
        if self.needs_time():
            needed.update(("raw_ts", "core"))

        def column_needs(column: str) -> None:
            if column in ("time", "bucket"):
                needed.update(("raw_ts", "core"))  # placement is per-core
            elif column in ("core", "spe"):
                needed.add("core")
            elif column in ("seq", "raw_ts"):
                needed.add(column)
            elif column not in _INTRINSIC and column not in _GROUP_KEYS:
                needed.add("values")  # a payload field

        if terminal in ("records", "all"):
            projection = (
                self.projection
                if self.projection is not None
                else DEFAULT_PROJECTION
            )
            for column in projection:
                column_needs(column)
        if terminal in ("fold", "all"):
            for key in self.group_keys:
                column_needs(key)
            for __, __, column in self.aggs:
                if column is not None:
                    column_needs(column)
        return frozenset(needed)


class Query:
    """A composable, immutable-builder query over one event source.

    Builder methods (:meth:`where`, :meth:`where_field`,
    :meth:`project`, :meth:`groupby`, :meth:`agg`) each return a *new*
    query; terminal methods (:meth:`run`, :meth:`records`,
    :meth:`count`) execute it.  After a terminal method, :attr:`stats`
    carries the :class:`~repro.tq.source.PruneStats` for the scan.

    The source may also be a shared
    :class:`~repro.pdt.handle.TraceHandle`: the query then runs over a
    cheap :meth:`~repro.pdt.handle.TraceHandle.source` view and reuses
    the handle's one-time clock fit instead of fitting its own.
    """

    def __init__(
        self,
        source: typing.Union[EventSource, TraceHandle],
        correlator: typing.Optional[ClockCorrelator] = None,
    ):
        if isinstance(source, TraceHandle):
            source = source.source()
        self.source = source
        self.predicate = Predicate()
        self.stats: typing.Optional[PruneStats] = None
        self._correlator = correlator
        self._projection: typing.Optional[typing.Tuple[str, ...]] = None
        self._group_keys: typing.Tuple[str, ...] = ()
        self._time_bucket: typing.Optional[int] = None
        self._aggs: typing.Tuple[
            typing.Tuple[str, str, typing.Optional[str]], ...
        ] = ()

    # -- builders ------------------------------------------------------
    def _clone(self) -> "Query":
        fork = Query(self.source, self._correlator)
        fork.predicate = self.predicate
        fork._projection = self._projection
        fork._group_keys = self._group_keys
        fork._time_bucket = self._time_bucket
        fork._aggs = self._aggs
        return fork

    def where(
        self,
        t0: typing.Optional[int] = None,
        t1: typing.Optional[int] = None,
        spe: typing.Union[int, typing.Iterable[int], None] = None,
        side: typing.Optional[int] = None,
        event: typing.Union[int, str, typing.Iterable, None] = None,
    ) -> "Query":
        """Restrict to records matching every given clause (see
        :meth:`Predicate.refine`)."""
        fork = self._clone()
        fork.predicate = self.predicate.refine(
            t0=t0, t1=t1, spe=spe, side=side, event=event
        )
        return fork

    def where_field(
        self,
        name: str,
        lo: typing.Optional[int] = None,
        hi: typing.Optional[int] = None,
        eq: typing.Optional[int] = None,
    ) -> "Query":
        """Restrict on a payload field, e.g. ``where_field("size",
        lo=4096)``.  Records whose type lacks the field never match."""
        fork = self._clone()
        fork.predicate = self.predicate.refine_field(name, lo=lo, hi=hi, eq=eq)
        return fork

    def project(self, *columns: str) -> "Query":
        """Choose the tuple layout :meth:`records` yields.  Columns are
        the intrinsics (time, side, code, core, seq, raw_ts, kind, spe)
        or payload field names (``None`` when a record lacks one)."""
        fork = self._clone()
        fork._projection = tuple(columns)
        return fork

    def groupby(
        self, *keys: str, time_bucket: typing.Optional[int] = None
    ) -> "Query":
        """Group by intrinsic keys; ``"bucket"`` groups by
        ``time // time_bucket`` (requires ``time_bucket``)."""
        for key in keys:
            if key not in _GROUP_KEYS:
                raise ValueError(
                    f"unknown group key {key!r}; choose from "
                    f"{', '.join(_GROUP_KEYS)}"
                )
        if "bucket" in keys and not time_bucket:
            raise ValueError('groupby("bucket") requires time_bucket')
        if time_bucket is not None and time_bucket <= 0:
            raise ValueError(f"time_bucket must be positive, got {time_bucket}")
        fork = self._clone()
        fork._group_keys = tuple(keys)
        fork._time_bucket = time_bucket
        return fork

    def agg(self, **reductions) -> "Query":
        """Name the output reductions: ``n="count"`` or
        ``total=("sum", column)`` with ops sum/min/max/mean/p50/p99
        over an intrinsic column or payload field."""
        parsed = []
        for name, spec in reductions.items():
            if spec == "count":
                parsed.append((name, "count", None))
                continue
            try:
                op, column = spec
            except (TypeError, ValueError):
                raise ValueError(
                    f"aggregation {name!r} must be 'count' or an "
                    f"(op, column) pair, got {spec!r}"
                ) from None
            if op not in _VALUE_OPS:
                raise ValueError(
                    f"unknown aggregation op {op!r}; choose from count, "
                    f"{', '.join(_VALUE_OPS)}"
                )
            parsed.append((name, op, column))
        fork = self._clone()
        fork._aggs = tuple(parsed)
        return fork

    # -- plans ---------------------------------------------------------
    def plan(self) -> QueryPlan:
        """This query's shape as a picklable :class:`QueryPlan`."""
        return QueryPlan(
            predicate=self.predicate,
            projection=self._projection,
            group_keys=self._group_keys,
            time_bucket=self._time_bucket,
            aggs=self._aggs,
        )

    @classmethod
    def from_plan(
        cls,
        source: EventSource,
        plan: QueryPlan,
        correlator: typing.Optional[ClockCorrelator] = None,
    ) -> "Query":
        """Rebuild a query from a :class:`QueryPlan` over ``source``."""
        query = cls(source, correlator)
        query.predicate = plan.predicate
        query._projection = plan.projection
        query._group_keys = plan.group_keys
        query._time_bucket = plan.time_bucket
        query._aggs = plan.aggs
        return query

    # -- execution -----------------------------------------------------
    def _needs_time(self) -> bool:
        if self.predicate.needs_time or "bucket" in self._group_keys:
            return True
        if self._projection is not None and "time" in self._projection:
            return True
        return any(column == "time" for __, __, column in self._aggs)

    def _get_correlator(self) -> ClockCorrelator:
        if self._correlator is None:
            # Always fitted on the unpruned base: sync records must
            # never be lost to pruning.  A handle-backed source shares
            # its handle's one-time fit with every other consumer.
            handle = getattr(self.source, "handle", None)
            if handle is not None:
                self._correlator = handle.correlator()
            else:
                self._correlator = ClockCorrelator(self.source)
        return self._correlator

    def _selections(
        self,
        columns: typing.Optional[typing.FrozenSet[str]] = None,
    ) -> typing.Iterator[typing.Tuple["ColumnChunk", typing.Optional[object]]]:
        """Chunks of the pruned scan, each with its kernel
        :class:`~repro.tq.kernels.ChunkSelection` — or ``None`` when
        the chunk must take the scalar reference loop (escape hatch set
        or :class:`~repro.tq.kernels.KernelFallback`).  ``columns`` is
        the terminal's required-column set, pushed down to the reader
        so only those columns are decompressed and materialized."""
        predicate = self.predicate
        needs_time = self._needs_time()
        correlator = self._get_correlator() if needs_time else None
        pruned = IndexedSource(self.source, predicate, correlator, columns)
        self.stats = pruned.stats
        use_kernels = kernels.kernels_enabled()
        for chunk in pruned.iter_chunks():
            selection = (
                kernels.try_select(chunk, predicate, correlator, needs_time)
                if use_kernels
                else None
            )
            yield chunk, selection

    def _scan_chunk_scalar(
        self,
        chunk: "ColumnChunk",
        columns: typing.Optional[typing.FrozenSet[str]] = None,
    ) -> typing.Iterator[typing.Tuple]:
        """The per-record reference scan of one chunk — the behavior
        (and error) oracle the kernels must match.

        With ``columns``, tuple slots the terminal never reads are
        ``None`` instead of column accesses, so a lazily-decoded chunk
        is not forced to materialize columns outside the plan's
        required set (:meth:`ChunkSelection.rows` applies the identical
        rule, keeping both paths' tuples equal slot for slot)."""
        predicate = self.predicate
        needs_time = self._needs_time()
        correlator = self._correlator if needs_time else None
        check_fields = bool(predicate.fields)
        want_core = columns is None or "core" in columns
        want_seq = columns is None or "seq" in columns
        want_raw = columns is None or "raw_ts" in columns
        want_vals = columns is None or "values" in columns
        cores = chunk.core if want_core else None
        seqs = chunk.seq if want_seq else None
        vals = chunk.values if (want_vals or check_fields) else None
        off = chunk.val_off if vals is not None else None
        for i in range(len(chunk)):
            side, code = chunk.side[i], chunk.code[i]
            # The plan includes "core" whenever the predicate tests it
            # or times are placed, so 0 is never *read* — it only keeps
            # matches_static's signature whole.
            core = cores[i] if cores is not None else 0
            if not predicate.matches_static(side, code, core):
                continue
            time: typing.Optional[int] = None
            raw_ts: typing.Optional[int] = None
            if needs_time:
                raw_ts = chunk.raw_ts[i]
                time = correlator.place_value(side, core, raw_ts)
                if not predicate.matches_time(time):
                    continue
            elif want_raw:
                raw_ts = chunk.raw_ts[i]
            values: typing.Optional[typing.Sequence[int]] = None
            if vals is not None:
                values = vals[off[i] : off[i + 1]]
                if check_fields and not predicate.matches_fields(
                    side, code, values
                ):
                    continue
            yield (
                time, side, code,
                core if want_core else None,
                seqs[i] if want_seq else None,
                raw_ts if want_raw else None,
                values if want_vals else None,
            )

    def _scan(
        self,
    ) -> typing.Iterator[
        typing.Tuple[
            typing.Optional[int], int, int, int, int, int, typing.Sequence[int]
        ]
    ]:
        """Matching records as (time, side, code, core, seq, raw_ts,
        values) in chunk order; ``time`` is None for time-free queries
        (and slots outside the projection's required columns are None
        — the projector below never reads them)."""
        columns = self.plan().required_columns("records")
        for chunk, selection in self._selections(columns):
            if selection is None:
                yield from self._scan_chunk_scalar(chunk, columns)
            else:
                yield from selection.rows(columns)

    def _column_value(
        self, column, time, side, code, core, seq, raw_ts, values
    ):
        if column == "time":
            return time
        if column == "side":
            return side
        if column == "code":
            return code
        if column == "core":
            return core
        if column == "seq":
            return seq
        if column == "raw_ts":
            return raw_ts
        if column == "kind":
            return str(spec_for_code(side, code).kind)
        if column == "spe":
            return core if side else PPE_GROUP
        pos = _field_pos(side, code).get(column)
        return values[pos] if pos is not None else None

    def records(self) -> typing.Iterator[typing.Tuple]:
        """Stream matching records as projected tuples, in chunk
        (recording) order."""
        projection = self._projection or DEFAULT_PROJECTION
        query = self if self._projection else self.project(*projection)
        for row in query._scan():
            yield tuple(query._column_value(c, *row) for c in projection)
        self.stats = query.stats

    def count(self) -> int:
        """Number of matching records."""
        columns = self.plan().required_columns("count")
        total = 0
        for chunk, selection in self._selections(columns):
            if selection is None:
                total += sum(
                    1 for __ in self._scan_chunk_scalar(chunk, columns)
                )
            else:
                total += selection.count
        return total

    def _fold_chunk_scalar(
        self,
        chunk: "ColumnChunk",
        partial: PartialAggregation,
        columns: typing.Optional[typing.FrozenSet[str]] = None,
    ) -> None:
        """The per-record reference fold of one chunk."""
        keys = self._group_keys
        bucket = self._time_bucket
        for row in self._scan_chunk_scalar(chunk, columns):
            time = row[0]
            parts = []
            for key in keys:
                if key == "bucket":
                    assert bucket is not None and time is not None
                    parts.append(time // bucket)
                else:
                    parts.append(self._column_value(key, *row))
            group = tuple(parts)
            for acc in partial.states_for(group):
                if acc.op == "count":
                    acc.count += 1
                    continue
                value = self._column_value(acc.column, *row)
                if value is None or isinstance(value, str):
                    continue
                acc.update(value)

    def run_partial(self) -> PartialAggregation:
        """Execute group-and-reduce over this query's source but stop
        short of finalizing: the returned :class:`PartialAggregation`
        can be merged with the partials of other shards of the same
        trace before :meth:`PartialAggregation.finalize` emits rows."""
        aggs = self._aggs or (("n", "count", None),)
        partial = PartialAggregation.create(self._group_keys, aggs)
        columns = self.plan().required_columns("fold")
        for chunk, selection in self._selections(columns):
            if selection is None:
                self._fold_chunk_scalar(chunk, partial, columns)
            else:
                kernels.fold_chunk(
                    selection, partial, self._group_keys, self._time_bucket
                )
        return partial

    def run(self) -> typing.List[typing.Dict[str, typing.Any]]:
        """Execute group-and-reduce; rows sorted by group key.

        Without :meth:`groupby` the result is a single row; without
        :meth:`agg` the default reduction is ``n="count"``.
        """
        return self.run_partial().finalize()

    def follow(self, path: str, prune: bool = False):
        """Windowed/online execution of this query's plan over a trace
        file still being written: a :class:`~repro.live.follow
        .FollowQuery` whose polls yield results byte-identical to a
        batch run over the same sealed prefix, and whose sealed
        ``time_bucket`` rows never change as the file grows.

        Only the plan travels — this query's source is ignored, so
        ``Query(None).groupby("bucket", time_bucket=w).agg(...)``
        is a valid way to build one.
        """
        from repro.live.follow import FollowQuery

        return FollowQuery(self.plan(), path, prune=prune)
