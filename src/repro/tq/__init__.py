"""tq — the indexed trace query engine.

The Trace Analyzer's full-scan paths answer "what happened?"; this
package answers "what stalled SPE 3 between t0 and t1?" without paying
for the rest of the trace.  It layers three pieces over the
:class:`~repro.pdt.store.EventSource` spine:

* **zone maps** (:mod:`repro.pdt.index`) — per-chunk summaries (record
  count, corrected-time bounds, SPE bitmap, event-code bitmaps)
  written by the v4 trace format as an index trailer, computed on
  demand for in-memory stores, or backfilled for v1–v3 files by
  :func:`build_sidecar`;
* **pruned sources** (:class:`IndexedSource`) — an
  :class:`~repro.pdt.store.EventSource` that, given a
  :class:`Predicate`, seeks past every chunk the zone maps refuse, so
  selective scans cost O(selected chunks) instead of O(trace);
* **the pipeline** (:class:`Query`) — composable
  ``where → project → groupby → reduce`` executing chunk-at-a-time
  over any source, with the predicate pushed down into the zone maps
  when the source has them.

Results are byte-identical with and without an index: zones only skip
chunks that provably contain no match, every served record passes the
exact predicate, and aggregation order is deterministic.  See
``docs/querying.md``.
"""

from repro.tq.pipeline import (
    AggState,
    PPE_GROUP,
    PartialAggregation,
    Query,
    QueryPlan,
    nearest_rank,
)
from repro.tq.predicate import Predicate, events_matching
from repro.tq.source import (
    IndexedSource,
    PruneStats,
    build_sidecar,
    open_indexed,
)

__all__ = [
    "AggState",
    "IndexedSource",
    "PPE_GROUP",
    "PartialAggregation",
    "Predicate",
    "PruneStats",
    "Query",
    "QueryPlan",
    "build_sidecar",
    "events_matching",
    "nearest_rank",
    "open_indexed",
]
