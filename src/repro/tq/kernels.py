"""Columnar query kernels: predicate, placement and reduction without
a per-record interpreter loop.

:func:`select_chunk` evaluates a :class:`~repro.tq.predicate.Predicate`
against a whole :class:`~repro.pdt.store.ColumnChunk` with a handful of
vectorized passes — one boolean mask op per static clause (side / SPE
set / event LUT), one affine-fit application per (side, core) group
present in the chunk (never per record), and one strided gather per
field clause per record *type* — yielding a selection index array plus,
when needed, the chunk's placed times.  :func:`fold_chunk` then feeds
grouped aggregation states in bulk: selected rows are stably sorted by
their group key columns, each constant-key segment updates its
:class:`~repro.tq.pipeline.AggState` once via ``update_many``.

Exactness contract — the kernels must be *bit-identical* to the scalar
pipeline, which stays in :mod:`repro.tq.pipeline` as the reference:

* time placement reproduces ``ClockCorrelator.place_value`` digit for
  digit: the elapsed-tick residue is computed in uint64 (``(anchor -
  raw) mod 2**64 mod 2**32`` equals Python's ``mod 2**32``), the affine
  fit applies in float64 exactly like the scalar expression, and
  ``np.rint`` rounds half-even just like Python's ``round``;
* anything that *could* diverge — a PPE product or SPE fit leaving
  int64 range (salvaged traces carry arbitrary garbage timestamps), a
  record type outside the spec table, a missing clock fit — raises
  :class:`KernelFallback` before any result is produced, and the caller
  re-runs that chunk through the scalar loop (which also reproduces the
  scalar path's exceptions, e.g. ``CorrelationError``, at the exact
  record they would have occurred);
* Python ints flow out (``tolist`` at every boundary), so aggregation
  sums stay exact arbitrary-precision integers, never wrapping int64.

``REPRO_SCALAR_CODEC=1`` disables the kernels together with the batch
codec — one switch flips the whole stack to the scalar reference.
"""

from __future__ import annotations

import functools
import typing

import numpy as np

from repro.pdt.codec import CORE_DTYPE, SEQ_DTYPE, OFF_DTYPE, batch_enabled
from repro.pdt.events import EVENT_SPECS, SIDE_PPE, SIDE_SPE

if typing.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.pdt.correlate import ClockCorrelator
    from repro.pdt.store import ColumnChunk
    from repro.tq.predicate import Predicate

_INT64_MAX = 2**63 - 1
_INT64_MIN = -(2**63)
#: Placed times beyond this magnitude stay clear of the int64 edge; the
#: scalar path handles them with exact Python ints instead.
_TIME_LIMIT = 2**62

#: Group value for "spe" when the record is PPE-side; must equal
#: ``repro.tq.pipeline.PPE_GROUP``.
_PPE_GROUP = -1

#: tid = (side << 8 | code) lookups shared by every kernel.
_KNOWN_LUT = np.zeros(65536, dtype=bool)
_KIND_ID_LUT = np.zeros(65536, dtype=np.int64)
_KIND_NAMES: typing.List[str] = []
_kind_index: typing.Dict[str, int] = {}
for (_side, _code), _spec in EVENT_SPECS.items():
    _tid = (_side << 8) | _code
    _KNOWN_LUT[_tid] = True
    _name = str(_spec.kind)
    if _name not in _kind_index:
        _kind_index[_name] = len(_KIND_NAMES)
        _KIND_NAMES.append(_name)
    _KIND_ID_LUT[_tid] = _kind_index[_name]
del _side, _code, _spec, _tid, _name

#: tid -> field name -> position, for the field-clause gathers.
_FIELD_POS: typing.Dict[int, typing.Dict[str, int]] = {
    (spec.side << 8) | spec.code: {n: i for i, n in enumerate(spec.fields)}
    for spec in EVENT_SPECS.values()
}
#: tid -> payload width in values.
_NF: typing.Dict[int, int] = {
    (spec.side << 8) | spec.code: len(spec.fields)
    for spec in EVENT_SPECS.values()
}


class KernelFallback(Exception):
    """This chunk cannot be proven safe for the vectorized path; the
    caller must re-run it through the scalar reference loop."""


def kernels_enabled() -> bool:
    """Same switch as the batch codec: ``REPRO_SCALAR_CODEC=1`` turns
    the whole batch stack off."""
    return batch_enabled()


@functools.lru_cache(maxsize=64)
def _event_lut(events: typing.FrozenSet[typing.Tuple[int, int]]) -> np.ndarray:
    lut = np.zeros(65536, dtype=bool)
    for side, code in events:
        if 0 <= side <= 255 and 0 <= code <= 255:
            lut[(side << 8) | code] = True
    return lut


def _norm_lo(lo: typing.Optional[int]) -> typing.Tuple[typing.Optional[int], bool]:
    """Clamp a lower bound to int64 (values/times on the kernel path
    are int64): returns (bound or None, impossible)."""
    if lo is None or lo <= _INT64_MIN:
        return None, False
    if lo > _INT64_MAX:
        return None, True
    return lo, False


def _norm_hi(hi: typing.Optional[int]) -> typing.Tuple[typing.Optional[int], bool]:
    if hi is None or hi >= _INT64_MAX:
        return None, False
    if hi < _INT64_MIN:
        return None, True
    return hi, False


class ChunkSelection:
    """One chunk's vectorized scan result.

    ``sel`` is the int64 array of selected row indices (``None`` means
    *all* rows matched); ``times`` is the full-chunk placed-time column
    (``None`` for time-free queries; entries outside the static mask
    are unspecified and never read).  Column access is cached so a
    fold touching several aggregation columns builds each once.

    The payload arrays (``off``/``vals``) materialize late: the static
    selection mask is built from the cheap dictionary columns alone,
    and a lazily-decoded chunk's values section is only touched when a
    field clause filtered the chunk or a fold/projection actually
    reads a payload column.
    """

    __slots__ = ("chunk", "n", "sides", "codes", "_cores", "tids", "_off",
                 "_vals", "times", "sel", "_columns")

    def __init__(self, chunk, n, sides, codes, cores, tids, off, vals,
                 times, sel):
        self.chunk = chunk
        self.n = n
        self.sides = sides
        self.codes = codes
        self._cores = cores
        self.tids = tids
        self._off = off
        self._vals = vals
        self.times = times
        self.sel = sel
        self._columns: typing.Dict[str, typing.Optional[typing.Tuple]] = {}

    @property
    def cores(self) -> np.ndarray:
        if self._cores is None:
            self._cores = np.frombuffer(self.chunk.core, CORE_DTYPE)
        return self._cores

    @property
    def off(self) -> np.ndarray:
        if self._off is None:
            self._off = np.frombuffer(
                self.chunk.val_off, OFF_DTYPE
            ).astype(np.int64)[:-1]
        return self._off

    @property
    def vals(self) -> np.ndarray:
        if self._vals is None:
            self._vals = np.frombuffer(self.chunk.values, np.int64)
        return self._vals

    @property
    def count(self) -> int:
        return self.n if self.sel is None else len(self.sel)

    def indices(self) -> np.ndarray:
        if self.sel is None:
            return np.arange(self.n, dtype=np.int64)
        return self.sel

    def rows(
        self,
        columns: typing.Optional[typing.FrozenSet[str]] = None,
    ) -> typing.Iterator[typing.Tuple]:
        """Selected records as the pipeline's 7-tuples, in chunk order
        (Python scalars throughout, matching the scalar scan).  With
        ``columns``, slots outside the required set are ``None`` — the
        same rule as the scalar scan, so neither path materializes
        lazy columns the projection never reads."""
        chunk = self.chunk
        sides, codes = chunk.side, chunk.code
        want_core = columns is None or "core" in columns
        want_seq = columns is None or "seq" in columns
        want_raw = columns is None or "raw_ts" in columns
        want_vals = columns is None or "values" in columns
        cores = chunk.core if want_core else None
        seqs = chunk.seq if want_seq else None
        raws = chunk.raw_ts if want_raw else None
        if want_vals:
            vals, off = chunk.values, chunk.val_off
        times = self.times.tolist() if self.times is not None else None
        indices = range(self.n) if self.sel is None else self.sel.tolist()
        for i in indices:
            yield (
                None if times is None else times[i],
                sides[i], codes[i],
                cores[i] if want_core else None,
                seqs[i] if want_seq else None,
                raws[i] if want_raw else None,
                vals[off[i] : off[i + 1]] if want_vals else None,
            )

    def column(self, name: typing.Optional[str]):
        """Full-chunk column for aggregation: ``(array, valid_or_None)``
        or ``None`` when the column never yields an aggregable value
        ("kind" is a string; unknown names are None — both skipped by
        the scalar path too)."""
        try:
            return self._columns[name]
        except KeyError:
            pass
        col = self._build_column(name)
        self._columns[name] = col
        return col

    def _build_column(self, name):
        if name == "time":
            assert self.times is not None
            return self.times, None
        if name == "side":
            return self.sides.astype(np.int64), None
        if name == "code":
            return self.codes.astype(np.int64), None
        if name == "core":
            return self.cores.astype(np.int64), None
        if name == "spe":
            return (
                np.where(
                    self.sides == SIDE_SPE,
                    self.cores.astype(np.int64),
                    _PPE_GROUP,
                ),
                None,
            )
        if name == "seq":
            return np.frombuffer(self.chunk.seq, SEQ_DTYPE), None
        if name == "raw_ts":
            return np.frombuffer(self.chunk.raw_ts, np.uint64), None
        if name == "kind":
            return None  # strings are never aggregated
        # A payload field: per record type, one strided gather.
        col = np.zeros(self.n, dtype=np.int64)
        valid = np.zeros(self.n, dtype=bool)
        any_valid = False
        for tid in np.unique(self.tids).tolist():
            pos = _FIELD_POS[tid].get(name)
            if pos is None:
                continue
            idx = np.flatnonzero(self.tids == tid)
            col[idx] = self.vals[self.off[idx] + pos]
            valid[idx] = True
            any_valid = True
        if not any_valid:
            return None
        return col, valid


def _place_times(
    mask: np.ndarray,
    sides: np.ndarray,
    cores: np.ndarray,
    raws: np.ndarray,
    correlator: "ClockCorrelator",
) -> np.ndarray:
    """Placed times for every masked row, one vectorized pass per
    (side, core) group present — bit-identical to ``place_value``."""
    n = len(sides)
    times = np.zeros(n, dtype=np.int64)
    divider = correlator.divider
    ppe_rows = np.flatnonzero(mask & (sides == SIDE_PPE))
    if len(ppe_rows):
        raw = raws[ppe_rows]
        if int(raw.max()) * divider > _INT64_MAX:
            raise KernelFallback("PPE time outside int64")
        times[ppe_rows] = raw.astype(np.int64) * divider
    spe_mask = mask & (sides == SIDE_SPE)
    for core in np.unique(cores[spe_mask]).tolist():
        fit = correlator.fits.get(core)
        if fit is None:
            # The scalar replay raises CorrelationError at the exact
            # offending record.
            raise KernelFallback(f"no clock fit for SPE {core}")
        rows = np.flatnonzero(spe_mask & (cores == core))
        raw = raws[rows]
        # (anchor - raw) mod 2**64 mod 2**32 == (anchor - raw) mod 2**32,
        # then the centered residue, exactly like _elapsed_ticks.
        elapsed = ((np.uint64(fit.dec_anchor) - raw) % np.uint64(1 << 32)).astype(
            np.int64
        )
        elapsed[elapsed >= 1 << 31] -= 1 << 32
        placed = fit.intercept + fit.cycles_per_tick * elapsed.astype(np.float64)
        if not np.isfinite(placed).all():
            raise KernelFallback("non-finite SPE placement")
        rounded = np.rint(placed)
        if len(rounded) and np.abs(rounded).max() >= _TIME_LIMIT:
            raise KernelFallback("SPE time outside int64")
        times[rows] = rounded.astype(np.int64)
    return times


def _field_mask(
    n: int,
    tids: np.ndarray,
    off: np.ndarray,
    vals: np.ndarray,
    clauses,
) -> np.ndarray:
    """The rows satisfying every (name, lo, hi) payload clause, one
    gather per clause per record type.  Types lacking a clause's field
    never match (scalar ``matches_fields`` semantics)."""
    fmask = np.zeros(n, dtype=bool)
    for tid in np.unique(tids).tolist():
        rows = np.flatnonzero(tids == tid)
        positions = _FIELD_POS[tid]
        keep = np.ones(len(rows), dtype=bool)
        satisfiable = True
        for name, lo, hi in clauses:
            pos = positions.get(name)
            lo, lo_impossible = _norm_lo(lo)
            hi, hi_impossible = _norm_hi(hi)
            if pos is None or lo_impossible or hi_impossible:
                satisfiable = False
                break
            value = vals[off[rows] + pos]
            if lo is not None:
                keep &= value >= lo
            if hi is not None:
                keep &= value <= hi
        if satisfiable:
            fmask[rows] = keep
    return fmask


def select_chunk(
    chunk: "ColumnChunk",
    predicate: "Predicate",
    correlator: typing.Optional["ClockCorrelator"],
    needs_time: bool,
) -> ChunkSelection:
    """Vectorized predicate evaluation over one chunk.

    Raises :class:`KernelFallback` when the chunk cannot be proven safe
    (unknown record type, placement overflow risk, missing clock fit).

    Late materialization: the selection mask is built from the cheap
    columns (side/code/core, plus placed times when the predicate is
    windowed); the payload arrays are decoded up front only when a
    field clause needs them to *filter*, and otherwise stay behind the
    returned selection's lazy ``off``/``vals`` until a fold or
    projection reads a payload column.
    """
    n = len(chunk)
    sides = np.frombuffer(chunk.side, np.uint8)
    codes = np.frombuffer(chunk.code, np.uint8)
    # The core column is read only to test an SPE clause or to place
    # times per-core; otherwise it stays behind the selection's lazy
    # ``cores`` property (and, on a v6 chunk, stays compressed).
    cores = (
        np.frombuffer(chunk.core, CORE_DTYPE)
        if predicate.spes is not None or needs_time
        else None
    )
    tids = (sides.astype(np.int64) << 8) | codes
    if n and not _KNOWN_LUT[tids].all():
        raise KernelFallback("unknown record type in chunk")

    # Static clauses: one whole-chunk mask op each.
    mask = np.ones(n, dtype=bool)
    if predicate.side is not None:
        mask &= sides == predicate.side
    if predicate.spes is not None:
        mask &= sides == SIDE_SPE
        wanted = np.array(
            sorted(s for s in predicate.spes if 0 <= s <= 0xFFFF),
            dtype=CORE_DTYPE,
        )
        mask &= np.isin(cores, wanted)
    if predicate.events is not None:
        mask &= _event_lut(predicate.events)[tids]

    times = None
    if needs_time:
        raws = np.frombuffer(chunk.raw_ts, np.uint64)
        times = _place_times(mask, sides, cores, raws, correlator)
        if predicate.needs_time:
            lo, lo_impossible = _norm_lo(predicate.t_min)
            hi, hi_impossible = _norm_hi(predicate.t_max)
            if lo_impossible or hi_impossible:
                mask[:] = False
            else:
                if lo is not None:
                    mask &= times >= lo
                if hi is not None:
                    mask &= times <= hi

    off = vals = None
    if predicate.fields:
        off = np.frombuffer(chunk.val_off, OFF_DTYPE).astype(np.int64)[:-1]
        vals = np.frombuffer(chunk.values, np.int64)
        mask &= _field_mask(n, tids, off, vals, predicate.fields)

    sel = None if mask.all() else np.flatnonzero(mask)
    return ChunkSelection(chunk, n, sides, codes, cores, tids, off, vals,
                          times, sel)


def try_select(
    chunk: "ColumnChunk",
    predicate: "Predicate",
    correlator: typing.Optional["ClockCorrelator"],
    needs_time: bool,
) -> typing.Optional[ChunkSelection]:
    """:func:`select_chunk`, with fallback signalled as ``None``."""
    try:
        return select_chunk(chunk, predicate, correlator, needs_time)
    except KernelFallback:
        return None


def _key_arrays(
    selection: ChunkSelection,
    idx: np.ndarray,
    keys: typing.Tuple[str, ...],
    time_bucket: typing.Optional[int],
) -> typing.List[np.ndarray]:
    """One int64 array per group key over the selected rows.  "kind"
    groups by an interned kind-name id (two codes sharing a kind name
    land in the same group, exactly like grouping by the string)."""
    arrays = []
    for key in keys:
        if key == "bucket":
            assert time_bucket is not None and selection.times is not None
            arrays.append(selection.times[idx] // time_bucket)
        elif key == "kind":
            arrays.append(_KIND_ID_LUT[selection.tids[idx]])
        else:
            col, __ = selection.column(key)
            arrays.append(np.asarray(col)[idx].astype(np.int64))
    return arrays


def _key_value(key: str, raw: int):
    return _KIND_NAMES[raw] if key == "kind" else raw


def fold_chunk(
    selection: ChunkSelection,
    partial,
    keys: typing.Tuple[str, ...],
    time_bucket: typing.Optional[int],
) -> None:
    """Bulk group-and-reduce one chunk's selection into ``partial``.

    Selected rows are stably sorted by their key columns (``lexsort``),
    so each group's rows stay in chunk order — percentile populations
    accumulate in exactly the order the scalar loop appends them — and
    each constant-key segment feeds every :class:`AggState` once.
    """
    idx = selection.indices()
    if not len(idx):
        return
    if not keys:
        segments: typing.Iterable[typing.Tuple[typing.Tuple, np.ndarray]] = (
            ((), idx),
        )
    else:
        cols = _key_arrays(selection, idx, keys, time_bucket)
        # lexsort's last key is primary; numpy's sort is stable, so
        # ties keep ascending row order (= chunk order).
        order = np.lexsort(tuple(reversed(cols)))
        sorted_cols = [c[order] for c in cols]
        change = np.zeros(len(idx), dtype=bool)
        change[0] = True
        for c in sorted_cols:
            change[1:] |= c[1:] != c[:-1]
        bounds = np.flatnonzero(change)
        ends = np.append(bounds[1:], len(idx))
        segments = (
            (
                tuple(
                    _key_value(key, int(sorted_cols[j][s]))
                    for j, key in enumerate(keys)
                ),
                idx[order[s:e]],
            )
            for s, e in zip(bounds.tolist(), ends.tolist())
        )
    for group, rows in segments:
        for acc in partial.states_for(group):
            if acc.op == "count":
                acc.count += len(rows)
                continue
            col = selection.column(acc.column)
            if col is None:
                continue
            arr, valid = col
            picked = arr[rows]
            if valid is not None:
                keep = valid[rows]
                if not keep.all():
                    picked = picked[keep]
            acc.update_many(picked.tolist())
