"""Run harness: execute workloads traced or untraced, measure overhead."""

from __future__ import annotations

import dataclasses
import typing

from repro.cell.config import CellConfig
from repro.cell.machine import CellMachine
from repro.libspe.runtime import Runtime
from repro.pdt.config import TraceConfig
from repro.pdt.tracer import PdtHooks
from repro.pdt.writer import write_trace
from repro.workloads.base import RunResult, Workload, WorkloadError

DEFAULT_MAIN_MEMORY = 1 << 27  # 128 MB: room for data + trace regions


def run_workload(
    workload: Workload,
    trace_config: typing.Optional[TraceConfig] = None,
    cell_config: typing.Optional[CellConfig] = None,
    seed: typing.Optional[int] = None,
) -> RunResult:
    """Execute one workload from start to verification.

    ``trace_config=None`` runs uninstrumented; otherwise PDT is
    installed with that configuration.

    ``seed`` overrides the workload's own seed before ``setup`` runs,
    and is recorded on the :class:`RunResult` — the reproducibility
    contract corpus cells depend on: the same (workload parameters,
    trace config, seed) triple always produces the same trace.
    Workloads draw all randomness from ``self.seed`` via
    ``numpy.random.default_rng``; none touch the global RNG.
    """
    if seed is not None:
        workload.seed = seed
    config = cell_config or CellConfig(
        n_spes=workload.n_spes, main_memory_size=DEFAULT_MAIN_MEMORY
    )
    if config.n_spes < workload.n_spes:
        raise WorkloadError(
            f"{workload.name} needs {workload.n_spes} SPEs, machine has "
            f"{config.n_spes}"
        )
    machine = CellMachine(config)
    hooks = PdtHooks(trace_config) if trace_config is not None else None
    runtime = Runtime(machine, hooks=hooks)
    workload.setup(machine)

    def main():
        yield from workload.ppe_main(machine, runtime)
        runtime.finalize()

    machine.spawn(main(), name=f"{workload.name}-main")
    elapsed = machine.run()
    verified = workload.verify(machine)
    return RunResult(
        workload=workload,
        machine=machine,
        elapsed_cycles=elapsed,
        verified=verified,
        hooks=hooks,
        seed=seed if seed is not None else getattr(workload, "seed", None),
    )


def run_and_write_trace(
    workload: Workload,
    path: str,
    trace_config: typing.Optional[TraceConfig] = None,
    cell_config: typing.Optional[CellConfig] = None,
    seed: typing.Optional[int] = None,
) -> typing.Tuple[RunResult, int]:
    """Run a workload traced and stream its trace straight to ``path``.

    The trace goes from the recording sinks to the file without ever
    being assembled as record objects; returns (result, bytes written).
    """
    result = run_workload(
        workload, trace_config or TraceConfig(), cell_config, seed=seed
    )
    n_bytes = write_trace(result.trace_source(), path)
    return result, n_bytes


def run_stats_row(
    result: RunResult, trace_bytes: int = 0
) -> typing.Dict[str, typing.Union[str, int, bool, None]]:
    """One run's manifest row: the wall/overhead stats a corpus records
    per cell (:mod:`repro.corpus`), seed included."""
    row: typing.Dict[str, typing.Union[str, int, bool, None]] = {
        "workload": result.workload.name,
        "seed": result.seed,
        "elapsed_cycles": result.elapsed_cycles,
        "verified": result.verified,
        "trace_bytes": trace_bytes,
    }
    if result.hooks is not None:
        stats = result.hooks.stats
        row["records"] = stats.total_records
        row["flushes"] = stats.total_flushes
        row["flush_bytes"] = stats.total_flush_bytes
    return row


@dataclasses.dataclass
class OverheadResult:
    """Tracing overhead of one workload under one trace configuration."""

    workload_name: str
    untraced_cycles: int
    traced_cycles: int
    records: int
    trace_bytes: int
    flushes: int
    #: Seed both runs executed under (None: the workload's own default).
    seed: typing.Optional[int] = None

    @property
    def overhead_fraction(self) -> float:
        if self.untraced_cycles == 0:
            return 0.0
        return (self.traced_cycles - self.untraced_cycles) / self.untraced_cycles

    @property
    def overhead_percent(self) -> float:
        return self.overhead_fraction * 100.0

    def row(self) -> typing.Dict[str, typing.Union[str, int, float]]:
        return {
            "workload": self.workload_name,
            "seed": self.seed,
            "untraced_cycles": self.untraced_cycles,
            "traced_cycles": self.traced_cycles,
            "overhead_percent": round(self.overhead_percent, 2),
            "records": self.records,
            "trace_bytes": self.trace_bytes,
            "flushes": self.flushes,
        }


def measure_overhead(
    make_workload: typing.Callable[[], Workload],
    trace_config: typing.Optional[TraceConfig] = None,
    cell_config: typing.Optional[CellConfig] = None,
    seed: typing.Optional[int] = None,
) -> OverheadResult:
    """Run the same workload untraced then traced; compare runtimes.

    ``make_workload`` is a factory because each run needs a fresh
    workload instance (they hold per-run memory addresses).  ``seed``
    (when given) overrides both instances' seeds, so the comparison
    stays apples-to-apples under an externally-driven sweep.
    """
    trace_config = trace_config or TraceConfig()
    untraced = run_workload(make_workload(), None, cell_config, seed=seed)
    traced = run_workload(make_workload(), trace_config, cell_config, seed=seed)
    if not (untraced.verified and traced.verified):
        raise WorkloadError(
            f"{untraced.workload.name}: results failed verification "
            f"(untraced ok={untraced.verified}, traced ok={traced.verified})"
        )
    stats = traced.hooks.stats
    return OverheadResult(
        workload_name=untraced.workload.name,
        untraced_cycles=untraced.elapsed_cycles,
        traced_cycles=traced.elapsed_cycles,
        records=stats.total_records,
        trace_bytes=stats.total_flush_bytes,
        flushes=stats.total_flushes,
        seed=traced.seed,
    )
