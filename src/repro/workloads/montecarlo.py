"""Monte-Carlo pi estimation: the communication-free workload.

Each SPE fetches a tiny parameter block (one honest DMA), then spends
its whole life computing: a deterministic LCG draws points in the unit
square and counts hits inside the quarter circle.  Results return via
one mailbox word.  This is the tracing-overhead *floor* in the T2
table — almost no events, so almost no perturbation.
"""

from __future__ import annotations

import struct
import typing

from repro.cell.machine import CellMachine
from repro.libspe.image import SpeProgram
from repro.libspe.runtime import Runtime
from repro.workloads.base import Workload, WorkloadError

#: Cycle cost charged per sample (a few fma + compare on the SPU).
CYCLES_PER_SAMPLE = 12

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


def lcg_hits(seed: int, samples: int) -> int:
    """Host-side reference of the SPE kernel's exact arithmetic."""
    state = seed & _LCG_MASK
    hits = 0
    for __ in range(samples):
        state = (state * _LCG_A + _LCG_C) & _LCG_MASK
        x = (state >> 40) / float(1 << 24)
        state = (state * _LCG_A + _LCG_C) & _LCG_MASK
        y = (state >> 40) / float(1 << 24)
        if x * x + y * y <= 1.0:
            hits += 1
    return hits


class MonteCarloWorkload(Workload):
    """Estimate pi with ``samples_per_spe`` points on each SPE."""

    name = "montecarlo"

    def __init__(self, samples_per_spe: int = 20_000, n_spes: int = 4, seed: int = 99):
        super().__init__(n_spes=n_spes)
        if samples_per_spe < 1:
            raise WorkloadError("samples_per_spe must be positive")
        self.samples_per_spe = samples_per_spe
        self.seed = seed
        self.ea_params = 0
        self.pi_estimate: typing.Optional[float] = None
        self.total_hits = 0

    # ------------------------------------------------------------------
    def setup(self, machine: CellMachine) -> None:
        # One 16-byte parameter block per SPE: (seed u64, samples u64).
        self.ea_params = machine.memory.allocate(16 * self.n_spes)
        for spe_id in range(self.n_spes):
            blob = struct.pack("<QQ", self.seed + spe_id, self.samples_per_spe)
            machine.memory.write(self.ea_params + 16 * spe_id, blob)

    def verify(self, machine: CellMachine) -> bool:
        if self.pi_estimate is None:
            return False
        expected_hits = sum(
            lcg_hits(self.seed + spe_id, self.samples_per_spe)
            for spe_id in range(self.n_spes)
        )
        return self.total_hits == expected_hits

    # ------------------------------------------------------------------
    def _kernel_program(self, spe_id: int) -> SpeProgram:
        workload = self

        def entry(spu, argp, envp):
            ls_params = spu.ls_alloc(16)
            yield from spu.mfc_get(ls_params, argp, 16, tag=0)
            yield from spu.mfc_wait_tag(1 << 0)
            seed, samples = struct.unpack("<QQ", spu.ls_read(ls_params, 16))
            yield from spu.compute(samples * CYCLES_PER_SAMPLE)
            hits = lcg_hits(seed, samples)
            yield from spu.write_out_mbox(hits)
            return 0

        return SpeProgram("montecarlo-kernel", entry, ls_code_bytes=8 * 1024)

    # ------------------------------------------------------------------
    def ppe_main(self, machine: CellMachine, runtime: Runtime) -> typing.Generator:
        contexts = []
        for spe_id in range(self.n_spes):
            ctx = yield from runtime.context_create()
            yield from ctx.load(self._kernel_program(spe_id))
            contexts.append(ctx)
        procs = [
            ctx.run_async(argp=self.ea_params + 16 * i)
            for i, ctx in enumerate(contexts)
        ]
        self.total_hits = 0
        for ctx in contexts:
            self.total_hits += yield from ctx.out_mbox_read()
        for proc in procs:
            yield proc
        total_samples = self.samples_per_spe * self.n_spes
        self.pi_estimate = 4.0 * self.total_hits / total_samples
