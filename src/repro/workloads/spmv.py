"""Sparse matrix-vector multiply: the irregular-access workload.

y = A @ x with A in CSR form.  The dense vector x is small enough to
live in local store, so each SPE GETs x once, then streams its share
of row blocks — values and column indices arrive as parallel streams —
and PUTs its slice of y.  Compute cost is 2 flops per stored nonzero.

Irregularity matters for the trace: unlike matmul's fixed-size tiles,
row blocks carry different nonzero counts, so per-block DMA sizes and
compute times vary — the timeline shows jitter rather than a steady
beat, and the load balance depends on the nonzero distribution, not
the row count.  Verified against ``scipy.sparse``.
"""

from __future__ import annotations

import typing

import numpy as np
from scipy import sparse

from repro.cell.machine import CellMachine
from repro.libspe.image import SpeProgram
from repro.libspe.runtime import Runtime
from repro.workloads.base import Workload, WorkloadError
from repro.workloads.matmul import FLOPS_PER_CYCLE


def _pad16(nbytes: int) -> int:
    return (nbytes + 15) & ~15


class SpmvWorkload(Workload):
    """y = A @ x over ``n`` rows with ``density`` expected fill."""

    name = "spmv"

    def __init__(
        self,
        n: int = 2048,
        density: float = 0.02,
        rows_per_block: int = 256,
        n_spes: int = 4,
        seed: int = 23,
    ):
        super().__init__(n_spes=n_spes)
        if n % rows_per_block:
            raise WorkloadError(
                f"n={n} not divisible by rows_per_block={rows_per_block}"
            )
        if not 0.0 < density <= 0.5:
            raise WorkloadError(f"density must be in (0, 0.5], got {density}")
        if n * 4 > 64 * 1024:
            raise WorkloadError(
                f"x of {n} floats does not fit the LS budget (<= 16384 floats)"
            )
        self.n = n
        self.density = density
        self.rows_per_block = rows_per_block
        self.seed = seed
        self.matrix: typing.Optional[sparse.csr_matrix] = None
        self._x: typing.Optional[np.ndarray] = None
        self.ea_x = self.ea_y = 0
        #: Per block: (values_ea, cols_ea, rowptr_ea, nnz).
        self._block_meta: typing.List[typing.Tuple[int, int, int, int]] = []

    # ------------------------------------------------------------------
    def setup(self, machine: CellMachine) -> None:
        rng = np.random.default_rng(self.seed)
        self.matrix = sparse.random(
            self.n, self.n, density=self.density, format="csr",
            dtype=np.float32, random_state=rng,
        )
        self._x = rng.standard_normal(self.n).astype(np.float32)
        self.ea_x = machine.memory.allocate(self.n * 4)
        machine.memory.write(self.ea_x, self._x.tobytes())
        self.ea_y = machine.memory.allocate(self.n * 4)

        self._block_meta = []
        for start in range(0, self.n, self.rows_per_block):
            block = self.matrix[start : start + self.rows_per_block]
            values = block.data.astype(np.float32)
            cols = block.indices.astype(np.uint32)
            rowptr = block.indptr.astype(np.uint32)
            ea_values = machine.memory.allocate(_pad16(max(values.nbytes, 16)))
            ea_cols = machine.memory.allocate(_pad16(max(cols.nbytes, 16)))
            ea_rowptr = machine.memory.allocate(_pad16(rowptr.nbytes))
            machine.memory.write(ea_values, values.tobytes())
            machine.memory.write(ea_cols, cols.tobytes())
            machine.memory.write(ea_rowptr, rowptr.tobytes())
            self._block_meta.append((ea_values, ea_cols, ea_rowptr, len(values)))

    def verify(self, machine: CellMachine) -> bool:
        blob = machine.memory.read(self.ea_y, self.n * 4)
        y = np.frombuffer(blob, dtype=np.float32)
        reference = (self.matrix @ self._x).astype(np.float32)
        return bool(np.allclose(y, reference, rtol=1e-3, atol=1e-4))

    # ------------------------------------------------------------------
    def block_assignments(self) -> typing.List[typing.List[int]]:
        """Block indices per SPE, round-robin."""
        n_blocks = self.n // self.rows_per_block
        assignments = [[] for __ in range(self.n_spes)]
        for block in range(n_blocks):
            assignments[block % self.n_spes].append(block)
        return assignments

    def _kernel_program(self, blocks: typing.List[int]) -> SpeProgram:
        workload = self
        rows = self.rows_per_block

        def entry(spu, argp, envp):
            ls_x = spu.ls_alloc(workload.n * 4)
            # Streamed per block, sized for the densest block.
            max_nnz = max((workload._block_meta[b][3] for b in blocks), default=1)
            ls_values = spu.ls_alloc(_pad16(max(max_nnz * 4, 16)))
            ls_cols = spu.ls_alloc(_pad16(max(max_nnz * 4, 16)))
            ls_rowptr = spu.ls_alloc(_pad16((rows + 1) * 4))
            ls_y = spu.ls_alloc(rows * 4)

            def get_large(ls, ea, nbytes, tag):
                """GET of any size as a train of <=16 KB commands."""
                offset = 0
                while offset < nbytes:
                    piece = min(16 * 1024, nbytes - offset)
                    yield from spu.mfc_get(ls + offset, ea + offset, piece, tag=tag)
                    offset += piece

            # x arrives once, possibly in multiple <=16 KB pieces.
            yield from get_large(ls_x, workload.ea_x, workload.n * 4, tag=3)
            yield from spu.mfc_wait_tag(1 << 3)
            x = np.frombuffer(spu.ls_read(ls_x, workload.n * 4), dtype=np.float32)

            for block in blocks:
                ea_values, ea_cols, ea_rowptr, nnz = workload._block_meta[block]
                nnz_bytes = _pad16(max(nnz * 4, 16))
                yield from get_large(ls_values, ea_values, nnz_bytes, tag=0)
                yield from get_large(ls_cols, ea_cols, nnz_bytes, tag=0)
                yield from spu.mfc_get(
                    ls_rowptr, ea_rowptr, _pad16((rows + 1) * 4), tag=0
                )
                yield from spu.mfc_wait_tag(1 << 0)
                values = np.frombuffer(
                    spu.ls_read(ls_values, nnz * 4), dtype=np.float32
                ) if nnz else np.zeros(0, dtype=np.float32)
                cols = np.frombuffer(
                    spu.ls_read(ls_cols, nnz * 4), dtype=np.uint32
                ) if nnz else np.zeros(0, dtype=np.uint32)
                rowptr = np.frombuffer(
                    spu.ls_read(ls_rowptr, (rows + 1) * 4), dtype=np.uint32
                )
                y = np.zeros(rows, dtype=np.float32)
                for row in range(rows):
                    lo, hi = int(rowptr[row]), int(rowptr[row + 1])
                    if hi > lo:
                        y[row] = np.dot(values[lo:hi], x[cols[lo:hi]])
                yield from spu.compute(max(2 * nnz // FLOPS_PER_CYCLE, 1))
                spu.ls_write(ls_y, y.tobytes())
                yield from spu.mfc_put(
                    ls_y,
                    workload.ea_y + block * rows * 4,
                    rows * 4,
                    tag=1,
                )
                yield from spu.mfc_wait_tag(1 << 1)
            yield from spu.write_out_mbox(len(blocks))
            return 0

        return SpeProgram("spmv-kernel", entry, ls_code_bytes=20 * 1024)

    # ------------------------------------------------------------------
    def ppe_main(self, machine: CellMachine, runtime: Runtime) -> typing.Generator:
        assignments = self.block_assignments()
        contexts = []
        for spe_id in range(self.n_spes):
            ctx = yield from runtime.context_create()
            yield from ctx.load(self._kernel_program(assignments[spe_id]))
            contexts.append(ctx)
        procs = [ctx.run_async() for ctx in contexts]
        done = 0
        for ctx in contexts:
            done += yield from ctx.out_mbox_read()
        for proc in procs:
            yield proc
        expected = self.n // self.rows_per_block
        if done != expected:
            raise WorkloadError(f"spmv lost blocks: {done}/{expected}")
