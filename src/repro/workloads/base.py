"""Workload abstraction.

A workload knows how to set up its data in main memory, produce the
PPE main program that orchestrates the SPEs, and verify the results
afterwards.  The same workload object runs traced or untraced, so
overhead comparisons are apples-to-apples.
"""

from __future__ import annotations

import typing

from repro.cell.machine import CellMachine
from repro.libspe.runtime import Runtime


class WorkloadError(Exception):
    """A workload failed to set up or produced wrong results."""


class Workload:
    """Base class: subclass and implement ``setup``, ``ppe_main``,
    ``verify``.

    ``n_spes`` is how many SPEs the workload wants; the harness builds
    the machine accordingly.
    """

    name = "workload"

    def __init__(self, n_spes: int = 4):
        if n_spes < 1:
            raise WorkloadError(f"n_spes must be >= 1, got {n_spes}")
        self.n_spes = n_spes

    def setup(self, machine: CellMachine) -> None:
        """Allocate and initialize main-memory data."""
        raise NotImplementedError

    def ppe_main(self, machine: CellMachine, runtime: Runtime) -> typing.Generator:
        """The PPE control program (a kernel-process generator)."""
        raise NotImplementedError

    def verify(self, machine: CellMachine) -> bool:
        """Check output in main memory against a host reference."""
        raise NotImplementedError

    def describe(self) -> str:
        """One line for reports/benchmark tables."""
        return f"{self.name} on {self.n_spes} SPE(s)"


class RunResult:
    """Outcome of one workload run."""

    def __init__(
        self,
        workload: Workload,
        machine: CellMachine,
        elapsed_cycles: int,
        verified: bool,
        hooks: typing.Optional[object] = None,
        seed: typing.Optional[int] = None,
    ):
        self.workload = workload
        self.machine = machine
        self.elapsed_cycles = elapsed_cycles
        self.verified = verified
        #: The PdtHooks instance when the run was traced, else None.
        self.hooks = hooks
        #: The seed the run executed under (None for workloads with no
        #: randomness, e.g. mandelbrot and the microbenchmarks).
        self.seed = seed

    @property
    def traced(self) -> bool:
        return self.hooks is not None

    @property
    def elapsed_us(self) -> float:
        return self.machine.cycles_to_us(self.elapsed_cycles)

    def trace(self):
        """The PDT trace of a traced run."""
        if self.hooks is None:
            raise WorkloadError("run was not traced")
        return self.hooks.to_trace()

    def trace_source(self):
        """The recorded streams as an EventSource, without copying.

        The streaming counterpart of :meth:`trace`: feed it to
        ``write_trace`` or ``repro.ta.analyze`` directly."""
        if self.hooks is None:
            raise WorkloadError("run was not traced")
        return self.hooks.event_source()

    def __repr__(self) -> str:
        mode = "traced" if self.traced else "untraced"
        status = "ok" if self.verified else "WRONG RESULTS"
        return (
            f"RunResult({self.workload.name}, {mode}, "
            f"{self.elapsed_cycles} cycles, {status})"
        )
