"""Blocked dense matrix multiply on SPEs.

C = A x B with square float32 matrices, tiled into T x T tiles
(default 64, so one tile is a 16 KB transfer — exactly the MFC's
single-command limit).  Tiles are fetched with list DMA (one element
per matrix row slice, as real code must for row-major matrices),
multiplied with an explicit flop-derived cycle cost, and written back
with list DMA.

Variants used by the paper-style use cases:

* ``double_buffered=False`` — fetch, wait, compute (F2's "before").
* ``double_buffered=True`` — prefetch the next k-step's tiles while
  computing the current one (F2's "after").
* ``skew=s`` — SPE 0 receives ``s`` shares of tiles for every share
  the others get (F3's imbalanced schedule); ``skew=1`` is balanced.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.cell.machine import CellMachine
from repro.libspe.image import SpeProgram
from repro.libspe.runtime import Runtime
from repro.workloads.base import Workload, WorkloadError

#: SPU single-precision throughput used for the cycle model: 8 flops
#: per cycle (4-wide FMA pipeline).
FLOPS_PER_CYCLE = 8


class MatmulWorkload(Workload):
    """C = A x B distributed over SPEs by C-tiles."""

    name = "matmul"

    def __init__(
        self,
        n: int = 256,
        tile: int = 64,
        n_spes: int = 4,
        double_buffered: bool = False,
        skew: int = 1,
        seed: int = 7,
    ):
        super().__init__(n_spes=n_spes)
        if n % tile:
            raise WorkloadError(f"matrix size {n} not divisible by tile {tile}")
        if tile * tile * 4 > 16 * 1024:
            raise WorkloadError(f"tile {tile} exceeds the 16 KB DMA limit")
        if skew < 1:
            raise WorkloadError(f"skew must be >= 1, got {skew}")
        self.n = n
        self.tile = tile
        self.double_buffered = double_buffered
        self.skew = skew
        self.seed = seed
        self.name = "matmul-db" if double_buffered else "matmul"
        if skew > 1:
            self.name += f"-skew{skew}"
        self.ea_a = self.ea_b = self.ea_c = 0
        self._a: typing.Optional[np.ndarray] = None
        self._b: typing.Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # setup / verify
    # ------------------------------------------------------------------
    def setup(self, machine: CellMachine) -> None:
        rng = np.random.default_rng(self.seed)
        self._a = rng.standard_normal((self.n, self.n), dtype=np.float32)
        self._b = rng.standard_normal((self.n, self.n), dtype=np.float32)
        nbytes = self.n * self.n * 4
        self.ea_a = machine.memory.allocate(nbytes)
        self.ea_b = machine.memory.allocate(nbytes)
        self.ea_c = machine.memory.allocate(nbytes)
        machine.memory.write(self.ea_a, self._a.tobytes())
        machine.memory.write(self.ea_b, self._b.tobytes())

    def verify(self, machine: CellMachine) -> bool:
        blob = machine.memory.read(self.ea_c, self.n * self.n * 4)
        c = np.frombuffer(blob, dtype=np.float32).reshape(self.n, self.n)
        return bool(np.allclose(c, self._a @ self._b, rtol=1e-3, atol=1e-3))

    # ------------------------------------------------------------------
    # work distribution
    # ------------------------------------------------------------------
    def tile_assignments(self) -> typing.List[typing.List[typing.Tuple[int, int]]]:
        """C-tile (i, j) lists per SPE, balanced or skewed.

        With ``skew=s``, SPE 0 takes s consecutive tiles for every one
        tile each other SPE takes, round-robin.
        """
        tiles_per_dim = self.n // self.tile
        tiles = [
            (i, j) for i in range(tiles_per_dim) for j in range(tiles_per_dim)
        ]
        shares = [self.skew] + [1] * (self.n_spes - 1)
        assignments: typing.List[typing.List[typing.Tuple[int, int]]] = [
            [] for __ in range(self.n_spes)
        ]
        cursor = 0
        while cursor < len(tiles):
            for spe_id, share in enumerate(shares):
                take = tiles[cursor : cursor + share]
                assignments[spe_id].extend(take)
                cursor += len(take)
                if cursor >= len(tiles):
                    break
        return assignments

    # ------------------------------------------------------------------
    # the SPE kernel
    # ------------------------------------------------------------------
    def _tile_list(self, base_ea: int, ti: int, tj: int):
        """List-DMA elements covering tile (ti, tj) of a row-major matrix."""
        t = self.tile
        row_bytes = t * 4
        return [
            (base_ea + ((ti * t + row) * self.n + tj * t) * 4, row_bytes)
            for row in range(t)
        ]

    def _kernel_program(self, jobs: typing.List[typing.Tuple[int, int]]) -> SpeProgram:
        t = self.tile
        tile_bytes = t * t * 4
        k_steps = self.n // t
        compute_cycles = 2 * t * t * t // FLOPS_PER_CYCLE
        workload = self

        def multiply_from_ls(spu, ls_a, ls_b, acc):
            a = np.frombuffer(spu.ls_read(ls_a, tile_bytes), dtype=np.float32)
            b = np.frombuffer(spu.ls_read(ls_b, tile_bytes), dtype=np.float32)
            acc += a.reshape(t, t) @ b.reshape(t, t)

        def entry(spu, argp, envp):
            if workload.double_buffered:
                ls_a = [spu.ls_alloc(tile_bytes), spu.ls_alloc(tile_bytes)]
                ls_b = [spu.ls_alloc(tile_bytes), spu.ls_alloc(tile_bytes)]
            else:
                ls_a = [spu.ls_alloc(tile_bytes)]
                ls_b = [spu.ls_alloc(tile_bytes)]
            ls_c = spu.ls_alloc(tile_bytes)
            steps = [
                (ti, tj, k) for (ti, tj) in jobs for k in range(k_steps)
            ]

            def fetch(step_index, buffer_index):
                ti, tj, k = steps[step_index]
                tag = buffer_index
                yield from spu.mfc_getl(
                    ls_a[buffer_index], workload._tile_list(workload.ea_a, ti, k), tag
                )
                yield from spu.mfc_getl(
                    ls_b[buffer_index], workload._tile_list(workload.ea_b, k, tj), tag
                )

            acc = np.zeros((t, t), dtype=np.float32)
            if workload.double_buffered and steps:
                yield from fetch(0, 0)
            for index, (ti, tj, k) in enumerate(steps):
                if workload.double_buffered:
                    buffer_index = index % 2
                    if index + 1 < len(steps):
                        yield from fetch(index + 1, 1 - buffer_index)
                    yield from spu.mfc_wait_tag(1 << buffer_index)
                else:
                    buffer_index = 0
                    yield from fetch(index, 0)
                    yield from spu.mfc_wait_tag(1 << 0)
                yield from spu.compute(compute_cycles)
                multiply_from_ls(spu, ls_a[buffer_index], ls_b[buffer_index], acc)
                if k == k_steps - 1:
                    spu.ls_write(ls_c, acc.tobytes())
                    yield from spu.mfc_putl(
                        ls_c, workload._tile_list(workload.ea_c, ti, tj), 2
                    )
                    yield from spu.mfc_wait_tag(1 << 2)
                    acc = np.zeros((t, t), dtype=np.float32)
            yield from spu.write_out_mbox(len(jobs))
            return 0

        return SpeProgram(f"{self.name}-kernel", entry, ls_code_bytes=24 * 1024)

    # ------------------------------------------------------------------
    # PPE orchestration
    # ------------------------------------------------------------------
    def ppe_main(self, machine: CellMachine, runtime: Runtime) -> typing.Generator:
        assignments = self.tile_assignments()
        contexts = []
        for spe_id in range(self.n_spes):
            ctx = yield from runtime.context_create()
            yield from ctx.load(self._kernel_program(assignments[spe_id]))
            contexts.append(ctx)
        procs = [ctx.run_async() for ctx in contexts]
        completed_tiles = 0
        for ctx in contexts:
            completed_tiles += yield from ctx.out_mbox_read()
        for proc in procs:
            yield proc
        expected = (self.n // self.tile) ** 2
        if completed_tiles != expected:
            raise WorkloadError(
                f"matmul lost tiles: {completed_tiles}/{expected} completed"
            )
