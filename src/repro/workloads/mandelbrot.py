"""Mandelbrot rendering: naturally imbalanced work, two schedulers.

The Cell SDK's fractal demos are the textbook case for dynamic work
distribution: rows near the set cost orders of magnitude more
iterations than rows in the escape region, so a static partition that
looks fair by row count is wildly unfair by cycles.

Two schedulers, selected by ``schedule``:

* ``"static"`` — contiguous row ranges per SPE (the naive split).
* ``"dynamic"`` — a shared atomic work queue: SPEs claim the next row
  with the GETLLAR/PUTLLC fetch-and-increment from
  :mod:`repro.libspe.sync`, so fast finishers keep pulling work.

Each row's cycle cost is its *actual* total iteration count (computed
with NumPy) divided by the SPU's flops/cycle — the imbalance in the
simulation is the imbalance of the fractal.  Output is the u16
iteration image, verified pixel-exact against the host reference.
"""

from __future__ import annotations

import struct
import typing

import numpy as np

from repro.cell.atomic import LOCK_LINE
from repro.cell.machine import CellMachine
from repro.libspe.image import SpeProgram
from repro.libspe.runtime import Runtime
from repro.libspe.sync import atomic_increment_bounded
from repro.workloads.base import Workload, WorkloadError
from repro.workloads.matmul import FLOPS_PER_CYCLE

#: Flop estimate per Mandelbrot iteration (complex mul + add + compare).
FLOPS_PER_ITERATION = 10


def render_row(
    row: int, width: int, height: int, max_iterations: int
) -> np.ndarray:
    """Host-exact iteration counts for one image row (u16)."""
    x = np.linspace(-2.0, 0.6, width)
    y = -1.2 + 2.4 * row / max(height - 1, 1)
    c = x + 1j * y
    z = np.zeros_like(c)
    counts = np.full(width, max_iterations, dtype=np.uint16)
    alive = np.ones(width, dtype=bool)
    for iteration in range(max_iterations):
        z[alive] = z[alive] * z[alive] + c[alive]
        escaped = alive & (np.abs(z) > 2.0)
        counts[escaped] = iteration
        alive &= ~escaped
        if not alive.any():
            break
    return counts


class MandelbrotWorkload(Workload):
    """Render a ``width`` x ``height`` iteration image on SPEs."""

    name = "mandelbrot"

    def __init__(
        self,
        width: int = 256,
        height: int = 64,
        max_iterations: int = 64,
        n_spes: int = 4,
        schedule: str = "dynamic",
    ):
        super().__init__(n_spes=n_spes)
        if schedule not in ("static", "dynamic"):
            raise WorkloadError(f"schedule must be static|dynamic, got {schedule!r}")
        if (width * 2) % 16:
            raise WorkloadError("width*2 bytes must be 16-aligned (width % 8 == 0)")
        self.width = width
        self.height = height
        self.max_iterations = max_iterations
        self.schedule = schedule
        self.name = f"mandelbrot-{schedule}"
        self.row_bytes = width * 2
        self.ea_image = 0
        self.ea_queue = 0
        self.rows_done_by: typing.Dict[int, int] = {}

    # ------------------------------------------------------------------
    def setup(self, machine: CellMachine) -> None:
        self.ea_image = machine.memory.allocate(self.height * self.row_bytes)
        self.ea_queue = machine.memory.allocate(LOCK_LINE, align=LOCK_LINE)
        machine.memory.write(self.ea_queue, bytes(LOCK_LINE))

    def verify(self, machine: CellMachine) -> bool:
        blob = machine.memory.read(self.ea_image, self.height * self.row_bytes)
        image = np.frombuffer(blob, dtype=np.uint16).reshape(self.height, self.width)
        for row in range(self.height):
            reference = render_row(
                row, self.width, self.height, self.max_iterations
            )
            if not np.array_equal(image[row], reference):
                return False
        return True

    # ------------------------------------------------------------------
    def row_cost_cycles(self, counts: np.ndarray) -> int:
        """Cycle cost of a rendered row from its iteration counts."""
        total_iterations = int(counts.astype(np.int64).sum())
        return max(total_iterations * FLOPS_PER_ITERATION // FLOPS_PER_CYCLE, 1)

    def static_ranges(self) -> typing.List[typing.Tuple[int, int]]:
        """Contiguous [start, end) row ranges per SPE."""
        per_spe = (self.height + self.n_spes - 1) // self.n_spes
        return [
            (min(i * per_spe, self.height), min((i + 1) * per_spe, self.height))
            for i in range(self.n_spes)
        ]

    def _kernel_program(self, spe_id: int) -> SpeProgram:
        workload = self
        static_range = self.static_ranges()[spe_id]

        def render_and_store(spu, ls_row, row):
            counts = render_row(
                row, workload.width, workload.height, workload.max_iterations
            )
            spu.ls_write(ls_row, counts.tobytes())
            return workload.row_cost_cycles(counts)

        def process_row(spu, ls_row, row):
            cost = render_and_store(spu, ls_row, row)
            yield from spu.compute(cost)
            yield from spu.mfc_put(
                ls_row,
                workload.ea_image + row * workload.row_bytes,
                workload.row_bytes,
                tag=0,
            )
            yield from spu.mfc_wait_tag(1 << 0)

        def entry(spu, argp, envp):
            ls_row = spu.ls_alloc(workload.row_bytes)
            done = 0
            if workload.schedule == "static":
                for row in range(*static_range):
                    yield from process_row(spu, ls_row, row)
                    done += 1
            else:
                scratch = spu.ls_alloc(LOCK_LINE, align=LOCK_LINE)
                while True:
                    row = yield from atomic_increment_bounded(
                        spu, scratch, workload.ea_queue, 0, workload.height
                    )
                    if row >= workload.height:
                        break
                    yield from process_row(spu, ls_row, row)
                    done += 1
            yield from spu.write_out_mbox(done)
            return 0

        return SpeProgram(self.name, entry, ls_code_bytes=12 * 1024)

    # ------------------------------------------------------------------
    def ppe_main(self, machine: CellMachine, runtime: Runtime) -> typing.Generator:
        contexts = []
        for spe_id in range(self.n_spes):
            ctx = yield from runtime.context_create()
            yield from ctx.load(self._kernel_program(spe_id))
            contexts.append(ctx)
        procs = [ctx.run_async() for ctx in contexts]
        total = 0
        for ctx in contexts:
            done = yield from ctx.out_mbox_read()
            self.rows_done_by[ctx.spe_id] = done
            total += done
        for proc in procs:
            yield proc
        if total != self.height:
            raise WorkloadError(
                f"mandelbrot rendered {total}/{self.height} rows"
            )
