"""Parallel histogram: streaming reduction with an atomic merge.

Each SPE streams its share of a byte array through local store,
accumulating a private histogram, then merges it into the shared
result in main storage with GETLLAR/PUTLLC read-modify-write loops —
one lock line (32 u32 bins) at a time, contending with every other
SPE finishing around the same moment.  The canonical "reduction on
Cell" pattern: private accumulation for bandwidth, atomics only at
the tail.

``merge="ppe"`` is the contrast: SPEs PUT their private histograms to
per-SPE staging areas and the PPE folds them — no atomics, but the
merge serializes on the control core.
"""

from __future__ import annotations

import struct
import typing

import numpy as np

from repro.cell.atomic import LOCK_LINE
from repro.cell.machine import CellMachine
from repro.libspe.image import SpeProgram
from repro.libspe.runtime import Runtime
from repro.workloads.base import Workload, WorkloadError

#: Cycle cost per sample binned (load, shift, increment on the SPU).
CYCLES_PER_SAMPLE = 2
BINS_PER_LINE = LOCK_LINE // 4


class HistogramWorkload(Workload):
    """Histogram ``samples`` bytes into ``bins`` shared u32 counters."""

    name = "histogram"

    def __init__(
        self,
        samples: int = 64 * 1024,
        bins: int = 64,
        block_bytes: int = 4096,
        n_spes: int = 4,
        merge: str = "atomic",
        seed: int = 17,
    ):
        super().__init__(n_spes=n_spes)
        if merge not in ("atomic", "ppe"):
            raise WorkloadError(f"merge must be atomic|ppe, got {merge!r}")
        if bins % BINS_PER_LINE or not 0 < bins <= 256:
            raise WorkloadError(
                f"bins must be a multiple of {BINS_PER_LINE} up to 256, got {bins}"
            )
        if samples % block_bytes:
            raise WorkloadError("samples must be a multiple of block_bytes")
        if (samples // block_bytes) % n_spes:
            raise WorkloadError("blocks must divide evenly across SPEs")
        self.samples = samples
        self.bins = bins
        self.block_bytes = block_bytes
        self.merge = merge
        self.seed = seed
        self.name = f"histogram-{merge}"
        self.ea_input = 0
        self.ea_result = 0
        self.ea_staging = 0
        self._input: typing.Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def setup(self, machine: CellMachine) -> None:
        rng = np.random.default_rng(self.seed)
        self._input = rng.integers(0, self.bins, self.samples, dtype=np.uint8)
        self.ea_input = machine.memory.allocate(self.samples)
        machine.memory.write(self.ea_input, self._input.tobytes())
        self.ea_result = machine.memory.allocate(self.bins * 4, align=LOCK_LINE)
        machine.memory.write(self.ea_result, bytes(self.bins * 4))
        self.ea_staging = machine.memory.allocate(self.n_spes * self.bins * 4)

    def verify(self, machine: CellMachine) -> bool:
        blob = machine.memory.read(self.ea_result, self.bins * 4)
        result = np.frombuffer(blob, dtype=np.uint32)
        reference = np.bincount(self._input, minlength=self.bins).astype(np.uint32)
        return bool(np.array_equal(result, reference))

    # ------------------------------------------------------------------
    def _kernel_program(self, spe_id: int) -> SpeProgram:
        workload = self
        blocks_total = self.samples // self.block_bytes
        blocks_per_spe = blocks_total // self.n_spes
        first_block = spe_id * blocks_per_spe

        def entry(spu, argp, envp):
            ls_block = spu.ls_alloc(workload.block_bytes)
            ls_line = spu.ls_alloc(LOCK_LINE, align=LOCK_LINE)
            private = np.zeros(workload.bins, dtype=np.uint32)

            # Phase 1: stream blocks, accumulate privately.
            for i in range(blocks_per_spe):
                src = workload.ea_input + (first_block + i) * workload.block_bytes
                yield from spu.mfc_get(ls_block, src, workload.block_bytes, tag=0)
                yield from spu.mfc_wait_tag(1 << 0)
                data = np.frombuffer(
                    spu.ls_read(ls_block, workload.block_bytes), dtype=np.uint8
                )
                private += np.bincount(
                    data, minlength=workload.bins
                ).astype(np.uint32)
                yield from spu.compute(workload.block_bytes * CYCLES_PER_SAMPLE)

            # Phase 2: merge.
            if workload.merge == "atomic":
                yield from merge_atomic(spu, ls_line, private)
            else:
                yield from merge_via_staging(spu, ls_line, private)
            yield from spu.write_out_mbox(int(private.sum()) & 0xFFFF_FFFF)
            return 0

        def merge_atomic(spu, ls_line, private):
            for line_index in range(workload.bins // BINS_PER_LINE):
                line_ea = workload.ea_result + line_index * LOCK_LINE
                chunk = private[
                    line_index * BINS_PER_LINE : (line_index + 1) * BINS_PER_LINE
                ]
                retries = 0
                while True:
                    yield from spu.mfc_getllar(ls_line, line_ea)
                    current = np.frombuffer(
                        spu.ls_read(ls_line, LOCK_LINE), dtype=np.uint32
                    )
                    spu.ls_write(ls_line, (current + chunk).tobytes())
                    success = yield from spu.mfc_putllc(ls_line, line_ea)
                    if success:
                        break
                    retries += 1
                    yield from spu.compute(10 + (spu.spe_id * 13 + retries * 29) % 97)

        def merge_via_staging(spu, ls_line, private):
            # PUT the private histogram to this SPE's staging slot; the
            # PPE folds the slots after every SPE reports done.
            ls_hist = spu.ls_alloc(workload.bins * 4, align=16)
            spu.ls_write(ls_hist, private.tobytes())
            yield from spu.mfc_put(
                ls_hist,
                workload.ea_staging + spu.spe_id * workload.bins * 4,
                workload.bins * 4,
                tag=1,
            )
            yield from spu.mfc_wait_tag(1 << 1)

        return SpeProgram(self.name, entry, ls_code_bytes=12 * 1024)

    # ------------------------------------------------------------------
    def ppe_main(self, machine: CellMachine, runtime: Runtime) -> typing.Generator:
        contexts = []
        for spe_id in range(self.n_spes):
            ctx = yield from runtime.context_create()
            yield from ctx.load(self._kernel_program(spe_id))
            contexts.append(ctx)
        procs = [ctx.run_async() for ctx in contexts]
        binned = 0
        for ctx in contexts:
            binned += yield from ctx.out_mbox_read()
        for proc in procs:
            yield proc
        if binned != self.samples:
            raise WorkloadError(f"histogram binned {binned}/{self.samples} samples")
        if self.merge == "ppe":
            # Fold the staging slots on the PPE (host arithmetic, one
            # MMIO-scale charge per slot read).
            total = np.zeros(self.bins, dtype=np.uint32)
            for spe_id in range(self.n_spes):
                yield from machine.ppe.mmio_access()
                blob = machine.memory.read(
                    self.ea_staging + spe_id * self.bins * 4, self.bins * 4
                )
                total += np.frombuffer(blob, dtype=np.uint32)
            machine.memory.write(self.ea_result, total.tobytes())
