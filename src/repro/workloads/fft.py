"""Batched radix-2 FFT on SPEs.

A batch of independent complex64 transforms (the Cell SDK's FFT demos
work on batches: audio frames, OFDM symbols...).  The batch is split
evenly across SPEs; each SPE streams its transforms through local
store: GET frame, compute (5 N log2 N flops at 8 flops/cycle — the
classic split-radix estimate), PUT spectrum.  Double buffering is
optional and on by default — this workload is the well-tuned citizen
in the overhead experiments.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.cell.machine import CellMachine
from repro.libspe.image import SpeProgram
from repro.libspe.runtime import Runtime
from repro.workloads.base import Workload, WorkloadError
from repro.workloads.matmul import FLOPS_PER_CYCLE


class FftWorkload(Workload):
    """Batch FFT: ``batch`` transforms of ``points`` complex samples."""

    name = "fft"

    def __init__(
        self,
        points: int = 1024,
        batch: int = 32,
        n_spes: int = 4,
        double_buffered: bool = True,
        seed: int = 11,
    ):
        super().__init__(n_spes=n_spes)
        if points & (points - 1) or points < 2:
            raise WorkloadError(f"points must be a power of two >= 2, got {points}")
        frame_bytes = points * 8  # complex64
        if frame_bytes > 16 * 1024:
            raise WorkloadError(
                f"{points}-point frames ({frame_bytes} B) exceed the 16 KB DMA limit"
            )
        self.points = points
        self.batch = batch
        self.double_buffered = double_buffered
        self.seed = seed
        self.name = "fft" if double_buffered else "fft-sb"
        self.frame_bytes = frame_bytes
        self.compute_cycles = int(
            5 * points * np.log2(points) / FLOPS_PER_CYCLE
        )
        self.ea_in = self.ea_out = 0
        self._input: typing.Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def setup(self, machine: CellMachine) -> None:
        rng = np.random.default_rng(self.seed)
        frames = rng.standard_normal((self.batch, self.points)).astype(np.complex64)
        frames += 1j * rng.standard_normal((self.batch, self.points)).astype(np.float32)
        self._input = frames
        nbytes = self.batch * self.frame_bytes
        self.ea_in = machine.memory.allocate(nbytes)
        self.ea_out = machine.memory.allocate(nbytes)
        machine.memory.write(self.ea_in, frames.tobytes())

    def verify(self, machine: CellMachine) -> bool:
        blob = machine.memory.read(self.ea_out, self.batch * self.frame_bytes)
        out = np.frombuffer(blob, dtype=np.complex64).reshape(self.batch, self.points)
        reference = np.fft.fft(self._input, axis=1).astype(np.complex64)
        return bool(np.allclose(out, reference, rtol=1e-2, atol=1e-2))

    # ------------------------------------------------------------------
    def frame_assignments(self) -> typing.List[typing.List[int]]:
        """Frame indices per SPE (contiguous, near-even split)."""
        assignments = [[] for __ in range(self.n_spes)]
        for frame in range(self.batch):
            assignments[frame % self.n_spes].append(frame)
        return assignments

    def _kernel_program(self, frames: typing.List[int]) -> SpeProgram:
        workload = self

        def transform_in_ls(spu, ls_in, ls_out):
            data = np.frombuffer(
                spu.ls_read(ls_in, workload.frame_bytes), dtype=np.complex64
            )
            spectrum = np.fft.fft(data).astype(np.complex64)
            spu.ls_write(ls_out, spectrum.tobytes())

        def entry(spu, argp, envp):
            n_buffers = 2 if workload.double_buffered else 1
            ls_in = [spu.ls_alloc(workload.frame_bytes) for __ in range(n_buffers)]
            ls_out = [spu.ls_alloc(workload.frame_bytes) for __ in range(n_buffers)]

            def fetch(index, buffer_index):
                frame = frames[index]
                yield from spu.mfc_get(
                    ls_in[buffer_index],
                    workload.ea_in + frame * workload.frame_bytes,
                    workload.frame_bytes,
                    tag=buffer_index,
                )

            if workload.double_buffered and frames:
                yield from fetch(0, 0)
            for index, frame in enumerate(frames):
                if workload.double_buffered:
                    buffer_index = index % 2
                    if index + 1 < len(frames):
                        yield from fetch(index + 1, 1 - buffer_index)
                    yield from spu.mfc_wait_tag(1 << buffer_index)
                else:
                    buffer_index = 0
                    yield from fetch(index, 0)
                    yield from spu.mfc_wait_tag(1 << 0)
                yield from spu.compute(workload.compute_cycles)
                transform_in_ls(spu, ls_in[buffer_index], ls_out[buffer_index])
                # Fenced PUT on the same tag: don't overtake a previous
                # writeback from this buffer.
                yield from spu.mfc_putf(
                    ls_out[buffer_index],
                    workload.ea_out + frame * workload.frame_bytes,
                    workload.frame_bytes,
                    tag=buffer_index,
                )
            # Drain all writebacks before reporting done.
            mask = (1 << n_buffers) - 1
            yield from spu.mfc_wait_tag(mask)
            yield from spu.write_out_mbox(len(frames))
            return 0

        return SpeProgram(f"{self.name}-kernel", entry, ls_code_bytes=20 * 1024)

    # ------------------------------------------------------------------
    def ppe_main(self, machine: CellMachine, runtime: Runtime) -> typing.Generator:
        assignments = self.frame_assignments()
        contexts = []
        for spe_id in range(self.n_spes):
            ctx = yield from runtime.context_create()
            yield from ctx.load(self._kernel_program(assignments[spe_id]))
            contexts.append(ctx)
        procs = [ctx.run_async() for ctx in contexts]
        frames_done = 0
        for ctx in contexts:
            frames_done += yield from ctx.out_mbox_read()
        for proc in procs:
            yield proc
        if frames_done != self.batch:
            raise WorkloadError(f"fft lost frames: {frames_done}/{self.batch}")
