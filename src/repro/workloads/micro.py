"""Microbenchmarks for per-event tracing cost (the T1 table).

Each instance hammers exactly one traced operation ``repetitions``
times with a fixed compute filler between operations.  Comparing
traced vs untraced runtime and dividing by the number of records gives
the effective cost of one recorded event — including second-order
effects (flush DMAs, queue pressure), which a static per-record figure
would miss.
"""

from __future__ import annotations

import typing

from repro.cell.machine import CellMachine
from repro.libspe.image import SpeProgram
from repro.libspe.runtime import Runtime
from repro.workloads.base import Workload, WorkloadError

#: op name -> number of SPE trace records one repetition produces
#: under the all-events configuration.
RECORDS_PER_OP = {
    "marker": 1,  # user_marker
    "mailbox": 2,  # write_mbox begin+end
    "dma": 3,  # mfc_get + wait begin+end
    "signal": 1,  # signal_send
    "compute": 0,  # control: nothing traced
}


class EventCostMicrobench(Workload):
    """Repeat one traced operation many times on one SPE."""

    name = "micro"

    def __init__(self, op: str = "marker", repetitions: int = 200,
                 filler_cycles: int = 500):
        super().__init__(n_spes=1)
        if op not in RECORDS_PER_OP:
            raise WorkloadError(
                f"unknown op {op!r} (choose from {sorted(RECORDS_PER_OP)})"
            )
        self.op = op
        self.repetitions = repetitions
        self.filler_cycles = filler_cycles
        self.name = f"micro-{op}"
        self.ea_scratch = 0
        self._ran = False

    # ------------------------------------------------------------------
    def setup(self, machine: CellMachine) -> None:
        self.ea_scratch = machine.memory.allocate(256)

    def verify(self, machine: CellMachine) -> bool:
        return self._ran

    @property
    def records_per_repetition(self) -> int:
        return RECORDS_PER_OP[self.op]

    # ------------------------------------------------------------------
    def _kernel_program(self) -> SpeProgram:
        workload = self

        def entry(spu, argp, envp):
            ls = spu.ls_alloc(256)
            for i in range(workload.repetitions):
                yield from spu.compute(workload.filler_cycles)
                if workload.op == "marker":
                    yield from spu.marker(i)
                elif workload.op == "mailbox":
                    yield from spu.write_out_mbox(i & 0xFFFF_FFFF)
                elif workload.op == "dma":
                    yield from spu.mfc_get(ls, argp, 128, tag=0)
                    yield from spu.mfc_wait_tag(1 << 0)
                elif workload.op == "signal":
                    yield from spu.signal_spe(0, 1 << (i % 32), which=2)
                # "compute": filler only
            yield from spu.write_out_mbox(0xD0E)
            return 0

        return SpeProgram(self.name, entry, ls_code_bytes=4 * 1024)

    # ------------------------------------------------------------------
    def ppe_main(self, machine: CellMachine, runtime: Runtime) -> typing.Generator:
        ctx = yield from runtime.context_create()
        yield from ctx.load(self._kernel_program())
        proc = ctx.run_async(argp=self.ea_scratch)
        if self.op == "mailbox":
            # Drain the SPE's progress mailbox so it never backpressures.
            for __ in range(self.repetitions):
                yield from ctx.out_mbox_read()
        done = yield from ctx.out_mbox_read()
        if done != 0xD0E:
            raise WorkloadError(f"microbench ended with {done:#x}")
        yield proc
        self._ran = True
