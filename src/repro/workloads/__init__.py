"""Workloads: the applications the paper's use cases profile.

Four families, mirroring the kinds of SDK codes the paper analyzes:

* :mod:`repro.workloads.matmul` — blocked dense matrix multiply; the
  DMA-bound workload with single/double-buffered and balanced/skewed
  variants (use cases F2 and F3).
* :mod:`repro.workloads.fft` — batched radix-2 FFT; compute-heavy with
  regular streaming transfers.
* :mod:`repro.workloads.streaming` — an SPE pipeline chained by
  signals/mailboxes; the synchronization-bound workload (F1, F5).
* :mod:`repro.workloads.montecarlo` — embarrassingly parallel
  estimation with almost no communication; the tracing-overhead floor.
* :mod:`repro.workloads.micro` — microbenchmarks measuring per-event
  tracing cost (T1).

Every workload verifies its own numerical output against a NumPy
reference, so the simulator's data movement is checked end-to-end on
every run.  :mod:`repro.workloads.harness` runs a workload traced or
untraced and measures tracing overhead.
"""

from repro.workloads.base import RunResult, Workload, WorkloadError
from repro.workloads.fft import FftWorkload
from repro.workloads.harness import (
    OverheadResult,
    measure_overhead,
    run_and_write_trace,
    run_stats_row,
    run_workload,
)
from repro.workloads.histogram import HistogramWorkload
from repro.workloads.mandelbrot import MandelbrotWorkload
from repro.workloads.matmul import MatmulWorkload
from repro.workloads.micro import EventCostMicrobench
from repro.workloads.montecarlo import MonteCarloWorkload
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.streaming import StreamingPipelineWorkload

__all__ = [
    "EventCostMicrobench",
    "FftWorkload",
    "HistogramWorkload",
    "MandelbrotWorkload",
    "MatmulWorkload",
    "MonteCarloWorkload",
    "OverheadResult",
    "SpmvWorkload",
    "RunResult",
    "StreamingPipelineWorkload",
    "Workload",
    "WorkloadError",
    "measure_overhead",
    "run_and_write_trace",
    "run_stats_row",
    "run_workload",
]
