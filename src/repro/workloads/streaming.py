"""An SPE pipeline: the synchronization-bound workload.

``stages`` SPEs form a chain.  Stage *i* reads block *b* from region
*i*, transforms it (adds 1.0f to every sample plus a configurable
cycle cost), writes it to region *i+1*, then raises a *data credit*
signal on stage *i+1* and a *space credit* signal on stage *i-1*.
Space credits bound how far a producer may run ahead (``depth``
blocks), so a slow stage backpressures the whole chain — precisely the
behaviour one reads off the TA timeline in the paper's pipeline use
case (and the F1/F5 experiments here).

Signals use rotating bits (block index mod 32) in OR mode; since at
most ``depth`` (< 32) credits are ever outstanding, bits never
collide, and consumers count set bits to bank multiple credits from
one read — the standard Cell signalling idiom.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.cell.machine import CellMachine
from repro.libspe.image import SpeProgram
from repro.libspe.runtime import Runtime
from repro.workloads.base import Workload, WorkloadError

DATA_SIGNAL = 1
SPACE_SIGNAL = 2

#: Fixed LS address of the inter-stage inbox in LS-to-LS mode: a slot
#: ring near the top of local store, far above anything the bump
#: allocator (program image + trace buffer + block buffer) reaches.
INBOX_LS_ADDR = 192 * 1024


class StreamingPipelineWorkload(Workload):
    """A ``stages``-deep pipeline over ``blocks`` data blocks."""

    name = "streaming"

    def __init__(
        self,
        stages: int = 4,
        blocks: int = 16,
        block_bytes: int = 4096,
        compute_per_block: int = 5000,
        depth: int = 4,
        seed: int = 3,
        bottleneck_stage: typing.Optional[int] = None,
        bottleneck_factor: int = 8,
        via_ls: bool = False,
        spe_order: typing.Optional[typing.Sequence[int]] = None,
    ):
        super().__init__(n_spes=stages)
        if block_bytes % 16:
            raise WorkloadError(f"block_bytes must be 16-aligned, got {block_bytes}")
        if not 1 <= depth < 32:
            raise WorkloadError(f"depth must be 1..31, got {depth}")
        if bottleneck_stage is not None and not 0 <= bottleneck_stage < stages:
            raise WorkloadError(
                f"bottleneck_stage {bottleneck_stage} outside 0..{stages - 1}"
            )
        self.stages = stages
        self.blocks = blocks
        self.block_bytes = block_bytes
        self.compute_per_block = compute_per_block
        self.depth = depth
        self.seed = seed
        self.bottleneck_stage = bottleneck_stage
        self.bottleneck_factor = bottleneck_factor
        #: LS-to-LS mode: stages hand blocks directly into the next
        #: stage's local-store inbox (SPE-to-SPE DMA over the LS
        #: windows), skipping main storage between stages.
        self.via_ls = via_ls
        #: Physical SPE running each stage (stage i -> spe_order[i]).
        #: Default identity: adjacent stages sit on adjacent ring units.
        if spe_order is not None:
            if sorted(spe_order) != list(range(stages)):
                raise WorkloadError(
                    f"spe_order must be a permutation of 0..{stages - 1}, "
                    f"got {list(spe_order)}"
                )
        self.spe_order = list(spe_order) if spe_order is not None else list(range(stages))
        if via_ls:
            if depth * block_bytes > 256 * 1024 - INBOX_LS_ADDR:
                raise WorkloadError(
                    f"inbox ring ({depth} x {block_bytes} B) does not fit "
                    "above the LS inbox base"
                )
            self.name = "streaming-ls"
        if bottleneck_stage is not None:
            self.name = f"streaming-bottleneck{bottleneck_stage}"
        self.regions: typing.List[int] = []
        self._input: typing.Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def setup(self, machine: CellMachine) -> None:
        rng = np.random.default_rng(self.seed)
        samples = self.blocks * self.block_bytes // 4
        self._input = rng.standard_normal(samples).astype(np.float32)
        region_bytes = self.blocks * self.block_bytes
        self.regions = [
            machine.memory.allocate(region_bytes) for __ in range(self.stages + 1)
        ]
        machine.memory.write(self.regions[0], self._input.tobytes())

    def verify(self, machine: CellMachine) -> bool:
        blob = machine.memory.read(
            self.regions[-1], self.blocks * self.block_bytes
        )
        output = np.frombuffer(blob, dtype=np.float32)
        return bool(np.allclose(output, self._input + self.stages, rtol=1e-5))

    def stage_compute_cycles(self, stage: int) -> int:
        """Cycle cost per block for one stage.

        Uniform unless ``bottleneck_stage`` designates one stage to be
        ``bottleneck_factor`` times slower (the bottleneck-hunting use
        case); subclasses may override for arbitrary shapes.
        """
        if stage == self.bottleneck_stage:
            return self.compute_per_block * self.bottleneck_factor
        return self.compute_per_block

    # ------------------------------------------------------------------
    def _stage_program(self, stage: int) -> SpeProgram:
        workload = self
        is_first = stage == 0
        is_last = stage == workload.stages - 1
        compute_cycles = self.stage_compute_cycles(stage)

        via_ls = workload.via_ls
        next_spe = (
            workload.spe_order[stage + 1] if not is_last else None
        )
        prev_spe = workload.spe_order[stage - 1] if not is_first else None

        def entry(spu, argp, envp):
            ls_block = spu.ls_alloc(workload.block_bytes)
            data_credits = workload.blocks if is_first else 0
            space_credits = workload.depth if not is_last else workload.blocks

            def take_credits(which):
                value = yield from spu.read_signal(which)
                return bin(value).count("1")

            def inbox_slot(block):
                return INBOX_LS_ADDR + (block % workload.depth) * workload.block_bytes

            for block in range(workload.blocks):
                while data_credits == 0:
                    data_credits += yield from take_credits(DATA_SIGNAL)
                data_credits -= 1
                while space_credits == 0:
                    space_credits += yield from take_credits(SPACE_SIGNAL)
                space_credits -= 1

                # --- acquire the block into local store ---
                if is_first or not via_ls:
                    work_ls = ls_block
                    src = workload.regions[stage] + block * workload.block_bytes
                    yield from spu.mfc_get(work_ls, src, workload.block_bytes, tag=0)
                    yield from spu.mfc_wait_tag(1 << 0)
                else:
                    # The producer already DMA'd it into our inbox slot.
                    work_ls = inbox_slot(block)

                # --- transform ---
                yield from spu.compute(compute_cycles)
                data = np.frombuffer(
                    spu.ls_read(work_ls, workload.block_bytes), dtype=np.float32
                )
                spu.ls_write(work_ls, (data + 1.0).tobytes())

                # --- hand the block onward ---
                if is_last or not via_ls:
                    dst = workload.regions[stage + 1] + block * workload.block_bytes
                else:
                    dst = spu.ls_base_ea(next_spe) + inbox_slot(block)
                yield from spu.mfc_put(work_ls, dst, workload.block_bytes, tag=0)
                yield from spu.mfc_wait_tag(1 << 0)

                bit = 1 << (block % 32)
                if not is_last:
                    yield from spu.signal_spe(next_spe, bit, which=DATA_SIGNAL)
                if not is_first:
                    yield from spu.signal_spe(prev_spe, bit, which=SPACE_SIGNAL)
            yield from spu.write_out_mbox(workload.blocks)
            return 0

        return SpeProgram(f"stream-stage{stage}", entry, ls_code_bytes=16 * 1024)

    # ------------------------------------------------------------------
    def ppe_main(self, machine: CellMachine, runtime: Runtime) -> typing.Generator:
        contexts = []
        for stage in range(self.stages):
            ctx = yield from runtime.context_create(spe_id=self.spe_order[stage])
            yield from ctx.load(self._stage_program(stage))
            contexts.append(ctx)
        procs = [ctx.run_async() for ctx in contexts]
        for ctx in contexts:
            done = yield from ctx.out_mbox_read()
            if done != self.blocks:
                raise WorkloadError(
                    f"stage on SPE {ctx.spe_id} processed {done}/{self.blocks}"
                )
        for proc in procs:
            yield proc
