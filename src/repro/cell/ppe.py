"""The PPE model.

The PPE is the PowerPC control core: it loads SPE programs, feeds them
work through mailboxes/signals, and reads the timebase.  We model the
two hardware threads as a scheduling constraint (at most two PPE
processes make progress concurrently) and charge an MMIO latency for
every access to SPE problem-state registers, because PPE-side mailbox
polling cost is part of the paper's overhead discussion.
"""

from __future__ import annotations

import typing

from repro.cell.clock import TimeBase
from repro.cell.config import CellConfig
from repro.kernel import Delay, Resource, Simulator


class PpeCore:
    """The dual-threaded PowerPC element."""

    N_HW_THREADS = 2

    def __init__(self, sim: Simulator, config: CellConfig):
        self.sim = sim
        self.config = config
        self.timebase = TimeBase(config.timebase_divider)
        self._hw_threads = Resource(sim, self.N_HW_THREADS, name="ppe-threads")
        self.mmio_accesses = 0

    def read_timebase(self) -> int:
        """Raw timebase value now (cost charged by callers)."""
        return self.timebase.read(self.sim.now)

    def mmio_access(self) -> typing.Generator:
        """Charge one MMIO round trip (generator — ``yield from``)."""
        self.mmio_accesses += 1
        yield Delay(self.config.mmio_latency)

    def acquire_thread(self):
        """Claim a hardware thread (yield the returned event)."""
        return self._hw_threads.acquire()

    def release_thread(self) -> None:
        self._hw_threads.release()

    @property
    def threads_in_use(self) -> int:
        return self._hw_threads.in_use
