"""Clock fabric: the PPE timebase and per-SPU decrementers.

These are the raw timestamp sources PDT records.  The analysis-side
challenge the paper describes — placing events from nine cores on one
global timeline — exists because:

* the PPE reads a 64-bit *timebase* that counts up at ~26.7 MHz,
* each SPU reads a 32-bit *decrementer* that counts **down** at the
  same nominal rate but from a software-loaded start value, loaded at
  an unknown offset from machine start, and
* both tick two orders of magnitude more coarsely than the cores
  execute, so distinct events can share a timestamp.

:class:`TimeBase` and :class:`Decrementer` are pure functions of
simulation time, so reading a clock never perturbs the simulation;
the *cost* of the read instruction is charged by the caller.
"""

from __future__ import annotations

from repro.cell.config import ClockSpec

_DECREMENTER_MODULUS = 1 << 32


class TimeBase:
    """The PPE-visible 64-bit timebase counter."""

    def __init__(self, divider: int):
        if divider < 1:
            raise ValueError(f"timebase divider must be >= 1, got {divider}")
        self.divider = divider

    def read(self, now: int) -> int:
        """Timebase value at simulation time ``now`` (SPU cycles)."""
        return now // self.divider

    def to_cycles(self, ticks: int) -> int:
        """First simulation time at which ``read`` returns ``ticks``."""
        return ticks * self.divider


class Decrementer:
    """One SPU's 32-bit down-counting decrementer.

    The effective tick period is ``divider * (1 + drift_ppm * 1e-6)``
    SPU cycles; reads floor the elapsed tick count, exactly like
    sampling a free-running counter.  Values wrap modulo 2**32.
    """

    def __init__(self, divider: int, spec: ClockSpec):
        if divider < 1:
            raise ValueError(f"decrementer divider must be >= 1, got {divider}")
        self.divider = divider
        self.spec = spec
        self._period = divider * (1.0 + spec.drift_ppm * 1e-6)

    @property
    def period_cycles(self) -> float:
        """Effective cycles per decrementer tick (non-integer if drifting)."""
        return self._period

    def read(self, now: int) -> int:
        """Decrementer value at simulation time ``now``.

        Before the decrementer's load time (``offset_cycles``) the
        counter reads its start value — software cannot observe it
        earlier anyway because the SPE has not started.
        """
        elapsed = now - self.spec.offset_cycles
        if elapsed <= 0:
            return self.spec.start_value
        ticks = int(elapsed / self._period)
        return (self.spec.start_value - ticks) % _DECREMENTER_MODULUS

    def elapsed_ticks(self, raw_then: int, raw_now: int) -> int:
        """Ticks elapsed between two raw readings, handling wrap."""
        return (raw_then - raw_now) % _DECREMENTER_MODULUS
