"""The atomic unit: lock-line reservations (GETLLAR / PUTLLC).

Cell's only inter-core atomic primitive is the load-and-reserve /
store-conditional pair over 128-byte *lock lines*:

* ``GETLLAR`` copies a 128-byte line from main storage into local
  store and places a reservation on it for the issuing SPE.
* ``PUTLLC`` writes the line back **only if** the reservation still
  stands; any other processor's store to the line (conditional or
  plain DMA) kills outstanding reservations, so the loser retries.

Every SPE work queue, barrier, and mutex on the platform is built on
this loop, so the simulator models it faithfully: one global
:class:`ReservationStation` watches all stores and invalidates
overlapping reservations, and the MFC exposes the two commands with
EIB-accurate timing.
"""

from __future__ import annotations

import typing

LOCK_LINE = 128


class ReservationStation:
    """Global reservation tracker (one per machine, like the bus)."""

    def __init__(self) -> None:
        #: spe_id -> reserved line address (128-byte aligned EA)
        self._reservations: typing.Dict[int, int] = {}
        self.getllar_count = 0
        self.putllc_attempts = 0
        self.putllc_failures = 0

    @staticmethod
    def line_of(effective_addr: int) -> int:
        return effective_addr & ~(LOCK_LINE - 1)

    def reserve(self, spe_id: int, effective_addr: int) -> None:
        """GETLLAR: (re)place this SPE's single reservation."""
        self._reservations[spe_id] = self.line_of(effective_addr)
        self.getllar_count += 1

    def holds(self, spe_id: int, effective_addr: int) -> bool:
        return self._reservations.get(spe_id) == self.line_of(effective_addr)

    def conditional_store(self, spe_id: int, effective_addr: int) -> bool:
        """PUTLLC: returns success; on success everyone else's
        reservation on the line dies (and the winner's is consumed)."""
        self.putllc_attempts += 1
        line = self.line_of(effective_addr)
        if self._reservations.get(spe_id) != line:
            self.putllc_failures += 1
            return False
        del self._reservations[spe_id]
        self._invalidate_line(line, except_spe=spe_id)
        return True

    def notify_store(
        self, line_start: int, size: int, writer_spe: typing.Optional[int] = None
    ) -> None:
        """A plain store touched [line_start, line_start+size).

        Kills every reservation whose line overlaps the written range
        (including the writer's own — architecturally a DMA PUT from
        the same SPE also loses the reservation).
        """
        first = self.line_of(line_start)
        last = self.line_of(line_start + max(size, 1) - 1)
        for spe_id, line in list(self._reservations.items()):
            if first <= line <= last:
                del self._reservations[spe_id]

    def _invalidate_line(self, line: int, except_spe: int) -> None:
        for spe_id, reserved in list(self._reservations.items()):
            if reserved == line and spe_id != except_spe:
                del self._reservations[spe_id]

    def reservation_of(self, spe_id: int) -> typing.Optional[int]:
        return self._reservations.get(spe_id)
