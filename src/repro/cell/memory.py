"""Memories: main storage and SPE local stores.

Both store real bytes so that workloads can verify data movement
end-to-end (a matmul on the simulator computes the actual product via
DMA'd blocks).  DMA alignment rules follow the Cell architecture:
transfers of 1, 2, 4 or 8 bytes must be naturally aligned; larger
transfers must be 16-byte aligned multiples of 16 bytes, and
performance-sensitive code uses 128-byte alignment (we model the rule,
not the 128-byte bonus).
"""

from __future__ import annotations


class MemoryError_(Exception):
    """Out-of-range access to a simulated memory.

    Named with a trailing underscore to avoid shadowing the Python
    built-in ``MemoryError``.
    """


class AlignmentError(MemoryError_):
    """A DMA violated the MFC alignment rules."""


def check_dma_alignment(local_addr: int, effective_addr: int, size: int) -> None:
    """Enforce MFC transfer-size and alignment rules.

    Raises :class:`AlignmentError` on violation.  Rules (Cell BE
    Handbook, MFC commands): size in {1,2,4,8} naturally aligned with
    matching low address bits, or size a multiple of 16 with both
    addresses 16-byte aligned.
    """
    if size <= 0:
        raise AlignmentError(f"DMA size must be positive, got {size}")
    if size in (1, 2, 4, 8):
        if local_addr % size or effective_addr % size:
            raise AlignmentError(
                f"{size}-byte DMA must be naturally aligned "
                f"(LS=0x{local_addr:x}, EA=0x{effective_addr:x})"
            )
        if local_addr % 16 != effective_addr % 16:
            raise AlignmentError(
                "small DMA requires matching low 4 address bits "
                f"(LS=0x{local_addr:x}, EA=0x{effective_addr:x})"
            )
        return
    if size % 16:
        raise AlignmentError(f"DMA size must be 1/2/4/8 or multiple of 16, got {size}")
    if local_addr % 16 or effective_addr % 16:
        raise AlignmentError(
            f"16-byte alignment required (LS=0x{local_addr:x}, EA=0x{effective_addr:x})"
        )


class _ByteStore:
    """Bounds-checked bytearray wrapper shared by both memory kinds."""

    def __init__(self, size: int, name: str):
        self.size = size
        self.name = name
        self._data = bytearray(size)

    def read(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        return bytes(self._data[addr : addr + size])

    def write(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self._data[addr : addr + len(data)] = data

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size:
            raise MemoryError_(
                f"{self.name}: access [0x{addr:x}, 0x{addr + size:x}) "
                f"outside size 0x{self.size:x}"
            )


class MainMemory(_ByteStore):
    """System main storage (XDR DRAM behind the MIC).

    Also acts as a simple allocator so that tests and workloads can
    carve out buffers without tracking addresses by hand; allocations
    are 128-byte aligned like ``malloc_align`` in the Cell SDK demos.
    """

    ALLOC_ALIGN = 128

    def __init__(self, size: int):
        super().__init__(size, name="main-memory")
        self._alloc_ptr = self.ALLOC_ALIGN  # keep EA 0 unused, it reads as a bug

    def allocate(self, size: int, align: int = ALLOC_ALIGN) -> int:
        """Reserve ``size`` bytes; returns the effective address."""
        if size <= 0:
            raise MemoryError_(f"allocation size must be positive, got {size}")
        if align & (align - 1):
            raise MemoryError_(f"alignment must be a power of two, got {align}")
        addr = (self._alloc_ptr + align - 1) & ~(align - 1)
        if addr + size > self.size:
            raise MemoryError_(
                f"main memory exhausted: need {size} bytes at 0x{addr:x}, "
                f"size 0x{self.size:x}"
            )
        self._alloc_ptr = addr + size
        return addr

    @property
    def allocated_bytes(self) -> int:
        return self._alloc_ptr


class LocalStore(_ByteStore):
    """One SPE's 256 KB local store.

    Local stores are flat and unprotected; the only enforcement is the
    size bound.  A bump allocator mirrors how SPE programs statically
    carve buffers, and lets PDT reserve its trace buffer the way the
    real tool links its buffer into the SPE image.
    """

    def __init__(self, size: int, spe_id: int):
        super().__init__(size, name=f"ls-spe{spe_id}")
        self.spe_id = spe_id
        self._alloc_ptr = 0
        #: Incremented by :meth:`reset`; lets long-lived holders of LS
        #: addresses (e.g. the PDT trace buffer) detect that the SPE
        #: was re-provisioned and their allocation is gone.
        self.generation = 0

    def reset(self) -> None:
        """Forget all allocations (context switch / reload).

        Contents are left in place — like real LS, nothing scrubs it —
        but every previously returned address is invalidated.
        """
        self._alloc_ptr = 0
        self.generation += 1

    def allocate(self, size: int, align: int = 16) -> int:
        """Reserve ``size`` bytes of LS; returns the LS address."""
        if size <= 0:
            raise MemoryError_(f"allocation size must be positive, got {size}")
        if align & (align - 1):
            raise MemoryError_(f"alignment must be a power of two, got {align}")
        addr = (self._alloc_ptr + align - 1) & ~(align - 1)
        if addr + size > self.size:
            raise MemoryError_(
                f"{self.name} exhausted: need {size} bytes at 0x{addr:x} "
                f"(app + trace buffer exceed 256 KB?)"
            )
        self._alloc_ptr = addr + size
        return addr

    @property
    def free_bytes(self) -> int:
        """LS bytes not yet claimed by the bump allocator."""
        return self.size - self._alloc_ptr
