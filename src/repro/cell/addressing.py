"""Effective-address map: main storage plus memory-mapped local stores.

On the Cell, each SPE's local store is aliased into the global
effective-address space, which is how SPE-to-SPE DMA works: an MFC GET
or PUT whose EA lands in another SPE's LS window moves data directly
between local stores over the EIB, never touching DRAM.  The map
places each SPE's 256 KB LS in a fixed 1 MB-strided window high above
main storage.
"""

from __future__ import annotations

import typing

from repro.cell.memory import LocalStore, MainMemory, MemoryError_

#: Base effective address of the LS alias windows (far above any
#: plausible main-storage size).
LS_WINDOW_BASE = 0xF000_0000
#: Stride between consecutive SPEs' windows.
LS_WINDOW_STRIDE = 0x0010_0000


class AddressMap:
    """Resolves effective addresses to (backing store, offset)."""

    def __init__(self, memory: MainMemory, local_stores: typing.Sequence[LocalStore]):
        self.memory = memory
        self.local_stores = list(local_stores)

    def ls_base_ea(self, spe_id: int) -> int:
        """The effective address where SPE ``spe_id``'s LS begins."""
        if not 0 <= spe_id < len(self.local_stores):
            raise MemoryError_(f"no SPE {spe_id} in the address map")
        return LS_WINDOW_BASE + spe_id * LS_WINDOW_STRIDE

    def resolve(
        self, effective_addr: int, size: int
    ) -> typing.Tuple[typing.Union[MainMemory, LocalStore], int]:
        """(store, offset) for an access of ``size`` at ``effective_addr``.

        Accesses may not straddle a window boundary — real MFC
        transfers to an LS alias must stay inside the 256 KB window.
        """
        if effective_addr < LS_WINDOW_BASE:
            return self.memory, effective_addr
        slot, offset = divmod(effective_addr - LS_WINDOW_BASE, LS_WINDOW_STRIDE)
        if slot >= len(self.local_stores):
            raise MemoryError_(
                f"EA 0x{effective_addr:x} is in the LS window region but "
                f"beyond SPE {len(self.local_stores) - 1}"
            )
        store = self.local_stores[slot]
        if offset + size > store.size:
            raise MemoryError_(
                f"EA 0x{effective_addr:x}+{size} overruns SPE {slot}'s "
                f"{store.size}-byte local store window"
            )
        return store, offset

    def is_local_store(self, effective_addr: int) -> bool:
        return effective_addr >= LS_WINDOW_BASE

    def unit_of(self, effective_addr: int) -> str:
        """EIB unit name backing an address ("mic" or "speN")."""
        if effective_addr < LS_WINDOW_BASE:
            return "mic"
        slot = (effective_addr - LS_WINDOW_BASE) // LS_WINDOW_STRIDE
        if slot >= len(self.local_stores):
            raise MemoryError_(
                f"EA 0x{effective_addr:x} maps to no unit (SPE {slot})"
            )
        return f"spe{slot}"
