"""The SPU core model.

An :class:`SpuCore` bundles one SPE's private hardware — local store,
MFC, mailboxes, decrementer — and tracks the core's execution state
over time.  The state track is simulator *ground truth*: the
experiments compare what the Trace Analyzer reconstructs from a PDT
trace against these counters.

SPE programs themselves are expressed against the runtime API in
:mod:`repro.libspe.spu_api`, which drives this core.
"""

from __future__ import annotations

import enum
import typing

from repro.cell.clock import Decrementer
from repro.cell.config import CellConfig
from repro.cell.eib import Eib
from repro.cell.mailbox import MailboxSet
from repro.cell.memory import LocalStore, MainMemory
from repro.cell.mfc import Mfc
from repro.kernel import KernelError, Simulator


class SpuState(enum.Enum):
    """What an SPU is doing at an instant (ground-truth taxonomy)."""

    IDLE = "idle"  # no program loaded / program stopped
    RUN = "run"  # executing instructions
    WAIT_DMA = "wait_dma"  # blocked on a tag-group status read
    WAIT_MBOX = "wait_mbox"  # blocked reading/writing a mailbox
    WAIT_SIGNAL = "wait_signal"  # blocked on a signal register
    WAIT_QUEUE = "wait_queue"  # blocked, MFC command queue full


class StateTrack:
    """Accumulates time per state and the full interval history."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.state = SpuState.IDLE
        self._since = 0
        self.totals: typing.Dict[SpuState, int] = {s: 0 for s in SpuState}
        #: (start, end, state) triples, closed on transition.
        self.intervals: typing.List[typing.Tuple[int, int, SpuState]] = []

    def switch(self, new_state: SpuState) -> SpuState:
        """Enter ``new_state``; returns the previous state."""
        old = self.state
        now = self.sim.now
        if now > self._since:
            self.totals[old] += now - self._since
            self.intervals.append((self._since, now, old))
        self.state = new_state
        self._since = now
        return old

    def close(self) -> None:
        """Flush the currently open interval (call at end of run)."""
        self.switch(self.state)

    def busy_cycles(self) -> int:
        return self.totals[SpuState.RUN]

    def stall_cycles(self) -> int:
        return sum(
            self.totals[s]
            for s in (
                SpuState.WAIT_DMA,
                SpuState.WAIT_MBOX,
                SpuState.WAIT_SIGNAL,
                SpuState.WAIT_QUEUE,
            )
        )


class SpuCore:
    """One SPE: SPU + local store + MFC + mailboxes + decrementer."""

    def __init__(
        self,
        sim: Simulator,
        spe_id: int,
        config: CellConfig,
        main_memory: MainMemory,
        eib: Eib,
        reservations=None,
        address_map=None,
    ):
        self.sim = sim
        self.spe_id = spe_id
        self.config = config
        self.ls = LocalStore(config.local_store_size, spe_id)
        self.mfc = Mfc(
            sim, spe_id, self.ls, main_memory, eib, config.dma,
            reservations=reservations, address_map=address_map,
        )
        self.mailboxes = MailboxSet(
            sim,
            spe_id,
            inbound_depth=config.inbound_mailbox_depth,
            outbound_depth=config.outbound_mailbox_depth,
        )
        self.decrementer = Decrementer(config.timebase_divider, config.clock_spec(spe_id))
        self.track = StateTrack(sim)
        self.program_starts: typing.List[int] = []
        self.program_stops: typing.List[int] = []
        self._running = False

    # ------------------------------------------------------------------
    # execution-state bookkeeping (driven by the runtime layer)
    # ------------------------------------------------------------------
    @property
    def state(self) -> SpuState:
        return self.track.state

    def begin_program(self) -> None:
        if self._running:
            raise KernelError(f"SPE {self.spe_id} already running a program")
        self._running = True
        self.program_starts.append(self.sim.now)
        self.track.switch(SpuState.RUN)

    def end_program(self) -> None:
        if not self._running:
            raise KernelError(f"SPE {self.spe_id} is not running")
        self._running = False
        self.program_stops.append(self.sim.now)
        self.track.switch(SpuState.IDLE)

    def enter_wait(self, state: SpuState) -> None:
        """Mark the SPU blocked; runtime calls this around stalls."""
        if self.track.state is not SpuState.RUN:
            raise KernelError(
                f"SPE {self.spe_id}: nested wait ({self.track.state} -> {state})"
            )
        self.track.switch(state)

    def leave_wait(self) -> None:
        self.track.switch(SpuState.RUN)

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------
    def read_decrementer(self) -> int:
        """Raw decrementer value now (the read cost is charged by callers)."""
        return self.decrementer.read(self.sim.now)

    def __repr__(self) -> str:
        return f"SpuCore(spe{self.spe_id}, state={self.track.state.value})"
