"""Memory Flow Controller: the per-SPE DMA engine.

Each SPE's MFC owns a 16-entry command queue.  The SPU issues
commands through its channel interface (stalling when the queue is
full — a real and observable stall PDT can expose), the MFC dispatches
them in order with up to ``mfc_parallel`` transfers in flight on the
EIB, and completion is tracked per *tag group* (0–31).  Software waits
for tag groups with a mask, in "any" or "all" mode, exactly like
``mfc_read_tag_status_any/all``.

Ordering semantics modelled:

* plain commands may overlap each other,
* *fenced* commands (``GETF``/``PUTF``) wait for previously issued
  commands **in the same tag group**,
* *barrier* commands (``GETB``/``PUTB``) wait for **all** previously
  issued commands.

List DMA (``GETL``/``PUTL``) executes a sequence of (EA, size)
elements against a contiguous LS region as one queued command.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.cell.atomic import LOCK_LINE, ReservationStation
from repro.cell.config import DmaTimings
from repro.cell.eib import Eib
from repro.cell.memory import LocalStore, MainMemory, check_dma_alignment
from repro.kernel import Delay, Event, KernelError, Resource, Simulator

N_TAGS = 32


class DmaDirection(enum.Enum):
    """Transfer direction, named from the SPE's point of view."""

    GET = "get"  # main storage -> local store
    PUT = "put"  # local store -> main storage


@dataclasses.dataclass(frozen=True)
class DmaListElement:
    """One element of a list DMA: a (main-storage address, size) pair."""

    effective_addr: int
    size: int


@dataclasses.dataclass
class DmaCommand:
    """One queued MFC command, with its lifetime timestamps.

    The timestamps are simulator ground truth used by tests and by the
    validation experiments; PDT sees only what it records itself.
    """

    cmd_id: int
    direction: DmaDirection
    ls_addr: int
    effective_addr: int
    size: int
    tag: int
    fence: bool = False
    barrier: bool = False
    elements: typing.Optional[typing.Tuple[DmaListElement, ...]] = None
    issuer: str = ""
    issue_time: int = -1
    dispatch_time: int = -1
    complete_time: int = -1
    completion: typing.Optional[Event] = None

    @property
    def is_list(self) -> bool:
        return self.elements is not None

    @property
    def kind(self) -> str:
        """Mnemonic like the architected command names (GETF, PUTL...)."""
        name = self.direction.name
        if self.is_list:
            name += "L"
        if self.barrier:
            name += "B"
        elif self.fence:
            name += "F"
        return name


@dataclasses.dataclass
class _TagWaiter:
    mask: int
    mode: str  # "any" | "all"
    event: Event


class MfcStats:
    """Per-MFC counters for tests and the analyzer's ground truth."""

    def __init__(self) -> None:
        self.commands = 0
        self.bytes_moved = 0
        self.queue_full_stalls = 0
        self.queue_full_cycles = 0
        self.per_tag_commands: typing.Dict[int, int] = {}


class Mfc:
    """One SPE's DMA engine."""

    def __init__(
        self,
        sim: Simulator,
        spe_id: int,
        local_store: LocalStore,
        main_memory: MainMemory,
        eib: Eib,
        timings: DmaTimings,
        reservations: typing.Optional[ReservationStation] = None,
        address_map: typing.Optional["AddressMap"] = None,
    ):
        from repro.cell.addressing import AddressMap

        self.sim = sim
        self.spe_id = spe_id
        self.ls = local_store
        self.mem = main_memory
        self.eib = eib
        self.timings = timings
        self.reservations = reservations or ReservationStation()
        self.address_map = address_map or AddressMap(main_memory, [])
        self.atomic_ops = 0
        self.stats = MfcStats()
        self._next_cmd_id = 0
        self._slots = Resource(sim, timings.queue_depth, name=f"mfc{spe_id}-queue")
        self._proxy_slots = Resource(
            sim, timings.proxy_queue_depth, name=f"mfc{spe_id}-proxy"
        )
        self._pending: typing.List[DmaCommand] = []
        self._inflight: typing.List[DmaCommand] = []
        self._outstanding_per_tag = [0] * N_TAGS
        self._tag_waiters: typing.List[_TagWaiter] = []
        self._kick: typing.Optional[Event] = None
        self.completed_commands: typing.List[DmaCommand] = []
        sim.spawn(self._dispatcher(), name=f"mfc{spe_id}-dispatcher", daemon=True)

    # ------------------------------------------------------------------
    # command construction helpers
    # ------------------------------------------------------------------
    def make_command(
        self,
        direction: DmaDirection,
        ls_addr: int,
        effective_addr: int,
        size: int,
        tag: int,
        fence: bool = False,
        barrier: bool = False,
        issuer: str = "",
    ) -> DmaCommand:
        """Validate and build a plain (non-list) DMA command."""
        self._check_tag(tag)
        if size > self.timings.max_dma_size:
            raise KernelError(
                f"DMA of {size} bytes exceeds the {self.timings.max_dma_size}-byte "
                "MFC limit; split the transfer or use a list command"
            )
        check_dma_alignment(ls_addr, effective_addr, size)
        self._next_cmd_id += 1
        return DmaCommand(
            cmd_id=self._next_cmd_id,
            direction=direction,
            ls_addr=ls_addr,
            effective_addr=effective_addr,
            size=size,
            tag=tag,
            fence=fence,
            barrier=barrier,
            issuer=issuer,
        )

    def make_list_command(
        self,
        direction: DmaDirection,
        ls_addr: int,
        elements: typing.Sequence[DmaListElement],
        tag: int,
        issuer: str = "",
    ) -> DmaCommand:
        """Validate and build a list DMA command."""
        self._check_tag(tag)
        if not elements:
            raise KernelError("list DMA needs at least one element")
        if len(elements) > 2048:
            raise KernelError("list DMA supports at most 2048 elements")
        offset = 0
        for elem in elements:
            if elem.size > self.timings.max_dma_size:
                raise KernelError(
                    f"list element of {elem.size} bytes exceeds the "
                    f"{self.timings.max_dma_size}-byte limit"
                )
            check_dma_alignment(ls_addr + offset, elem.effective_addr, elem.size)
            offset += elem.size
        self._next_cmd_id += 1
        return DmaCommand(
            cmd_id=self._next_cmd_id,
            direction=direction,
            ls_addr=ls_addr,
            effective_addr=elements[0].effective_addr,
            size=offset,
            tag=tag,
            elements=tuple(elements),
            issuer=issuer,
        )

    @staticmethod
    def _check_tag(tag: int) -> None:
        if not 0 <= tag < N_TAGS:
            raise KernelError(f"DMA tag must be 0..{N_TAGS - 1}, got {tag}")

    # ------------------------------------------------------------------
    # issue paths
    # ------------------------------------------------------------------
    def issue(self, command: DmaCommand, proxy: bool = False) -> typing.Generator:
        """Enqueue a command (generator — ``yield from``).

        Blocks while the command queue is full; the stall duration is
        recorded in :attr:`stats` (PDT exposes exactly this stall).
        Returns the command's completion :class:`Event`, which the
        caller may wait on directly or via the tag-group interface.
        """
        slots = self._proxy_slots if proxy else self._slots
        queued_at = self.sim.now
        if slots.available == 0:
            self.stats.queue_full_stalls += 1
        yield slots.acquire()
        self.stats.queue_full_cycles += self.sim.now - queued_at
        command.issue_time = self.sim.now
        command.completion = Event(self.sim, name=f"dma{command.cmd_id}-done")
        command._slots = slots  # remember which pool to release into
        self._outstanding_per_tag[command.tag] += 1
        self._pending.append(command)
        self.stats.commands += 1
        self.stats.per_tag_commands[command.tag] = (
            self.stats.per_tag_commands.get(command.tag, 0) + 1
        )
        self._wake_dispatcher()
        return command.completion

    # ------------------------------------------------------------------
    # tag-group status
    # ------------------------------------------------------------------
    def outstanding_in_tag(self, tag: int) -> int:
        self._check_tag(tag)
        return self._outstanding_per_tag[tag]

    def tag_status(self, mask: int) -> int:
        """Bitmap of tags in ``mask`` that have no outstanding commands."""
        status = 0
        for tag in range(N_TAGS):
            bit = 1 << tag
            if mask & bit and self._outstanding_per_tag[tag] == 0:
                status |= bit
        return status

    def tag_wait_event(self, mask: int, mode: str) -> Event:
        """An event that triggers when the tag condition is met.

        ``mode='all'``: every tag in the mask is quiescent.
        ``mode='any'``: at least one tag in the mask is quiescent.
        The event value is the tag-status bitmap at completion time.
        """
        if mode not in ("any", "all"):
            raise KernelError(f"tag wait mode must be 'any' or 'all', got {mode!r}")
        if mask == 0:
            raise KernelError("tag wait with empty mask would hang forever")
        event = Event(self.sim, name=f"mfc{self.spe_id}-tagwait")
        waiter = _TagWaiter(mask=mask, mode=mode, event=event)
        if self._waiter_satisfied(waiter):
            event.trigger(self.tag_status(mask))
        else:
            self._tag_waiters.append(waiter)
        return event

    def _waiter_satisfied(self, waiter: _TagWaiter) -> bool:
        status = self.tag_status(waiter.mask)
        if waiter.mode == "all":
            return status == waiter.mask
        return status != 0

    def _notify_tag_waiters(self) -> None:
        still_waiting = []
        for waiter in self._tag_waiters:
            if self._waiter_satisfied(waiter):
                waiter.event.trigger(self.tag_status(waiter.mask))
            else:
                still_waiting.append(waiter)
        self._tag_waiters = still_waiting

    # ------------------------------------------------------------------
    # dispatch engine
    # ------------------------------------------------------------------
    def _wake_dispatcher(self) -> None:
        if self._kick is not None and not self._kick.triggered:
            self._kick.trigger()

    def _dispatcher(self) -> typing.Generator:
        while True:
            started_one = self._try_dispatch()
            if not started_one:
                self._kick = Event(self.sim, name=f"mfc{self.spe_id}-kick")
                yield self._kick
                self._kick = None

    def _try_dispatch(self) -> bool:
        if not self._pending:
            return False
        if len(self._inflight) >= self.timings.mfc_parallel:
            return False
        head = self._pending[0]
        if head.barrier and self._inflight:
            return False
        if head.fence and any(cmd.tag == head.tag for cmd in self._inflight):
            return False
        self._pending.pop(0)
        self._inflight.append(head)
        head.dispatch_time = self.sim.now
        self.sim.spawn(self._execute(head), name=f"dma{head.cmd_id}")
        return True

    def _execute(self, command: DmaCommand) -> typing.Generator:
        yield Delay(self.timings.mfc_issue_latency)
        requester = f"spe{self.spe_id}" + (":trace" if "trace" in command.issuer else "")
        src = f"spe{self.spe_id}"
        if command.is_list:
            offset = 0
            for elem in command.elements:
                yield from self._access_latency(elem.effective_addr)
                yield from self.eib.transfer(
                    elem.size, requester=requester, src=src,
                    dst=self._unit_of(elem.effective_addr),
                )
                self._move_bytes(
                    command.direction, command.ls_addr + offset, elem.effective_addr, elem.size
                )
                offset += elem.size
        else:
            yield from self._access_latency(command.effective_addr)
            yield from self.eib.transfer(
                command.size, requester=requester, src=src,
                dst=self._unit_of(command.effective_addr),
            )
            self._move_bytes(
                command.direction, command.ls_addr, command.effective_addr, command.size
            )
        self._complete(command)

    def _unit_of(self, effective_addr: int) -> str:
        try:
            return self.address_map.unit_of(effective_addr)
        except Exception:
            return "mic"

    def _access_latency(self, effective_addr: int) -> typing.Generator:
        """DRAM access latency — skipped for LS-to-LS transfers."""
        if not self.address_map.is_local_store(effective_addr):
            yield Delay(self.timings.memory_latency)

    def _move_bytes(
        self, direction: DmaDirection, ls_addr: int, effective_addr: int, size: int
    ) -> None:
        store, offset = self.address_map.resolve(effective_addr, size)
        if direction is DmaDirection.GET:
            self.ls.write(ls_addr, store.read(offset, size))
        else:
            store.write(offset, self.ls.read(ls_addr, size))
            # A plain store kills overlapping lock-line reservations.
            self.reservations.notify_store(effective_addr, size, writer_spe=self.spe_id)

    # ------------------------------------------------------------------
    # atomic commands (lock-line reservation)
    # ------------------------------------------------------------------
    def _check_lock_line(self, ls_addr: int, effective_addr: int) -> None:
        if ls_addr % LOCK_LINE or effective_addr % LOCK_LINE:
            raise KernelError(
                f"atomic commands need {LOCK_LINE}-byte alignment "
                f"(LS=0x{ls_addr:x}, EA=0x{effective_addr:x})"
            )
        if self.address_map.is_local_store(effective_addr):
            raise KernelError(
                "atomic commands target main storage, not LS windows"
            )

    def atomic_getllar(self, ls_addr: int, effective_addr: int) -> typing.Generator:
        """GETLLAR: fetch a 128-byte lock line and reserve it.

        Immediate command: the SPU blocks until the line is in LS
        (real code spins on the atomic-status channel the same way).
        """
        self._check_lock_line(ls_addr, effective_addr)
        self.atomic_ops += 1
        yield Delay(self.timings.mfc_issue_latency + self.timings.memory_latency)
        yield from self.eib.transfer(
            LOCK_LINE, requester=f"spe{self.spe_id}:atomic",
            src=f"spe{self.spe_id}", dst="mic",
        )
        self.ls.write(ls_addr, self.mem.read(effective_addr, LOCK_LINE))
        self.reservations.reserve(self.spe_id, effective_addr)

    def atomic_putllc(self, ls_addr: int, effective_addr: int) -> typing.Generator:
        """PUTLLC: conditional store of the lock line; returns success.

        Fails (returns False) when the reservation was lost to another
        processor's store — the caller retries the GETLLAR/modify/
        PUTLLC loop, exactly like hardware.
        """
        self._check_lock_line(ls_addr, effective_addr)
        self.atomic_ops += 1
        yield Delay(self.timings.mfc_issue_latency)
        yield from self.eib.transfer(
            LOCK_LINE, requester=f"spe{self.spe_id}:atomic",
            src=f"spe{self.spe_id}", dst="mic",
        )
        success = self.reservations.conditional_store(self.spe_id, effective_addr)
        if success:
            self.mem.write(effective_addr, self.ls.read(ls_addr, LOCK_LINE))
        return success

    def atomic_putlluc(self, ls_addr: int, effective_addr: int) -> typing.Generator:
        """PUTLLUC: unconditional lock-line store (kills reservations)."""
        self._check_lock_line(ls_addr, effective_addr)
        self.atomic_ops += 1
        yield Delay(self.timings.mfc_issue_latency)
        yield from self.eib.transfer(
            LOCK_LINE, requester=f"spe{self.spe_id}:atomic",
            src=f"spe{self.spe_id}", dst="mic",
        )
        self.mem.write(effective_addr, self.ls.read(ls_addr, LOCK_LINE))
        self.reservations.notify_store(effective_addr, LOCK_LINE, writer_spe=self.spe_id)

    def _complete(self, command: DmaCommand) -> None:
        command.complete_time = self.sim.now
        self._inflight.remove(command)
        self._outstanding_per_tag[command.tag] -= 1
        self.stats.bytes_moved += command.size
        self.completed_commands.append(command)
        command._slots.release()
        command.completion.trigger(command)
        self._notify_tag_waiters()
        self._wake_dispatcher()
