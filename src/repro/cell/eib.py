"""Element Interconnect Bus model.

The real EIB is four unidirectional 16-byte rings at half the core
clock (net 8 bytes per SPU cycle per ring), with a central arbiter.
We model it as ``eib_rings`` interchangeable transfer slots: a
transfer acquires a slot FIFO-fair, occupies it for an arbitration
latency plus ``bytes / bytes_per_cycle``, then releases it.  This
captures what matters to the paper's overhead analysis: concurrent
DMAs (including PDT's own trace-buffer flushes) contend for finite
interconnect bandwidth and delay each other.
"""

from __future__ import annotations

import typing

from repro.cell.config import DmaTimings
from repro.kernel import Delay, Resource, Simulator


class EibStats:
    """Aggregate traffic counters, also broken down per requester."""

    def __init__(self) -> None:
        self.transfers = 0
        self.bytes_moved = 0
        self.busy_cycles = 0
        self.wait_cycles = 0
        self.per_requester_bytes: typing.Dict[str, int] = {}

    def record(self, requester: str, nbytes: int, busy: int, waited: int) -> None:
        self.transfers += 1
        self.bytes_moved += nbytes
        self.busy_cycles += busy
        self.wait_cycles += waited
        self.per_requester_bytes[requester] = (
            self.per_requester_bytes.get(requester, 0) + nbytes
        )


class Eib:
    """The interconnect: shared transfer slots plus traffic accounting.

    The ring carries the PPE, the SPEs in index order, and the memory
    interface controller ("mic"); a transfer's latency grows with the
    hop distance between its endpoints, so unit placement matters —
    the effect the F10 experiment measures.
    """

    def __init__(self, sim: Simulator, timings: DmaTimings, n_spes: int = 8):
        self.sim = sim
        self.timings = timings
        self._slots = Resource(sim, capacity=timings.eib_rings, name="eib")
        self.stats = EibStats()
        #: Unit name -> position on the ring.
        self.ring_position: typing.Dict[str, int] = {"ppe": 0}
        for spe_id in range(n_spes):
            self.ring_position[f"spe{spe_id}"] = 1 + spe_id
        self.ring_position["mic"] = 1 + n_spes

    def hops(self, src: str, dst: str) -> int:
        """Ring distance between two units (shorter direction)."""
        try:
            a = self.ring_position[src]
            b = self.ring_position[dst]
        except KeyError as exc:
            raise ValueError(f"unknown EIB unit: {exc}") from None
        size = len(self.ring_position)
        direct = abs(a - b)
        return min(direct, size - direct)

    def transfer_cycles(self, nbytes: int, hops: int = 0) -> int:
        """Bus occupancy for a transfer of ``nbytes`` (excluding queuing)."""
        bw = self.timings.eib_bytes_per_cycle
        return (
            self.timings.eib_command_latency
            + hops * self.timings.eib_hop_latency
            + (nbytes + bw - 1) // bw
        )

    def transfer(
        self,
        nbytes: int,
        requester: str = "?",
        src: str = "mic",
        dst: str = "mic",
    ) -> typing.Generator:
        """Move ``nbytes`` across the bus (generator — use ``yield from``).

        Returns the number of cycles the transfer occupied the bus
        (excluding time spent queued for a slot).
        """
        if nbytes <= 0:
            raise ValueError(f"transfer size must be positive, got {nbytes}")
        queued_at = self.sim.now
        yield self._slots.acquire()
        waited = self.sim.now - queued_at
        busy = self.transfer_cycles(nbytes, hops=self.hops(src, dst))
        try:
            yield Delay(busy)
        finally:
            self._slots.release()
        self.stats.record(requester, nbytes, busy, waited)
        return busy

    @property
    def slots_in_use(self) -> int:
        return self._slots.in_use

    @property
    def queue_length(self) -> int:
        return self._slots.queue_length
