"""Mailboxes and signal-notification registers.

Each SPE has:

* a 4-deep **inbound** mailbox (PPE writes, SPU reads; the SPU read
  channel stalls when empty),
* a 1-deep **outbound** mailbox (SPU writes — stalling when full —
  PPE reads via MMIO),
* a 1-deep **outbound interrupt** mailbox (same, but raises a PPE
  interrupt; we model the data path),
* two 32-bit **signal-notification registers**, each in OR mode
  (writes accumulate bits) or overwrite mode; the SPU read channel
  stalls while the register is zero and clears it on read.

Values are 32-bit unsigned integers, enforced at the boundary because
mailbox protocols routinely pack bitfields and a stray Python int
wider than 32 bits would hide a workload bug.
"""

from __future__ import annotations

import typing

from repro.kernel import Channel, Event, KernelError, Simulator

_U32 = 0xFFFF_FFFF


def _check_u32(value: int, what: str) -> int:
    if not 0 <= value <= _U32:
        raise KernelError(f"{what} must be a 32-bit unsigned value, got {value!r}")
    return value


class SignalRegister:
    """One SPU signal-notification register."""

    def __init__(self, sim: Simulator, name: str, or_mode: bool = True):
        self.sim = sim
        self.name = name
        self.or_mode = or_mode
        self._value = 0
        self._waiters: typing.List[Event] = []
        self.writes = 0

    @property
    def value(self) -> int:
        """Current contents (what the MMIO read path would see)."""
        return self._value

    def send(self, bits: int) -> None:
        """PPE/other-SPE side: write the register."""
        _check_u32(bits, f"signal {self.name}")
        self.writes += 1
        if self.or_mode:
            self._value |= bits
        else:
            self._value = bits
        if self._value != 0:
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                # All waiters race for the same read; first resumed
                # wins, the rest re-wait (modelled in read()).
                event.trigger(None)

    def read(self) -> Event:
        """SPU side: an event that triggers once the register is non-zero.

        The caller consumes the value with :meth:`take` after the event
        fires (split so the SPU core can charge channel latency between
        wake-up and the destructive read).
        """
        event = Event(self.sim, name=f"{self.name}.read")
        if self._value != 0:
            event.trigger(None)
        else:
            self._waiters.append(event)
        return event

    def take(self) -> int:
        """Destructively read the register (returns value, clears it)."""
        value = self._value
        self._value = 0
        return value


class MailboxSet:
    """All mailboxes and signals of one SPE."""

    def __init__(
        self,
        sim: Simulator,
        spe_id: int,
        inbound_depth: int = 4,
        outbound_depth: int = 1,
    ):
        self.sim = sim
        self.spe_id = spe_id
        self.inbound = Channel(sim, inbound_depth, name=f"spe{spe_id}.in_mbox")
        self.outbound = Channel(sim, outbound_depth, name=f"spe{spe_id}.out_mbox")
        self.outbound_interrupt = Channel(
            sim, outbound_depth, name=f"spe{spe_id}.out_intr_mbox"
        )
        self.signal1 = SignalRegister(sim, f"spe{spe_id}.sig1", or_mode=True)
        self.signal2 = SignalRegister(sim, f"spe{spe_id}.sig2", or_mode=True)

    # SPU-side operations -------------------------------------------------
    def spu_read_inbound(self) -> Event:
        """SPU reads its inbound mailbox (stalls while empty)."""
        return self.inbound.get()

    def spu_write_outbound(self, value: int) -> Event:
        """SPU writes its outbound mailbox (stalls while full)."""
        return self.outbound.put(_check_u32(value, "outbound mailbox"))

    def spu_write_outbound_interrupt(self, value: int) -> Event:
        return self.outbound_interrupt.put(
            _check_u32(value, "outbound interrupt mailbox")
        )

    # PPE-side (MMIO) operations ------------------------------------------
    def ppe_write_inbound(self, value: int) -> bool:
        """PPE writes the SPE's inbound mailbox via MMIO.

        Non-flow-controlled like the hardware: if the queue is full the
        newest entry is silently overwritten.  Returns True if an
        overwrite happened so callers/tests can assert protocol safety.
        """
        return self.inbound.put_overwrite(_check_u32(value, "inbound mailbox"))

    def ppe_read_outbound(self) -> Event:
        """PPE blocking read of the SPE's outbound mailbox."""
        return self.outbound.get()

    def ppe_try_read_outbound(self) -> typing.Optional[int]:
        """PPE polling read; None when the mailbox is empty."""
        if self.outbound.count == 0:
            return None
        return self.outbound.try_get()

    def ppe_outbound_count(self) -> int:
        """What the mailbox-status MMIO register would report."""
        return self.outbound.count

    def ppe_inbound_space(self) -> int:
        return self.inbound.free
