"""Machine configuration.

Defaults approximate a 3.2 GHz Cell BE blade (QS20-class): 8 SPEs,
256 KB local stores, a ~26.7 MHz timebase (one tick per 120 SPU
cycles), four EIB data rings moving 8 bytes per SPU cycle each.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class ClockSpec:
    """Clock-domain description for one SPU's decrementer.

    ``offset_cycles``
        How many SPU cycles after machine time 0 this decrementer was
        loaded (models SPEs being started at different moments).
    ``start_value``
        The 32-bit value software loaded into the decrementer.
    ``drift_ppm``
        Deviation of this SPU's effective tick period from nominal, in
        parts per million.  Real decrementers share the timebase
        oscillator, but observed *software* clock relations drift
        because of sampling and temperature; PDT's correlation step
        has to cope, so the model lets tests dial drift in.
    """

    offset_cycles: int = 0
    start_value: int = 0xFFFF_FFFF
    drift_ppm: float = 0.0


@dataclasses.dataclass(frozen=True)
class DmaTimings:
    """Latency/bandwidth knobs for the MFC + EIB + memory path."""

    #: Fixed MFC command processing latency, SPU cycles.
    mfc_issue_latency: int = 30
    #: Extra latency for touching main storage (XDR DRAM), SPU cycles.
    memory_latency: int = 300
    #: EIB payload bandwidth per ring, bytes per SPU cycle.
    eib_bytes_per_cycle: int = 8
    #: Number of EIB data rings usable concurrently.
    eib_rings: int = 4
    #: Per-transfer EIB arbitration/command latency, SPU cycles.
    eib_command_latency: int = 50
    #: Extra latency per ring hop between the source and destination
    #: units, SPU cycles.  The EIB is a ring: transfers between distant
    #: units travel more hops (0 disables the placement effect).
    eib_hop_latency: int = 4
    #: Largest single DMA command the MFC accepts, bytes.
    max_dma_size: int = 16 * 1024
    #: MFC command queue depth (SPU-side).
    queue_depth: int = 16
    #: Proxy (PPE-side) command queue depth.
    proxy_queue_depth: int = 8
    #: How many commands one MFC keeps in flight on the EIB at once.
    mfc_parallel: int = 2


@dataclasses.dataclass(frozen=True)
class CellConfig:
    """Full machine configuration."""

    n_spes: int = 8
    spu_clock_hz: float = 3.2e9
    #: SPU cycles per timebase tick (3.2 GHz / 120 = 26.67 MHz timebase).
    timebase_divider: int = 120
    local_store_size: int = 256 * 1024
    main_memory_size: int = 256 * 1024 * 1024
    inbound_mailbox_depth: int = 4
    outbound_mailbox_depth: int = 1
    #: SPU channel instruction cost, cycles.
    channel_latency: int = 6
    #: PPE MMIO access to SPE problem-state registers, SPU cycles.
    mmio_latency: int = 200
    dma: DmaTimings = dataclasses.field(default_factory=DmaTimings)
    #: Per-SPU decrementer clock specs; entries beyond len() use defaults.
    spu_clocks: typing.Tuple[ClockSpec, ...] = ()

    def __post_init__(self) -> None:
        if not 1 <= self.n_spes <= 16:
            raise ValueError(f"n_spes must be 1..16, got {self.n_spes}")
        if self.timebase_divider < 1:
            raise ValueError("timebase_divider must be >= 1")
        if self.local_store_size % 1024:
            raise ValueError("local_store_size must be a multiple of 1 KiB")

    def clock_spec(self, spe_id: int) -> ClockSpec:
        """Decrementer spec for one SPE (default if not configured)."""
        if spe_id < len(self.spu_clocks):
            return self.spu_clocks[spe_id]
        return ClockSpec()

    def with_skewed_clocks(
        self,
        offsets: typing.Sequence[int],
        drifts_ppm: typing.Optional[typing.Sequence[float]] = None,
    ) -> "CellConfig":
        """A copy of this config with per-SPU clock offset/drift set.

        Convenience for the clock-correlation experiments.
        """
        drifts = list(drifts_ppm) if drifts_ppm is not None else [0.0] * len(offsets)
        if len(drifts) != len(offsets):
            raise ValueError("offsets and drifts_ppm must have equal length")
        specs = tuple(
            ClockSpec(offset_cycles=off, drift_ppm=drift)
            for off, drift in zip(offsets, drifts)
        )
        return dataclasses.replace(self, spu_clocks=specs)
