"""Machine assembly: one object wiring the whole Cell BE together."""

from __future__ import annotations

import typing

from repro.cell.addressing import AddressMap
from repro.cell.atomic import ReservationStation
from repro.cell.config import CellConfig
from repro.cell.eib import Eib
from repro.cell.memory import MainMemory
from repro.cell.ppe import PpeCore
from repro.cell.spu import SpuCore
from repro.kernel import Process, Simulator


class CellMachine:
    """A complete simulated Cell BE.

    Typical use::

        machine = CellMachine(CellConfig(n_spes=4))
        machine.sim.spawn(my_ppe_program(machine))
        machine.run()

    Most users should go through :mod:`repro.libspe` instead of
    touching cores directly — that layer provides the libspe2-style
    API the paper's tools instrument.
    """

    def __init__(self, config: typing.Optional[CellConfig] = None):
        self.config = config or CellConfig()
        self.sim = Simulator()
        self.memory = MainMemory(self.config.main_memory_size)
        self.eib = Eib(self.sim, self.config.dma, n_spes=self.config.n_spes)
        self.ppe = PpeCore(self.sim, self.config)
        self.reservations = ReservationStation()
        # Two-phase construction: local stores must exist before the
        # address map that aliases them can be built, and every MFC
        # shares that one map plus the one reservation station.
        self.spes: typing.List[SpuCore] = [
            SpuCore(
                self.sim, spe_id, self.config, self.memory, self.eib,
                reservations=self.reservations,
            )
            for spe_id in range(self.config.n_spes)
        ]
        self.address_map = AddressMap(self.memory, [s.ls for s in self.spes])
        for spe in self.spes:
            spe.mfc.address_map = self.address_map

    def spe(self, spe_id: int) -> SpuCore:
        if not 0 <= spe_id < len(self.spes):
            raise IndexError(
                f"SPE id {spe_id} out of range (machine has {len(self.spes)})"
            )
        return self.spes[spe_id]

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        """Spawn a process on this machine's simulator."""
        return self.sim.spawn(generator, name=name)

    def run(self, until: typing.Optional[int] = None) -> int:
        """Run the machine; returns the final time (SPU cycles).

        Closes every SPE's ground-truth state track so totals include
        the final open interval.
        """
        end = self.sim.run(until=until)
        for spe in self.spes:
            spe.track.close()
        return end

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles / self.config.spu_clock_hz

    def cycles_to_us(self, cycles: int) -> float:
        return cycles / self.config.spu_clock_hz * 1e6
