"""Cell Broadband Engine simulator.

A cycle-approximate model of the hardware the paper's tools run on:

* one PPE (dual-threaded PowerPC core) — :mod:`repro.cell.ppe`
* up to 16 SPEs, each with a 256 KB local store, an MFC DMA engine,
  mailboxes and signal-notification registers — :mod:`repro.cell.spu`,
  :mod:`repro.cell.mfc`, :mod:`repro.cell.mailbox`
* the Element Interconnect Bus joining them to main storage —
  :mod:`repro.cell.eib`
* the clock fabric PDT must correlate: a PPE-visible timebase and
  per-SPU decrementers with configurable offset and drift —
  :mod:`repro.cell.clock`

The base time unit everywhere is one SPU cycle (3.2 GHz by default).

The simulator is *behaviour- and contention-accurate* rather than
instruction-accurate: programs express computation as explicit cycle
counts, while every architected communication mechanism (DMA commands,
tag-group waits, mailboxes, signals) is modelled with queuing,
ordering, and bandwidth effects.  That is the right fidelity for this
paper: PDT records exactly these communication events, and its
overhead story is about stolen SPU cycles, local-store space, and DMA
bandwidth — all of which this model charges for real.
"""

from repro.cell.config import CellConfig, ClockSpec, DmaTimings
from repro.cell.clock import Decrementer, TimeBase
from repro.cell.eib import Eib
from repro.cell.machine import CellMachine
from repro.cell.mailbox import MailboxSet, SignalRegister
from repro.cell.memory import AlignmentError, LocalStore, MainMemory, MemoryError_
from repro.cell.mfc import DmaCommand, DmaDirection, Mfc
from repro.cell.ppe import PpeCore
from repro.cell.spu import SpuCore, SpuState

__all__ = [
    "AlignmentError",
    "CellConfig",
    "CellMachine",
    "ClockSpec",
    "Decrementer",
    "DmaCommand",
    "DmaDirection",
    "DmaTimings",
    "Eib",
    "LocalStore",
    "MailboxSet",
    "MainMemory",
    "MemoryError_",
    "Mfc",
    "PpeCore",
    "SignalRegister",
    "SpuCore",
    "SpuState",
    "TimeBase",
]
