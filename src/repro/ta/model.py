"""Timeline reconstruction from PDT traces.

The trace is a flat stream of point events; the analyzer's first job
is turning it back into *state*: what was each SPU doing during every
cycle of the run, and when was each DMA command in flight.  Everything
here works purely from trace records — the simulator's ground truth is
never consulted (tests compare against it separately).

:func:`analyze` accepts either an in-memory
:class:`~repro.pdt.trace.Trace` or any
:class:`~repro.pdt.store.EventSource` (e.g. a trace file opened with
:func:`repro.pdt.open_trace`), and builds the model *streaming*: each
per-core timeline consumes its placed-event stream chunk by chunk, so
the model's memory footprint is set by the reconstructed intervals, not
the record count.  :func:`analyze_materialized` keeps the seed's
list-of-objects path as the reference implementation the streaming one
is checked against.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.libspe.hooks import SpuEventKind
from repro.pdt.correlate import (
    ClockCorrelator,
    CorrelatedTrace,
    PlacedEvent,
    PlacedRecord,
)
from repro.pdt.events import KIND_TRACE_LOSS, SIDE_SPE
from repro.pdt.store import EventSource
from repro.pdt.trace import Trace

#: Either placed representation: both expose time/kind/fields/core/is_spe.
Placed = typing.Union[PlacedEvent, PlacedRecord]

# Reconstructed SPU states (strings, to keep the analyzer decoupled
# from the simulator's ground-truth enum).
STATE_RUN = "run"
STATE_WAIT_DMA = "wait_dma"
STATE_WAIT_MBOX = "wait_mbox"
STATE_WAIT_SIGNAL = "wait_signal"
STATE_IDLE = "idle"
#: Not an SPU state: marks the span over which trace records were
#: destroyed (region full / wrap), i.e. the timeline there is blind.
STATE_LOST = "lost"

WAIT_STATES = (STATE_WAIT_DMA, STATE_WAIT_MBOX, STATE_WAIT_SIGNAL)

#: begin-record kind -> (end-record kind, reconstructed state)
_WAIT_PAIRS = {
    SpuEventKind.WAIT_TAG_BEGIN: (SpuEventKind.WAIT_TAG_END, STATE_WAIT_DMA),
    SpuEventKind.READ_MBOX_BEGIN: (SpuEventKind.READ_MBOX_END, STATE_WAIT_MBOX),
    SpuEventKind.WRITE_MBOX_BEGIN: (SpuEventKind.WRITE_MBOX_END, STATE_WAIT_MBOX),
    SpuEventKind.READ_SIGNAL_BEGIN: (SpuEventKind.READ_SIGNAL_END, STATE_WAIT_SIGNAL),
}

_DMA_ISSUE_KINDS = {
    SpuEventKind.MFC_GET: "get",
    SpuEventKind.MFC_PUT: "put",
    SpuEventKind.MFC_GETL: "get",
    SpuEventKind.MFC_PUTL: "put",
}


class ModelError(Exception):
    """The trace is structurally inconsistent (unpaired waits etc.)."""


@dataclasses.dataclass(frozen=True, slots=True)
class Interval:
    """A half-open time span [start, end) in one state."""

    start: int
    end: int
    state: str

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclasses.dataclass
class DmaSpan:
    """One DMA command's observable lifetime.

    ``end`` is the time of the tag-group wait that *observed* the
    completion — the real PDT cannot see the MFC finish a command, only
    software noticing it, and neither can we.  Spans never observed
    (program exited without waiting on the tag) carry
    ``observed=False`` and end at the window edge.
    """

    spe_id: int
    issue_time: int
    end: int
    tag: int
    size: int
    direction: str  # "get" | "put"
    observed: bool = True

    @property
    def duration(self) -> int:
        return self.end - self.issue_time


@dataclasses.dataclass
class MailboxOp:
    """One mailbox/signal operation interval on an SPE."""

    spe_id: int
    start: int
    end: int
    kind: str  # the begin-record kind
    value: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclasses.dataclass
class LossCounts:
    """Event loss one SPE's ``trace_loss`` record reported.

    ``first_lost_ts``/``last_lost_ts`` are raw decrementer readings
    bounding the destruction (-1 when unknown); the model maps them to
    global time in :meth:`TimelineModel.loss_intervals`.
    """

    dropped: int = 0
    overwritten: int = 0
    wraps: int = 0
    first_lost_ts: int = -1
    last_lost_ts: int = -1

    @property
    def total(self) -> int:
        return self.dropped + self.overwritten


@dataclasses.dataclass
class CoreTimeline:
    """Everything reconstructed about one SPE.

    A physical SPE may execute several programs over the trace
    (virtual contexts rotating through it); ``segments`` holds one
    (entry, exit) pair per program run and ``intervals`` covers the
    whole span with IDLE between segments.
    """

    spe_id: int
    window_start: int  # first spe_entry time
    window_end: int  # last spe_exit time (or last record if missing)
    intervals: typing.List[Interval]
    dma_spans: typing.List[DmaSpan]
    mailbox_ops: typing.List[MailboxOp]
    exit_observed: bool
    segments: typing.List[typing.Tuple[int, int]] = dataclasses.field(
        default_factory=list
    )
    #: Event loss reported by this SPE's trace_loss record, if any.
    loss: typing.Optional[LossCounts] = None

    @property
    def window(self) -> int:
        return self.window_end - self.window_start

    def time_in(self, state: str) -> int:
        return sum(i.duration for i in self.intervals if i.state == state)

    def run_intervals(self) -> typing.List[Interval]:
        return [i for i in self.intervals if i.state == STATE_RUN]


@dataclasses.dataclass
class PpeRunSpan:
    """A context_run_begin..end span observed on the PPE."""

    spe_id: int
    start: int
    end: int
    stop_code: int


@dataclasses.dataclass
class DataQuality:
    """How much of the run's evidence the trace actually carries.

    Combines the tracer's in-band loss reports (``trace_loss`` records:
    region-full drops, wrap overwrites) with the reader's
    :class:`~repro.pdt.reader.SalvageReport` from a non-strict read
    (corrupt chunks skipped, truncation), so one object answers "what
    is this analysis blind to?".
    """

    dropped: int
    overwritten: int
    wraps: int
    corrupt_chunks: int
    salvage_lost: int
    truncated: bool
    per_spe: typing.Dict[int, LossCounts]
    intervals: typing.Dict[int, Interval]

    @property
    def records_lost(self) -> int:
        return self.dropped + self.overwritten + self.salvage_lost

    @property
    def clean(self) -> bool:
        return (
            self.records_lost == 0
            and self.corrupt_chunks == 0
            and not self.truncated
        )

    def summary(self) -> str:
        return (
            f"{self.records_lost} records lost: {self.dropped} dropped at "
            f"region full, {self.overwritten} overwritten by wrap, "
            f"{self.corrupt_chunks} corrupt chunks skipped"
        )


class TimelineModel:
    """The reconstructed execution: per-SPE timelines + PPE spans.

    Holds the compact reconstruction (intervals, spans, runs) plus the
    fitted :class:`ClockCorrelator`.  The seed's heavyweight members —
    ``trace`` (object records) and ``correlated`` (every record placed
    and sorted in memory) — are kept as *lazy* compatibility
    properties: streaming consumers use :meth:`iter_placed` and never
    pay for them.
    """

    def __init__(
        self,
        cores: typing.Dict[int, CoreTimeline],
        ppe_runs: typing.List[PpeRunSpan],
        correlator: ClockCorrelator,
        source: typing.Optional[EventSource] = None,
        trace: typing.Optional[Trace] = None,
        correlated: typing.Optional[CorrelatedTrace] = None,
    ):
        self.cores = cores
        self.ppe_runs = ppe_runs
        self.correlator = correlator
        self.source = source if source is not None else correlator.source
        #: SalvageReport from a non-strict read, carried through the
        #: correlator; None for clean strict reads.
        self.salvage = getattr(correlator, "salvage", None)
        self._trace = trace
        self._correlated = correlated

    @property
    def trace(self) -> Trace:
        """A materialized :class:`Trace` (compatibility; lazy)."""
        if self._trace is None:
            trace = Trace(header=self.source.header)
            for chunk in self.source.iter_chunks():
                trace.store.adopt_chunk(chunk)
            self._trace = trace
        return self._trace

    @property
    def correlated(self) -> CorrelatedTrace:
        """The fully materialized placement (compatibility; lazy)."""
        if self._correlated is None:
            self._correlated = CorrelatedTrace.build(self.trace)
        return self._correlated

    def iter_placed(self) -> typing.Iterator[PlacedEvent]:
        """Every record placed on the global timeline, streamed in the
        global sort order (equals ``correlated.placed`` order)."""
        return self.correlator.iter_placed()

    @property
    def t_start(self) -> int:
        starts = [c.window_start for c in self.cores.values()]
        starts += [r.start for r in self.ppe_runs]
        return min(starts) if starts else 0

    @property
    def t_end(self) -> int:
        ends = [c.window_end for c in self.cores.values()]
        ends += [r.end for r in self.ppe_runs]
        return max(ends) if ends else 0

    def core(self, spe_id: int) -> CoreTimeline:
        try:
            return self.cores[spe_id]
        except KeyError:
            raise ModelError(f"trace has no records for SPE {spe_id}") from None

    def loss_intervals(self) -> typing.Dict[int, Interval]:
        """Per-SPE global-time spans where records were destroyed.

        Built by mapping each ``trace_loss`` record's raw decrementer
        bounds through the fitted clock — the explicit "the timeline is
        blind here" intervals.
        """
        intervals: typing.Dict[int, Interval] = {}
        for spe_id, core in sorted(self.cores.items()):
            loss = core.loss
            if loss is None or loss.first_lost_ts < 0 or loss.last_lost_ts < 0:
                continue
            t0 = self.correlator.place_value(
                SIDE_SPE, spe_id, loss.first_lost_ts
            )
            t1 = self.correlator.place_value(SIDE_SPE, spe_id, loss.last_lost_ts)
            intervals[spe_id] = Interval(min(t0, t1), max(t0, t1), STATE_LOST)
        return intervals

    def data_quality(self) -> DataQuality:
        """Aggregate tracer-reported loss + reader salvage loss."""
        per_spe = {
            spe_id: core.loss
            for spe_id, core in sorted(self.cores.items())
            if core.loss is not None
        }
        salvage = self.salvage
        return DataQuality(
            dropped=sum(l.dropped for l in per_spe.values()),
            overwritten=sum(l.overwritten for l in per_spe.values()),
            wraps=sum(l.wraps for l in per_spe.values()),
            corrupt_chunks=salvage.chunks_dropped if salvage else 0,
            salvage_lost=salvage.records_lost if salvage else 0,
            truncated=bool(salvage.truncated) if salvage else False,
            per_spe=per_spe,
            intervals=self.loss_intervals(),
        )


def analyze(trace: typing.Union[Trace, EventSource]) -> TimelineModel:
    """Build the timeline model (correlates clocks first).

    For an :class:`EventSource` the model is built *streaming*: each
    SPE's timeline consumes its placed-event stream in recording order
    (identical to the global order restricted to the core), and the PPE
    spans the tie-resolved PPE stream — O(chunk) memory, no record
    objects.  A :class:`Trace` goes through the materialized
    compatibility path, which honors edits made to its record-list
    views.
    """
    if isinstance(trace, Trace):
        return analyze_materialized(trace)
    correlator = ClockCorrelator(trace)
    # One demultiplexed scan feeds every per-core builder plus the PPE
    # builder simultaneously — the chunks are decoded once, not once
    # per stream.
    builders = {
        spe_id: _Consumer(_core_timeline_builder(spe_id))
        for spe_id in correlator.spe_ids()
    }
    ppe_builder = _Consumer(_ppe_runs_builder())
    for stream, placed in correlator.iter_demuxed():
        if stream is None:
            ppe_builder.feed(placed)
        else:
            builders[stream].feed(placed)
    return TimelineModel(
        cores={spe_id: b.finish() for spe_id, b in builders.items()},
        ppe_runs=ppe_builder.finish(),
        correlator=correlator,
    )


def analyze_materialized(trace: Trace) -> TimelineModel:
    """The seed's list-based path: place and sort every record as an
    object, then build timelines from the materialized streams.

    Kept as the reference implementation (and the baseline the
    streaming path's memory/time wins are measured against in
    ``benchmarks/test_t5_columnar.py``)."""
    correlated = CorrelatedTrace.build(trace)
    cores = {
        spe_id: _build_core_timeline(spe_id, correlated.spe_stream(spe_id))
        for spe_id in sorted(trace.spe_records)
    }
    return TimelineModel(
        cores=cores,
        ppe_runs=_build_ppe_runs(correlated.ppe_stream),
        correlator=correlated.correlator,
        trace=trace,
        correlated=correlated,
    )


# ----------------------------------------------------------------------
# per-SPE reconstruction
# ----------------------------------------------------------------------
#: End-of-stream sentinel sent to builder coroutines.
_DONE = object()


class _Consumer:
    """Drives a builder coroutine: prime it, feed events, collect the
    result.  Lets one demultiplexed scan advance many builders at once
    — the generator keeps its whole state machine in local variables."""

    __slots__ = ("_gen",)

    def __init__(self, gen: typing.Generator):
        self._gen = gen
        next(gen)  # run to the first yield

    def feed(self, placed: Placed) -> None:
        self._gen.send(placed)

    def finish(self):
        try:
            self._gen.send(_DONE)
        except StopIteration as stop:
            return stop.value
        raise AssertionError("builder coroutine did not finish")


def _build_core_timeline(
    spe_id: int, stream: typing.Iterable[Placed]
) -> CoreTimeline:
    """Build one SPE's timeline from an in-order placed stream."""
    consumer = _Consumer(_core_timeline_builder(spe_id))
    for placed in stream:
        consumer.feed(placed)
    return consumer.finish()


def _core_timeline_builder(spe_id: int) -> typing.Generator:
    entries: typing.List[int] = []
    exits: typing.List[int] = []
    wait_intervals: typing.List[Interval] = []
    mailbox_ops: typing.List[MailboxOp] = []
    open_wait: typing.Optional[typing.Tuple[str, str, int]] = None  # (end_kind, state, t0)
    open_begin_kind = ""
    dma_open: typing.Dict[int, typing.List[typing.Tuple[int, int, str]]] = {}
    dma_spans: typing.List[DmaSpan] = []
    first_time: typing.Optional[int] = None
    last_time = 0
    loss: typing.Optional[LossCounts] = None

    while True:
        placed = yield
        if placed is _DONE:
            break
        kind = placed.kind
        if kind == KIND_TRACE_LOSS:
            # Stream metadata written at trace close, not an SPU event:
            # capture the counts without touching the activity window.
            f = placed.fields
            loss = LossCounts(
                dropped=f.get("dropped", 0),
                overwritten=f.get("overwritten", 0),
                wraps=f.get("wraps", 0),
                first_lost_ts=f.get("first_lost_ts", -1),
                last_lost_ts=f.get("last_lost_ts", -1),
            )
            continue
        time = placed.time
        if first_time is None:
            first_time = time
        last_time = time
        if kind == SpuEventKind.SPE_ENTRY:
            entries.append(time)
        elif kind == SpuEventKind.SPE_EXIT:
            exits.append(time)
        elif kind in _WAIT_PAIRS:
            if open_wait is not None:
                raise ModelError(
                    f"SPE {spe_id}: wait {kind} begins inside open wait "
                    f"{open_begin_kind} at t={time}"
                )
            end_kind, state = _WAIT_PAIRS[kind]
            open_wait = (end_kind, state, time)
            open_begin_kind = kind
        elif open_wait is not None and kind == open_wait[0]:
            end_kind, state, t0 = open_wait
            wait_intervals.append(Interval(t0, time, state))
            if state in (STATE_WAIT_MBOX, STATE_WAIT_SIGNAL):
                mailbox_ops.append(
                    MailboxOp(
                        spe_id=spe_id, start=t0, end=time,
                        kind=open_begin_kind,
                        value=placed.fields.get("value", 0),
                    )
                )
            if kind == SpuEventKind.WAIT_TAG_END:
                _close_dma_spans(
                    spe_id, dma_open, dma_spans,
                    status=placed.fields.get("status", 0), end_time=time,
                )
            open_wait = None
        elif kind in _DMA_ISSUE_KINDS:
            tag = placed.fields["tag"]
            dma_open.setdefault(tag, []).append(
                (time, placed.fields["size"], _DMA_ISSUE_KINDS[kind])
            )
        # sync / user markers need no state handling

    if open_wait is not None:
        raise ModelError(
            f"SPE {spe_id}: wait {open_begin_kind} never ended "
            "(truncated trace?)"
        )
    if not entries:
        if first_time is None:
            return CoreTimeline(
                spe_id, 0, 0, [], [], [], exit_observed=False, loss=loss
            )
        entries = [first_time]
    # Pair entries with exits in order; an unmatched final entry
    # (program still running when tracing stopped) closes at the last
    # record.
    exit_observed = len(exits) >= len(entries)
    while len(exits) < len(entries):
        exits.append(last_time)
    segments = list(zip(entries, exits))
    entry_time = segments[0][0]
    exit_time = segments[-1][1]

    # Unobserved DMA completions close at the window edge.
    for tag, issues in sorted(dma_open.items()):
        for issue_time, size, direction in issues:
            dma_spans.append(
                DmaSpan(
                    spe_id=spe_id, issue_time=issue_time, end=exit_time,
                    tag=tag, size=size, direction=direction, observed=False,
                )
            )
    dma_spans.sort(key=lambda s: (s.issue_time, s.tag))

    intervals = _fill_segmented_intervals(segments, wait_intervals)
    return CoreTimeline(
        spe_id=spe_id,
        window_start=entry_time,
        window_end=exit_time,
        intervals=intervals,
        dma_spans=dma_spans,
        mailbox_ops=mailbox_ops,
        exit_observed=exit_observed,
        segments=segments,
        loss=loss,
    )


def _close_dma_spans(
    spe_id: int,
    dma_open: typing.Dict[int, typing.List[typing.Tuple[int, int, str]]],
    dma_spans: typing.List[DmaSpan],
    status: int,
    end_time: int,
) -> None:
    """A tag wait returned ``status``: those tag groups are quiescent."""
    for tag in list(dma_open):
        if status & (1 << tag):
            for issue_time, size, direction in dma_open.pop(tag):
                dma_spans.append(
                    DmaSpan(
                        spe_id=spe_id, issue_time=issue_time, end=end_time,
                        tag=tag, size=size, direction=direction, observed=True,
                    )
                )


def _fill_segmented_intervals(
    segments: typing.Sequence[typing.Tuple[int, int]],
    waits: typing.List[Interval],
) -> typing.List[Interval]:
    """Per-segment run/wait tiling, with IDLE between segments."""
    intervals: typing.List[Interval] = []
    previous_end: typing.Optional[int] = None
    for start, end in segments:
        if previous_end is not None and start > previous_end:
            intervals.append(Interval(previous_end, start, STATE_IDLE))
        segment_waits = [
            w for w in waits if w.start < end and w.end > start
        ]
        intervals.extend(_fill_run_intervals(start, end, segment_waits))
        previous_end = max(end, previous_end or end)
    return intervals


def _fill_run_intervals(
    start: int, end: int, waits: typing.List[Interval]
) -> typing.List[Interval]:
    """Complement the wait intervals with RUN time over [start, end)."""
    intervals: typing.List[Interval] = []
    cursor = start
    for wait in sorted(waits, key=lambda i: i.start):
        clipped_start = max(wait.start, start)
        clipped_end = min(wait.end, end)
        if clipped_start > cursor:
            intervals.append(Interval(cursor, clipped_start, STATE_RUN))
        if clipped_end > clipped_start:
            intervals.append(Interval(clipped_start, clipped_end, wait.state))
            cursor = max(cursor, clipped_end)
    if cursor < end:
        intervals.append(Interval(cursor, end, STATE_RUN))
    return intervals


# ----------------------------------------------------------------------
# PPE reconstruction
# ----------------------------------------------------------------------
def _build_ppe_runs(stream: typing.Iterable[Placed]) -> typing.List[PpeRunSpan]:
    """Build the PPE run spans from an in-order placed stream."""
    consumer = _Consumer(_ppe_runs_builder())
    for placed in stream:
        consumer.feed(placed)
    return consumer.finish()


def _ppe_runs_builder() -> typing.Generator:
    open_runs: typing.Dict[int, int] = {}
    runs: typing.List[PpeRunSpan] = []
    while True:
        placed = yield
        if placed is _DONE:
            break
        kind = placed.kind
        if kind == "context_run_begin":
            open_runs[placed.fields["spe"]] = placed.time
        elif kind == "context_run_end":
            spe = placed.fields["spe"]
            start = open_runs.pop(spe, None)
            if start is None:
                raise ModelError(f"context_run_end for SPE {spe} without begin")
            runs.append(
                PpeRunSpan(
                    spe_id=spe, start=start, end=placed.time,
                    stop_code=placed.fields.get("stop_code", 0),
                )
            )
    runs.sort(key=lambda r: (r.start, r.spe_id))
    return runs
