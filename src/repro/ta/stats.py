"""Statistics over the reconstructed timeline.

These are the numbers the Trace Analyzer's statistics panes show:
per-SPE utilization and stall breakdown, DMA latency and bandwidth
distributions, and mailbox traffic — plus the aggregates the use cases
build on (load imbalance, dominant stall cause).
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.pdt.events import SIDE_SPE
from repro.ta.model import (
    _DMA_ISSUE_KINDS,
    STATE_RUN,
    STATE_WAIT_DMA,
    STATE_WAIT_MBOX,
    STATE_WAIT_SIGNAL,
    CoreTimeline,
    TimelineModel,
)
from repro.tq import Query


@dataclasses.dataclass
class DmaStatistics:
    """DMA behaviour of one SPE as observed through the trace."""

    count: int
    bytes_get: int
    bytes_put: int
    #: Issue-to-observed-completion latency of each observed span.
    latencies: np.ndarray

    @property
    def total_bytes(self) -> int:
        return self.bytes_get + self.bytes_put

    @property
    def mean_latency(self) -> float:
        return float(self.latencies.mean()) if self.latencies.size else 0.0

    @property
    def p95_latency(self) -> float:
        return float(np.percentile(self.latencies, 95)) if self.latencies.size else 0.0

    @property
    def max_latency(self) -> int:
        return int(self.latencies.max()) if self.latencies.size else 0

    def latency_histogram(self, bins: int = 10) -> typing.Tuple[np.ndarray, np.ndarray]:
        """(counts, bin_edges) over observed latencies."""
        if not self.latencies.size:
            return np.zeros(bins, dtype=int), np.linspace(0.0, 1.0, bins + 1)
        return np.histogram(self.latencies, bins=bins)


@dataclasses.dataclass
class SpeStatistics:
    """One SPE's summary row."""

    spe_id: int
    window: int
    run_cycles: int
    wait_dma_cycles: int
    wait_mbox_cycles: int
    wait_signal_cycles: int
    dma: DmaStatistics
    mailbox_reads: int
    mailbox_writes: int

    @property
    def stall_cycles(self) -> int:
        return self.wait_dma_cycles + self.wait_mbox_cycles + self.wait_signal_cycles

    @property
    def utilization(self) -> float:
        """Fraction of the SPE's window spent computing."""
        return self.run_cycles / self.window if self.window else 0.0

    def stall_fraction(self, state: str) -> float:
        cycles = {
            STATE_WAIT_DMA: self.wait_dma_cycles,
            STATE_WAIT_MBOX: self.wait_mbox_cycles,
            STATE_WAIT_SIGNAL: self.wait_signal_cycles,
        }[state]
        return cycles / self.window if self.window else 0.0

    @property
    def effective_bandwidth(self) -> float:
        """Bytes moved per cycle of window (observed, not peak)."""
        return self.dma.total_bytes / self.window if self.window else 0.0


@dataclasses.dataclass
class TraceStatistics:
    """Whole-run statistics: the TA's summary table."""

    per_spe: typing.Dict[int, SpeStatistics]
    span: int  # earliest window start to latest window end

    @classmethod
    def from_model(cls, model: TimelineModel) -> "TraceStatistics":
        per_spe = {
            spe_id: _spe_stats(core) for spe_id, core in sorted(model.cores.items())
        }
        return cls(per_spe=per_spe, span=model.t_end - model.t_start)

    @classmethod
    def from_source(cls, source) -> "TraceStatistics":
        """Statistics straight from a Trace, EventSource, or shared
        :class:`~repro.pdt.handle.TraceHandle` (streams the analysis;
        never materializes record objects)."""
        from repro.pdt.handle import TraceHandle
        from repro.ta.model import analyze

        if isinstance(source, TraceHandle):
            source = source.source()
        return cls.from_model(analyze(source))

    # ------------------------------------------------------------------
    @property
    def n_spes(self) -> int:
        return len(self.per_spe)

    @property
    def total_run_cycles(self) -> int:
        return sum(s.run_cycles for s in self.per_spe.values())

    @property
    def total_dma_bytes(self) -> int:
        return sum(s.dma.total_bytes for s in self.per_spe.values())

    @property
    def imbalance_factor(self) -> float:
        """max(busy) / mean(busy) across SPEs (1.0 = perfectly even)."""
        busy = [s.run_cycles for s in self.per_spe.values()]
        if not busy or sum(busy) == 0:
            return 1.0
        return max(busy) / (sum(busy) / len(busy))

    def dominant_stall(self) -> typing.Tuple[str, int]:
        """(state, cycles) of the largest aggregate stall cause."""
        totals = {
            STATE_WAIT_DMA: sum(s.wait_dma_cycles for s in self.per_spe.values()),
            STATE_WAIT_MBOX: sum(s.wait_mbox_cycles for s in self.per_spe.values()),
            STATE_WAIT_SIGNAL: sum(s.wait_signal_cycles for s in self.per_spe.values()),
        }
        state = max(sorted(totals), key=lambda k: totals[k])
        return state, totals[state]

    def summary_rows(self) -> typing.List[typing.Dict[str, typing.Union[int, float]]]:
        """Per-SPE rows for tables/CSV (plain dicts, stable key order)."""
        rows = []
        for spe_id, s in sorted(self.per_spe.items()):
            rows.append(
                {
                    "spe": spe_id,
                    "window_cycles": s.window,
                    "run_cycles": s.run_cycles,
                    "wait_dma_cycles": s.wait_dma_cycles,
                    "wait_mbox_cycles": s.wait_mbox_cycles,
                    "wait_signal_cycles": s.wait_signal_cycles,
                    "utilization": round(s.utilization, 4),
                    "dma_count": s.dma.count,
                    "dma_bytes": s.dma.total_bytes,
                    "dma_mean_latency": round(s.dma.mean_latency, 1),
                    "dma_p95_latency": round(s.dma.p95_latency, 1),
                    "mailbox_reads": s.mailbox_reads,
                    "mailbox_writes": s.mailbox_writes,
                }
            )
        return rows


def _run_rows(query, jobs: int):
    """Execute a grouped query, fanning out over ``jobs`` worker
    processes when asked (byte-identical either way)."""
    if jobs > 1:
        from repro.par import parallel_rows

        return parallel_rows(query, jobs)
    return query.run()


def source_summary_rows(
    source,
    t0: typing.Optional[int] = None,
    t1: typing.Optional[int] = None,
    spe: typing.Optional[int] = None,
    jobs: int = 1,
) -> typing.List[typing.Dict[str, typing.Union[int, float]]]:
    """Per-SPE aggregation straight from an event source, via tq.

    The query-pipeline counterpart of :meth:`TraceStatistics.from_source`
    for targeted questions: record counts, observed time extent, and
    the DMA-issue profile per SPE — restricted to a time window and/or
    one SPE without scanning the rest of the trace (the filters push
    down into the source's zone maps).  Unlike the timeline model this
    does no interval pairing, so it reports issue-side truth only.
    With ``jobs > 1`` the underlying scans shard across worker
    processes (:mod:`repro.par`); the rows are byte-identical.
    ``source`` may be a Trace source or a shared
    :class:`~repro.pdt.handle.TraceHandle` (:class:`~repro.tq.Query`
    accepts both and reuses a handle's clock fit).
    """
    base = Query(source).where(t0=t0, t1=t1, spe=spe, side=SIDE_SPE)
    totals = _run_rows(
        base.groupby("spe").agg(
            events="count", t_first=("min", "time"), t_last=("max", "time")
        ),
        jobs,
    )
    dma = _run_rows(
        base.where(event=list(_DMA_ISSUE_KINDS))
        .groupby("spe")
        .agg(
            dma_count="count",
            dma_bytes=("sum", "size"),
            dma_mean_bytes=("mean", "size"),
            dma_p99_bytes=("p99", "size"),
        ),
        jobs,
    )
    by_spe = {row["spe"]: row for row in dma}
    rows = []
    for row in totals:
        issue = by_spe.get(
            row["spe"],
            {"dma_count": 0, "dma_bytes": None, "dma_mean_bytes": None,
             "dma_p99_bytes": None},
        )
        rows.append(
            {
                "spe": row["spe"],
                "events": row["events"],
                "t_first": row["t_first"],
                "t_last": row["t_last"],
                "dma_count": issue["dma_count"],
                "dma_bytes": issue["dma_bytes"] or 0,
                "dma_mean_bytes": round(issue["dma_mean_bytes"] or 0.0, 1),
                "dma_p99_bytes": issue["dma_p99_bytes"] or 0,
            }
        )
    return rows


def _spe_stats(core: CoreTimeline) -> SpeStatistics:
    latencies = np.array(
        [span.duration for span in core.dma_spans if span.observed], dtype=float
    )
    return SpeStatistics(
        spe_id=core.spe_id,
        window=core.window,
        run_cycles=core.time_in(STATE_RUN),
        wait_dma_cycles=core.time_in(STATE_WAIT_DMA),
        wait_mbox_cycles=core.time_in(STATE_WAIT_MBOX),
        wait_signal_cycles=core.time_in(STATE_WAIT_SIGNAL),
        dma=DmaStatistics(
            count=len(core.dma_spans),
            bytes_get=sum(s.size for s in core.dma_spans if s.direction == "get"),
            bytes_put=sum(s.size for s in core.dma_spans if s.direction == "put"),
            latencies=latencies,
        ),
        mailbox_reads=sum(1 for op in core.mailbox_ops if "read" in op.kind),
        mailbox_writes=sum(1 for op in core.mailbox_ops if "write" in op.kind),
    )
