"""Timeline rendering: the TA's Gantt view as ASCII and SVG.

The original Trace Analyzer is an Eclipse GUI; for a library the
equivalent deliverables are a terminal rendering (for quick looks and
doctests) and an SVG file (for reports).  Both draw the same model:
one lane per SPE showing its reconstructed state over time, plus a
sub-lane marking when DMA was in flight.
"""

from __future__ import annotations

import typing

from repro.ta.model import (
    STATE_IDLE,
    STATE_RUN,
    STATE_WAIT_DMA,
    STATE_WAIT_MBOX,
    STATE_WAIT_SIGNAL,
    CoreTimeline,
    TimelineModel,
)

#: One character per state for the ASCII view.
STATE_CHARS = {
    STATE_RUN: "#",
    STATE_WAIT_DMA: "d",
    STATE_WAIT_MBOX: "m",
    STATE_WAIT_SIGNAL: "s",
    STATE_IDLE: ".",
}

#: Fill colors per state for the SVG view.
STATE_COLORS = {
    STATE_RUN: "#2e7d32",
    STATE_WAIT_DMA: "#c62828",
    STATE_WAIT_MBOX: "#ef6c00",
    STATE_WAIT_SIGNAL: "#6a1b9a",
    STATE_IDLE: "#e0e0e0",
}

LEGEND = (
    "legend: #=run d=wait-dma m=wait-mbox s=wait-signal .=idle "
    "_=dma-in-flight  ppe lane: concurrent running contexts"
)


def render_ascii(model: TimelineModel, width: int = 80) -> str:
    """Render the whole run as fixed-width text.

    Two rows per SPE: the state row and a DMA-in-flight row (underscore
    where at least one command was in flight during the bucket).
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    t0, t1 = model.t_start, model.t_end
    if t1 <= t0:
        return "(empty trace)\n"
    lines = [
        f"timeline: {t0} .. {t1} cycles ({t1 - t0} total), "
        f"{(t1 - t0) / width:.0f} cycles/column",
        LEGEND,
    ]
    if model.ppe_runs:
        lines.append(f"ppe   |{_ppe_row(model, t0, t1, width)}|")
    for spe_id in sorted(model.cores):
        core = model.cores[spe_id]
        lines.append(f"spe{spe_id:<2d} |{_state_row(core, t0, t1, width)}|")
        lines.append(f"  dma |{_dma_row(core, t0, t1, width)}|")
    return "\n".join(lines) + "\n"


def _bucket_bounds(t0: int, t1: int, width: int, column: int) -> typing.Tuple[int, int]:
    span = t1 - t0
    lo = t0 + span * column // width
    hi = t0 + span * (column + 1) // width
    return lo, max(hi, lo + 1)


def _state_row(core: CoreTimeline, t0: int, t1: int, width: int) -> str:
    chars = []
    for column in range(width):
        lo, hi = _bucket_bounds(t0, t1, width, column)
        chars.append(STATE_CHARS[_dominant_state(core, lo, hi)])
    return "".join(chars)


def _dominant_state(core: CoreTimeline, lo: int, hi: int) -> str:
    if hi <= core.window_start or lo >= core.window_end:
        return STATE_IDLE
    best_state, best_cover = STATE_IDLE, 0
    for interval in core.intervals:
        cover = min(hi, interval.end) - max(lo, interval.start)
        if cover > best_cover:
            best_state, best_cover = interval.state, cover
    return best_state


def _ppe_row(model: TimelineModel, t0: int, t1: int, width: int) -> str:
    """PPE lane: how many SPE contexts are running in each bucket.

    Digits 1-9 (or '+') for the time-dominant concurrent-run count,
    '.' when no context runs — the at-a-glance machine occupancy.
    """
    chars = []
    for column in range(width):
        lo, hi = _bucket_bounds(t0, t1, width, column)
        covered = 0
        for run in model.ppe_runs:
            covered += max(0, min(hi, run.end) - max(lo, run.start))
        mean_running = covered / (hi - lo)
        count = round(mean_running)
        if count <= 0:
            chars.append("." if mean_running < 0.5 else "1")
        elif count < 10:
            chars.append(str(count))
        else:
            chars.append("+")
    return "".join(chars)


def _dma_row(core: CoreTimeline, t0: int, t1: int, width: int) -> str:
    chars = []
    for column in range(width):
        lo, hi = _bucket_bounds(t0, t1, width, column)
        inflight = any(
            span.issue_time < hi and span.end > lo for span in core.dma_spans
        )
        chars.append("_" if inflight else " ")
    return "".join(chars)


# ----------------------------------------------------------------------
# SVG
# ----------------------------------------------------------------------
_LANE_HEIGHT = 24
_DMA_HEIGHT = 8
_LANE_GAP = 10
_LEFT_MARGIN = 60
_TOP_MARGIN = 30


def render_svg(model: TimelineModel, width: int = 900) -> str:
    """Render the timeline as a standalone SVG document string."""
    t0, t1 = model.t_start, model.t_end
    span = max(t1 - t0, 1)
    scale = (width - _LEFT_MARGIN - 10) / span
    n = len(model.cores)
    height = _TOP_MARGIN + n * (_LANE_HEIGHT + _DMA_HEIGHT + _LANE_GAP) + 30
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<text x="{_LEFT_MARGIN}" y="14">PDT timeline: {span} cycles '
        f"({span / 3.2e9 * 1e6:.1f} us at 3.2 GHz)</text>",
    ]
    y = _TOP_MARGIN
    for spe_id in sorted(model.cores):
        core = model.cores[spe_id]
        parts.append(
            f'<text x="4" y="{y + _LANE_HEIGHT - 8}">spe{spe_id}</text>'
        )
        for interval in core.intervals:
            x = _LEFT_MARGIN + (interval.start - t0) * scale
            w = max(interval.duration * scale, 0.5)
            color = STATE_COLORS[interval.state]
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{_LANE_HEIGHT}" fill="{color}">'
                f"<title>spe{spe_id} {interval.state} "
                f"[{interval.start}, {interval.end})</title></rect>"
            )
        dma_y = y + _LANE_HEIGHT + 1
        for dma in core.dma_spans:
            x = _LEFT_MARGIN + (dma.issue_time - t0) * scale
            w = max(dma.duration * scale, 0.5)
            parts.append(
                f'<rect x="{x:.1f}" y="{dma_y}" width="{w:.1f}" '
                f'height="{_DMA_HEIGHT}" fill="#1565c0" opacity="0.7">'
                f"<title>{dma.direction} tag={dma.tag} size={dma.size} "
                f"latency={dma.duration}</title></rect>"
            )
        y += _LANE_HEIGHT + _DMA_HEIGHT + _LANE_GAP
    parts.append(_svg_legend(y))
    parts.append("</svg>")
    return "\n".join(parts)


def _svg_legend(y: int) -> str:
    items = [
        (STATE_RUN, "run"),
        (STATE_WAIT_DMA, "wait dma"),
        (STATE_WAIT_MBOX, "wait mbox"),
        (STATE_WAIT_SIGNAL, "wait signal"),
    ]
    parts = []
    x = _LEFT_MARGIN
    for state, label in items:
        parts.append(
            f'<rect x="{x}" y="{y}" width="12" height="12" '
            f'fill="{STATE_COLORS[state]}"/>'
            f'<text x="{x + 16}" y="{y + 10}">{label}</text>'
        )
        x += 110
    return "".join(parts)
