"""Time-series views of a trace: how behaviour evolves over the run.

Summaries hide phases; these functions bucket the run into fixed-width
time windows and report, per bucket:

* how many DMA commands were in flight (per SPE or machine-wide) —
  the series that makes buffering discipline visible at a glance,
* bytes entering flight (an issue-rate bandwidth proxy),
* how many SPEs were computing.

All outputs are NumPy arrays ready for plotting or CSV.

Two families share the bucketing:

* the model-based functions below take a reconstructed
  :class:`TimelineModel` (interval math: in-flight counts, run states);
* the ``source_*`` functions take a raw
  :class:`~repro.pdt.store.EventSource` — or a shared
  :class:`~repro.pdt.handle.TraceHandle` — and answer through the
  :class:`repro.tq.Query` pipeline — the filter is pushed down into
  the source's zone maps, so bucketing one SPE's DMA issues over a
  narrow window never scans (or even reads) the rest of the trace.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.ta.model import _DMA_ISSUE_KINDS, STATE_RUN, TimelineModel
from repro.tq import Query


def _bucket_edges(model: TimelineModel, buckets: int) -> np.ndarray:
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    t0, t1 = model.t_start, model.t_end
    if t1 <= t0:
        t1 = t0 + 1
    return np.linspace(t0, t1, buckets + 1)


def dma_inflight_series(
    model: TimelineModel, buckets: int = 50,
    spe_id: typing.Optional[int] = None,
) -> typing.Tuple[np.ndarray, np.ndarray]:
    """(bucket_centers, mean in-flight DMA count per bucket).

    ``spe_id=None`` aggregates over all SPEs.  "Mean in-flight" is the
    time-weighted average number of spans covering the bucket.
    """
    edges = _bucket_edges(model, buckets)
    widths = np.diff(edges)
    covered = np.zeros(buckets)
    cores = (
        model.cores.values() if spe_id is None else [model.core(spe_id)]
    )
    for core in cores:
        for span in core.dma_spans:
            lo = np.clip(span.issue_time, edges[0], edges[-1])
            hi = np.clip(span.end, edges[0], edges[-1])
            if hi <= lo:
                continue
            overlap = np.clip(
                np.minimum(hi, edges[1:]) - np.maximum(lo, edges[:-1]), 0, None
            )
            covered += overlap
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, covered / widths


def issue_bandwidth_series(
    model: TimelineModel, buckets: int = 50
) -> typing.Tuple[np.ndarray, np.ndarray]:
    """(bucket_centers, bytes issued per cycle per bucket).

    Attributes each DMA's bytes to the bucket containing its issue —
    an issue-rate proxy for demanded bandwidth.
    """
    edges = _bucket_edges(model, buckets)
    widths = np.diff(edges)
    issued = np.zeros(buckets)
    for core in model.cores.values():
        for span in core.dma_spans:
            index = int(np.searchsorted(edges, span.issue_time, side="right")) - 1
            index = min(max(index, 0), buckets - 1)
            issued[index] += span.size
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, issued / widths


def active_spes_series(
    model: TimelineModel, buckets: int = 50
) -> typing.Tuple[np.ndarray, np.ndarray]:
    """(bucket_centers, time-weighted mean count of SPEs in RUN)."""
    edges = _bucket_edges(model, buckets)
    widths = np.diff(edges)
    running = np.zeros(buckets)
    for core in model.cores.values():
        for interval in core.intervals:
            if interval.state != STATE_RUN:
                continue
            overlap = np.clip(
                np.minimum(interval.end, edges[1:])
                - np.maximum(interval.start, edges[:-1]),
                0,
                None,
            )
            running += overlap
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, running / widths


def series_to_rows(
    centers: np.ndarray, values: np.ndarray, value_name: str
) -> typing.List[typing.Dict[str, float]]:
    """Pack one series as table rows for format_table/CSV."""
    return [
        {"t_cycles": int(t), value_name: round(float(v), 3)}
        for t, v in zip(centers, values)
    ]


# ----------------------------------------------------------------------
# source-level series: bucketing through the tq pipeline
# ----------------------------------------------------------------------
def _edges_for(
    times: np.ndarray,
    buckets: int,
    t0: typing.Optional[int],
    t1: typing.Optional[int],
) -> np.ndarray:
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    lo = t0 if t0 is not None else (float(times.min()) if times.size else 0.0)
    hi = t1 if t1 is not None else (float(times.max()) if times.size else 1.0)
    if hi <= lo:
        hi = lo + 1
    return np.linspace(lo, hi, buckets + 1)


def _materialize(query, jobs: int):
    """A projected query's rows, sharded across worker processes when
    ``jobs > 1`` (byte-identical; shard order is chunk order)."""
    if jobs > 1:
        from repro.par import parallel_records

        return parallel_records(query, jobs)
    return list(query.records())


def source_event_rate_series(
    source,
    buckets: int = 50,
    kind: typing.Union[int, str, typing.Iterable, None] = None,
    spe: typing.Optional[int] = None,
    t0: typing.Optional[int] = None,
    t1: typing.Optional[int] = None,
    jobs: int = 1,
) -> typing.Tuple[np.ndarray, np.ndarray]:
    """(bucket_centers, matching events per cycle per bucket).

    Straight from an :class:`~repro.pdt.store.EventSource` — no
    timeline model.  With ``kind``/``spe``/``t0``/``t1`` set, the
    query prunes to the chunks that can match before decoding; with
    ``jobs > 1`` the scan shards across worker processes.
    """
    query = Query(source).where(t0=t0, t1=t1, spe=spe, event=kind)
    times = np.array(
        [row[0] for row in _materialize(query.project("time"), jobs)],
        dtype=float,
    )
    edges = _edges_for(times, buckets, t0, t1)
    counts, __ = np.histogram(times, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, counts / np.diff(edges)


def source_issue_bandwidth_series(
    source,
    buckets: int = 50,
    spe: typing.Optional[int] = None,
    t0: typing.Optional[int] = None,
    t1: typing.Optional[int] = None,
    jobs: int = 1,
) -> typing.Tuple[np.ndarray, np.ndarray]:
    """(bucket_centers, bytes issued per cycle per bucket), from raw
    DMA-issue events via the query pipeline.

    The source-level analogue of :func:`issue_bandwidth_series`: each
    DMA's bytes land in the bucket containing its issue event.  Times
    here are unclamped placements, so on pathological traces the two
    families can bucket an event one slot apart; on well-formed traces
    they agree.
    """
    query = (
        Query(source)
        .where(t0=t0, t1=t1, spe=spe, event=list(_DMA_ISSUE_KINDS))
        .project("time", "size")
    )
    rows = _materialize(query, jobs)
    times = np.array([t for t, __ in rows], dtype=float)
    sizes = np.array([s for __, s in rows], dtype=float)
    edges = _edges_for(times, buckets, t0, t1)
    issued, __ = np.histogram(times, bins=edges, weights=sizes)
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, issued / np.diff(edges)
