"""Time-series views of a trace: how behaviour evolves over the run.

Summaries hide phases; these functions bucket the run into fixed-width
time windows and report, per bucket:

* how many DMA commands were in flight (per SPE or machine-wide) —
  the series that makes buffering discipline visible at a glance,
* bytes entering flight (an issue-rate bandwidth proxy),
* how many SPEs were computing.

All outputs are NumPy arrays ready for plotting or CSV.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.ta.model import STATE_RUN, TimelineModel


def _bucket_edges(model: TimelineModel, buckets: int) -> np.ndarray:
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    t0, t1 = model.t_start, model.t_end
    if t1 <= t0:
        t1 = t0 + 1
    return np.linspace(t0, t1, buckets + 1)


def dma_inflight_series(
    model: TimelineModel, buckets: int = 50,
    spe_id: typing.Optional[int] = None,
) -> typing.Tuple[np.ndarray, np.ndarray]:
    """(bucket_centers, mean in-flight DMA count per bucket).

    ``spe_id=None`` aggregates over all SPEs.  "Mean in-flight" is the
    time-weighted average number of spans covering the bucket.
    """
    edges = _bucket_edges(model, buckets)
    widths = np.diff(edges)
    covered = np.zeros(buckets)
    cores = (
        model.cores.values() if spe_id is None else [model.core(spe_id)]
    )
    for core in cores:
        for span in core.dma_spans:
            lo = np.clip(span.issue_time, edges[0], edges[-1])
            hi = np.clip(span.end, edges[0], edges[-1])
            if hi <= lo:
                continue
            overlap = np.clip(
                np.minimum(hi, edges[1:]) - np.maximum(lo, edges[:-1]), 0, None
            )
            covered += overlap
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, covered / widths


def issue_bandwidth_series(
    model: TimelineModel, buckets: int = 50
) -> typing.Tuple[np.ndarray, np.ndarray]:
    """(bucket_centers, bytes issued per cycle per bucket).

    Attributes each DMA's bytes to the bucket containing its issue —
    an issue-rate proxy for demanded bandwidth.
    """
    edges = _bucket_edges(model, buckets)
    widths = np.diff(edges)
    issued = np.zeros(buckets)
    for core in model.cores.values():
        for span in core.dma_spans:
            index = int(np.searchsorted(edges, span.issue_time, side="right")) - 1
            index = min(max(index, 0), buckets - 1)
            issued[index] += span.size
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, issued / widths


def active_spes_series(
    model: TimelineModel, buckets: int = 50
) -> typing.Tuple[np.ndarray, np.ndarray]:
    """(bucket_centers, time-weighted mean count of SPEs in RUN)."""
    edges = _bucket_edges(model, buckets)
    widths = np.diff(edges)
    running = np.zeros(buckets)
    for core in model.cores.values():
        for interval in core.intervals:
            if interval.state != STATE_RUN:
                continue
            overlap = np.clip(
                np.minimum(interval.end, edges[1:])
                - np.maximum(interval.start, edges[:-1]),
                0,
                None,
            )
            running += overlap
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, running / widths


def series_to_rows(
    centers: np.ndarray, values: np.ndarray, value_name: str
) -> typing.List[typing.Dict[str, float]]:
    """Pack one series as table rows for format_table/CSV."""
    return [
        {"t_cycles": int(t), value_name: round(float(v), 3)}
        for t, v in zip(centers, values)
    ]
