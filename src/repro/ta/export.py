"""CSV export of traces and statistics (the TA's export feature)."""

from __future__ import annotations

import csv
import io
import typing

from repro.pdt.correlate import CorrelatedTrace
from repro.ta.stats import TraceStatistics

_RECORD_COLUMNS = ("time", "side", "core", "seq", "kind", "raw_ts", "fields")


def records_to_csv(
    correlated: CorrelatedTrace,
    destination: typing.Optional[typing.TextIO] = None,
) -> str:
    """Dump every placed record as CSV; returns the text."""
    buffer = destination or io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_RECORD_COLUMNS)
    for placed in correlated.placed:
        record = placed.record
        writer.writerow(
            [
                placed.time,
                "spe" if record.is_spe else "ppe",
                record.core,
                record.seq,
                record.kind,
                record.raw_ts,
                ";".join(f"{k}={v}" for k, v in record.fields.items()),
            ]
        )
    return buffer.getvalue() if destination is None else ""


def stats_to_csv(
    stats: TraceStatistics,
    destination: typing.Optional[typing.TextIO] = None,
) -> str:
    """Dump the per-SPE summary table as CSV; returns the text."""
    rows = stats.summary_rows()
    buffer = destination or io.StringIO()
    if not rows:
        return buffer.getvalue() if destination is None else ""
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue() if destination is None else ""
