"""CSV export of traces and statistics (the TA's export feature)."""

from __future__ import annotations

import csv
import io
import typing

from repro.pdt.correlate import CorrelatedTrace
from repro.ta.stats import TraceStatistics

_RECORD_COLUMNS = ("time", "side", "core", "seq", "kind", "raw_ts", "fields")


def records_to_csv(
    correlated: typing.Union[CorrelatedTrace, typing.Iterable],
    destination: typing.Optional[typing.TextIO] = None,
) -> str:
    """Dump every placed record as CSV; returns the text.

    Accepts a :class:`CorrelatedTrace` or any iterable of placed items
    (e.g. ``model.iter_placed()``, which streams without materializing
    the whole trace)."""
    placed_items = (
        correlated.placed if isinstance(correlated, CorrelatedTrace) else correlated
    )
    buffer = destination or io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_RECORD_COLUMNS)
    for placed in placed_items:
        writer.writerow(
            [
                placed.time,
                "spe" if placed.is_spe else "ppe",
                placed.core,
                placed.seq,
                placed.kind,
                placed.raw_ts,
                ";".join(f"{k}={v}" for k, v in placed.fields.items()),
            ]
        )
    return buffer.getvalue() if destination is None else ""


def stats_to_csv(
    stats: TraceStatistics,
    destination: typing.Optional[typing.TextIO] = None,
) -> str:
    """Dump the per-SPE summary table as CSV; returns the text."""
    rows = stats.summary_rows()
    buffer = destination or io.StringIO()
    if not rows:
        return buffer.getvalue() if destination is None else ""
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue() if destination is None else ""
