"""Self-contained HTML report: the TA's GUI, for a browser.

Bundles everything the analyzer computes — the SVG timeline, per-SPE
statistics, stall attribution, event profile, communication channels,
and the use-case verdicts — into one standalone HTML document with no
external assets.
"""

from __future__ import annotations

import html as html_escape
import typing

from repro.pdt.trace import Trace
from repro.ta.analysis import analyze_buffering, analyze_load_balance, stall_attribution
from repro.ta.comm import communication_edges, summarize_channels
from repro.ta.critical import critical_path
from repro.ta.gantt import render_svg
from repro.ta.model import TimelineModel, analyze
from repro.ta.profile import profile_table
from repro.ta.stats import TraceStatistics

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #212121; max-width: 1000px; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em;
     border-bottom: 1px solid #ddd; padding-bottom: 4px; }
table { border-collapse: collapse; font-size: 0.85em; }
th, td { padding: 4px 10px; text-align: right; border-bottom: 1px solid #eee; }
th { background: #fafafa; }
td:first-child, th:first-child { text-align: left; }
.verdict { background: #f5f5f5; padding: 8px 12px; border-left: 3px solid
           #1565c0; margin: 6px 0; font-size: 0.9em; }
svg { max-width: 100%; height: auto; }
"""


def _table(rows: typing.Sequence[typing.Dict[str, typing.Any]]) -> str:
    if not rows:
        return "<p>(no data)</p>"
    columns = list(rows[0].keys())
    head = "".join(f"<th>{html_escape.escape(str(c))}</th>" for c in columns)
    body = "".join(
        "<tr>"
        + "".join(f"<td>{html_escape.escape(str(row[c]))}</td>" for c in columns)
        + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def html_report(trace: Trace, title: str = "PDT trace report") -> str:
    """Render the full analysis of a trace as one HTML document."""
    model = analyze(trace)
    stats = TraceStatistics.from_model(model)
    parts = [
        "<!DOCTYPE html>",
        f"<html><head><meta charset='utf-8'><title>{html_escape.escape(title)}"
        f"</title><style>{_STYLE}</style></head><body>",
        f"<h1>{html_escape.escape(title)}</h1>",
        f"<p>{trace.n_records} records, {len(model.cores)} SPEs, "
        f"span {stats.span} cycles "
        f"({stats.span / trace.header.spu_clock_hz * 1e6:.1f} &micro;s)</p>",
        "<h2>Timeline</h2>",
        render_svg(model),
        "<h2>Per-SPE statistics</h2>",
        _table(stats.summary_rows()),
        "<h2>Stall attribution</h2>",
        _table(
            [
                {"state": state, "fraction": f"{fraction:.3f}"}
                for state, fraction in stall_attribution(stats).items()
            ]
        ),
        "<h2>Diagnoses</h2>",
        f"<div class='verdict'>load balance: "
        f"{html_escape.escape(analyze_load_balance(stats).verdict)}</div>",
    ]
    for spe_id in sorted(model.cores):
        report = analyze_buffering(model, spe_id)
        parts.append(
            f"<div class='verdict'>spe{spe_id} buffering "
            f"(overlap {report.overlap_fraction:.2f}, "
            f"wait-dma {report.wait_dma_fraction:.2f}): "
            f"{html_escape.escape(report.verdict)}</div>"
        )
    path = critical_path(model)
    if path.steps:
        by_core = path.time_by_core()
        total = sum(by_core.values()) or 1
        parts.append("<h2>Critical path</h2>")
        parts.append(
            f"<div class='verdict'>{len(path.steps)} steps over "
            f"{path.span} cycles; dominant core "
            f"<b>{html_escape.escape(path.dominant_core())}</b> "
            f"({by_core[path.dominant_core()] / total:.0%} of path time)</div>"
        )
        parts.append(
            _table(
                [
                    {"core": core, "path cycles": by_core[core],
                     "share": f"{by_core[core] / total:.1%}"}
                    for core in sorted(by_core)
                ]
            )
        )
    edges = communication_edges(model)
    if edges:
        parts.append("<h2>Communication channels</h2>")
        parts.append(
            _table(
                [
                    {
                        "channel": s.channel,
                        "edges": s.count,
                        "mean latency (cycles)": round(s.mean_latency, 1),
                        "max latency (cycles)": s.max_latency,
                    }
                    for s in summarize_channels(edges)
                ]
            )
        )
    parts.append("<h2>Event profile</h2>")
    parts.append(_table(profile_table(trace)))
    parts.append("</body></html>")
    return "\n".join(parts)


def save_html_report(trace: Trace, path: str, title: str = "PDT trace report") -> None:
    with open(path, "w") as handle:
        handle.write(html_report(trace, title=title))
