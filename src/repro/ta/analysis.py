"""The paper's analysis use cases as code.

The ISPASS paper demonstrates PDT+TA on workloads by *reading the
timeline*: spotting DMA waits that double buffering would hide, and
spotting SPEs that finish long before their siblings.  These functions
mechanize those two readings (plus the stall-attribution summary that
feeds both).
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

from repro.ta.model import STATE_WAIT_DMA, CoreTimeline, Interval, TimelineModel
from repro.ta.stats import TraceStatistics


@dataclasses.dataclass
class BufferingReport:
    """Buffering-discipline diagnosis for one SPE.

    ``overlap_fraction`` — how much of the total DMA in-flight time was
    hidden under computation on the same SPE.  Near 0 means the SPE sat
    waiting for every transfer (single buffering); near 1 means
    transfers were almost fully overlapped (double buffering working).
    ``wait_dma_fraction`` — window share spent stalled on tag waits.
    """

    spe_id: int
    overlap_fraction: float
    wait_dma_fraction: float
    dma_inflight_cycles: int
    verdict: str

    #: Thresholds for the verdict (window fractions / overlap shares).
    OVERLAP_GOOD = 0.60
    WAIT_BAD = 0.20


@dataclasses.dataclass
class LoadBalanceReport:
    """Load-balance diagnosis across the SPEs of one run."""

    busy_cycles: typing.Dict[int, int]
    imbalance_factor: float
    slowest_spe: int
    fastest_spe: int
    verdict: str

    #: max/mean busy ratio above which we call the run imbalanced.
    IMBALANCED_ABOVE = 1.15


def analyze_buffering(model: TimelineModel, spe_id: int) -> BufferingReport:
    """Diagnose single- vs double-buffering on one SPE."""
    core = model.core(spe_id)
    run_intervals = core.run_intervals()
    # run_intervals are disjoint and time-sorted, so each span only
    # needs the intervals a bisect lands on — not a full scan.
    run_ends = [i.end for i in run_intervals]
    inflight = 0
    overlapped = 0
    for span in core.dma_spans:
        inflight += span.duration
        overlapped += _overlap(span.issue_time, span.end, run_intervals, run_ends)
    overlap_fraction = overlapped / inflight if inflight else 0.0
    wait_dma_fraction = (
        core.time_in(STATE_WAIT_DMA) / core.window if core.window else 0.0
    )
    if inflight == 0:
        verdict = "no DMA activity"
    elif (
        overlap_fraction >= BufferingReport.OVERLAP_GOOD
        and wait_dma_fraction < BufferingReport.WAIT_BAD
    ):
        verdict = "double-buffered: transfers largely hidden under compute"
    elif wait_dma_fraction >= BufferingReport.WAIT_BAD:
        verdict = (
            "single-buffered: SPU stalls on most transfers — "
            "introduce double buffering"
        )
    else:
        verdict = "partially overlapped"
    return BufferingReport(
        spe_id=spe_id,
        overlap_fraction=overlap_fraction,
        wait_dma_fraction=wait_dma_fraction,
        dma_inflight_cycles=inflight,
        verdict=verdict,
    )


def analyze_load_balance(stats: TraceStatistics) -> LoadBalanceReport:
    """Diagnose load balance across SPEs from the summary statistics."""
    busy = {spe_id: s.run_cycles for spe_id, s in stats.per_spe.items()}
    if not busy:
        raise ValueError("trace contains no SPE activity")
    slowest = max(sorted(busy), key=lambda k: busy[k])
    fastest = min(sorted(busy), key=lambda k: busy[k])
    factor = stats.imbalance_factor
    if factor <= LoadBalanceReport.IMBALANCED_ABOVE:
        verdict = "balanced: SPEs carry similar work"
    else:
        verdict = (
            f"imbalanced: SPE {slowest} does {factor:.2f}x the mean work — "
            "redistribute blocks"
        )
    return LoadBalanceReport(
        busy_cycles=busy,
        imbalance_factor=factor,
        slowest_spe=slowest,
        fastest_spe=fastest,
        verdict=verdict,
    )


def stall_attribution(stats: TraceStatistics) -> typing.Dict[str, float]:
    """Aggregate window share per stall cause plus compute, across SPEs.

    Returns fractions keyed by state name; they sum to <= 1 (the
    remainder is idle skew between windows).
    """
    total_window = sum(s.window for s in stats.per_spe.values())
    if total_window == 0:
        return {}
    return {
        "run": stats.total_run_cycles / total_window,
        "wait_dma": sum(s.wait_dma_cycles for s in stats.per_spe.values()) / total_window,
        "wait_mbox": sum(s.wait_mbox_cycles for s in stats.per_spe.values()) / total_window,
        "wait_signal": (
            sum(s.wait_signal_cycles for s in stats.per_spe.values()) / total_window
        ),
    }


def _overlap(
    start: int,
    end: int,
    intervals: typing.Sequence[Interval],
    ends: typing.Optional[typing.Sequence[int]] = None,
) -> int:
    """Cycles of [start, end) covered by the given intervals.

    ``intervals`` must be disjoint and sorted by start; ``ends`` is the
    (optional, precomputed) list of their end times, letting repeated
    queries skip straight to the first candidate instead of scanning.
    """
    if ends is None:
        ends = [i.end for i in intervals]
    covered = 0
    for idx in range(bisect.bisect_right(ends, start), len(intervals)):
        interval = intervals[idx]
        if interval.start >= end:
            break
        lo = max(start, interval.start)
        hi = min(end, interval.end)
        if hi > lo:
            covered += hi - lo
    return covered
