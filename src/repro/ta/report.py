"""Textual reports: the TA's summary panes as plain text.

Combines the timeline, statistics, and use-case analyses into the
human-readable report the CLI and examples print.
"""

from __future__ import annotations

import typing

from repro.pdt.store import EventSource
from repro.pdt.trace import Trace
from repro.ta.analysis import analyze_buffering, analyze_load_balance, stall_attribution
from repro.ta.critical import critical_path
from repro.ta.gantt import render_ascii
from repro.ta.model import TimelineModel, analyze
from repro.ta.stats import TraceStatistics


def format_table(rows: typing.Sequence[typing.Dict[str, typing.Any]]) -> str:
    """Fixed-width text table from a list of uniform dicts."""
    if not rows:
        return "(no data)\n"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), max(len(str(row[c])) for row in rows)) for c in columns
    }
    header = "  ".join(str(c).rjust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(str(row[c]).rjust(widths[c]) for c in columns) for row in rows
    ]
    return "\n".join([header, separator] + body) + "\n"


def data_quality_section(model: TimelineModel) -> str:
    """The report's data-quality pane: what the analysis is blind to.

    Aggregates the tracer's in-band loss reports (records dropped at
    region full / overwritten by wrap) with any salvage losses from a
    non-strict read, and maps each SPE's loss span onto the global
    timeline.
    """
    quality = model.data_quality()
    if quality.clean:
        return "no records lost (no drops, no wrap overwrites, no corrupt chunks)\n"
    lines = [quality.summary()]
    for spe_id, loss in sorted(quality.per_spe.items()):
        if loss.total == 0:
            continue
        detail = (
            f"spe{spe_id}: {loss.dropped} dropped, {loss.overwritten} "
            f"overwritten ({loss.wraps} wraps)"
        )
        interval = quality.intervals.get(spe_id)
        if interval is not None:
            detail += (
                f"; blind interval [{interval.start}, {interval.end}) "
                f"({interval.duration} cycles)"
            )
        lines.append(detail)
    if model.salvage is not None and model.salvage.damaged:
        lines.append(f"salvage: {model.salvage.summary()}")
    return "\n".join(lines) + "\n"


def full_report(
    trace: typing.Union[Trace, EventSource], gantt_width: int = 80
) -> str:
    """Everything the TA shows, as one text document.

    Accepts an in-memory :class:`Trace` or a streaming
    :class:`EventSource` (e.g. from :func:`repro.pdt.open_trace`)."""
    model = analyze(trace)
    stats = TraceStatistics.from_model(model)
    sections = [
        "=== PDT trace report ===",
        f"records: {trace.n_records}  SPEs: {len(model.cores)}  "
        f"span: {stats.span} cycles",
        "",
        "--- data quality ---",
        data_quality_section(model),
        "--- timeline ---",
        render_ascii(model, width=gantt_width),
        "--- per-SPE statistics ---",
        format_table(stats.summary_rows()),
        "--- stall attribution ---",
        format_table([
            {"state": state, "fraction": f"{fraction:.3f}"}
            for state, fraction in stall_attribution(stats).items()
        ]),
        "--- load balance ---",
        analyze_load_balance(stats).verdict,
        "",
        "--- buffering, per SPE ---",
    ]
    for spe_id in sorted(model.cores):
        report = analyze_buffering(model, spe_id)
        sections.append(
            f"spe{spe_id}: overlap={report.overlap_fraction:.2f} "
            f"wait_dma={report.wait_dma_fraction:.2f} -> {report.verdict}"
        )
    path = critical_path(model)
    if path.steps:
        sections.append("")
        sections.append("--- critical path ---")
        by_core = path.time_by_core()
        total = sum(by_core.values()) or 1
        shares = "  ".join(
            f"{core}:{by_core[core] / total:.0%}" for core in sorted(by_core)
        )
        sections.append(
            f"{len(path.steps)} steps over {path.span} cycles; "
            f"time share {shares}; dominant: {path.dominant_core()}"
        )
    return "\n".join(sections) + "\n"
