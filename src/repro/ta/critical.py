"""Critical-path extraction from a trace.

Answering "what actually bounded this run?" by walking backwards from
the last thing that finished: time spent computing stays on the same
core; time spent *waiting for another core* jumps, through the matched
communication edge, to whoever sent the message late.  The resulting
path is the chain of work and messages that determined the makespan —
speeding up anything off it cannot help.

Scope: waits with a matched communication edge (mailboxes, signals)
jump cores; DMA waits are charged to the waiting core (the memory
system is not a schedulable agent).  PPE sends terminate the walk.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ta.comm import CommEdge, communication_edges
from repro.ta.model import (
    STATE_IDLE,
    STATE_RUN,
    CoreTimeline,
    Interval,
    TimelineModel,
)


@dataclasses.dataclass
class PathStep:
    """One stretch of the critical path on one core."""

    core: str  # "speN" (or "ppe" for the terminal send)
    start: int
    end: int
    state: str  # interval state, or "message" for a cross-core hop

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclasses.dataclass
class CriticalPath:
    """The extracted path plus its per-core/per-state accounting."""

    steps: typing.List[PathStep]  # chronological order

    @property
    def span(self) -> int:
        if not self.steps:
            return 0
        return self.steps[-1].end - self.steps[0].start

    def time_by_core(self) -> typing.Dict[str, int]:
        totals: typing.Dict[str, int] = {}
        for step in self.steps:
            totals[step.core] = totals.get(step.core, 0) + step.duration
        return totals

    def time_by_state(self) -> typing.Dict[str, int]:
        totals: typing.Dict[str, int] = {}
        for step in self.steps:
            totals[step.state] = totals.get(step.state, 0) + step.duration
        return totals

    def dominant_core(self) -> str:
        totals = self.time_by_core()
        return max(sorted(totals), key=lambda core: totals[core])

    def rows(self) -> typing.List[typing.Dict[str, typing.Any]]:
        return [
            {
                "core": step.core,
                "start": step.start,
                "end": step.end,
                "state": step.state,
                "cycles": step.duration,
            }
            for step in self.steps
        ]


def critical_path(model: TimelineModel) -> CriticalPath:
    """Walk the blocking chain backwards from the run's last finisher."""
    if not model.cores:
        return CriticalPath(steps=[])
    edges = communication_edges(model)
    #: dst core -> edges sorted by recv_time (for backward lookup)
    incoming: typing.Dict[str, typing.List[CommEdge]] = {}
    for edge in edges:
        incoming.setdefault(edge.dst, []).append(edge)
    for queue in incoming.values():
        queue.sort(key=lambda e: e.recv_time)

    last_spe = max(
        sorted(model.cores), key=lambda spe_id: model.cores[spe_id].window_end
    )
    core_name = f"spe{last_spe}"
    time = model.cores[last_spe].window_end
    steps_reversed: typing.List[PathStep] = []
    safety = 0

    while safety < 100_000:
        safety += 1
        spe_id = int(core_name[3:])
        core = model.cores.get(spe_id)
        if core is None or time <= core.window_start:
            break
        interval = _interval_at(core, time)
        if interval is None:
            break
        start = max(interval.start, core.window_start)
        if interval.state in (STATE_RUN, STATE_IDLE) or not _is_comm_wait(interval):
            # Local work (or a memory-system wait): stays on the path.
            steps_reversed.append(
                PathStep(core=core_name, start=start, end=time, state=interval.state)
            )
            time = start
            continue
        edge = _resolving_edge(incoming.get(core_name, []), start, time)
        if edge is None or edge.send_time <= start:
            # Unmatched wait, or the message was already sent before
            # the wait began (the sender was not the late party):
            # charge the time locally and keep walking this core.
            steps_reversed.append(
                PathStep(core=core_name, start=start, end=time, state=interval.state)
            )
            time = start
            continue
        # A communication wait resolved by a message: the wait itself is
        # NOT on the path — the sender's lateness is.  Keep only the
        # residue after the receive (normally empty) plus the message
        # transit, then continue on the sender.
        if time > edge.recv_time:
            steps_reversed.append(
                PathStep(
                    core=core_name, start=edge.recv_time, end=time,
                    state=interval.state,
                )
            )
        steps_reversed.append(
            PathStep(
                core=edge.src, start=edge.send_time, end=edge.recv_time,
                state="message",
            )
        )
        if edge.src == "ppe":
            break
        core_name = edge.src
        time = edge.send_time

    steps = list(reversed(steps_reversed))
    return CriticalPath(steps=_merge_adjacent(steps))


def _interval_at(core: CoreTimeline, time: int) -> typing.Optional[Interval]:
    """The interval containing the instant just before ``time``."""
    for interval in reversed(core.intervals):
        if interval.start < time <= interval.end:
            return interval
    return None


def _is_comm_wait(interval: Interval) -> bool:
    return interval.state in ("wait_mbox", "wait_signal")


def _resolving_edge(
    edges: typing.List[CommEdge], start: int, end: int
) -> typing.Optional[CommEdge]:
    """The latest incoming edge received during [start, end]."""
    best = None
    for edge in edges:
        if start <= edge.recv_time <= end:
            if best is None or edge.recv_time > best.recv_time:
                best = edge
    return best


def _merge_adjacent(steps: typing.List[PathStep]) -> typing.List[PathStep]:
    """Merge consecutive same-core same-state steps for readability."""
    merged: typing.List[PathStep] = []
    for step in steps:
        if (
            merged
            and merged[-1].core == step.core
            and merged[-1].state == step.state
            and merged[-1].end >= step.start
        ):
            merged[-1] = PathStep(
                core=step.core,
                start=merged[-1].start,
                end=max(step.end, merged[-1].end),
                state=step.state,
            )
        else:
            merged.append(step)
    return merged
