"""Trace comparison: quantify an optimization between two runs.

The paper's use cases are before/after stories; this module turns two
traces of the same application into one delta report, so "did the fix
work, and where" is a function call instead of eyeballing two
timelines.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ta.stats import TraceStatistics


@dataclasses.dataclass
class SpeDelta:
    """Per-SPE change from baseline to candidate."""

    spe_id: int
    window_delta: int
    utilization_delta: float
    wait_dma_delta: int
    wait_mbox_delta: int
    wait_signal_delta: int
    dma_bytes_delta: int


@dataclasses.dataclass
class TraceDiff:
    """Baseline-vs-candidate comparison of two runs."""

    baseline_span: int
    candidate_span: int
    per_spe: typing.List[SpeDelta]

    @property
    def speedup(self) -> float:
        """Baseline span over candidate span (> 1 means faster)."""
        if self.candidate_span == 0:
            return float("inf")
        return self.baseline_span / self.candidate_span

    @property
    def verdict(self) -> str:
        if self.speedup > 1.02:
            return f"improved: {self.speedup:.2f}x faster"
        if self.speedup < 0.98:
            return f"regressed: {1 / self.speedup:.2f}x slower"
        return "unchanged (within 2%)"

    def rows(self) -> typing.List[typing.Dict[str, typing.Any]]:
        return [
            {
                "spe": d.spe_id,
                "utilization_delta": round(d.utilization_delta, 3),
                "wait_dma_delta": d.wait_dma_delta,
                "wait_mbox_delta": d.wait_mbox_delta,
                "wait_signal_delta": d.wait_signal_delta,
                "dma_bytes_delta": d.dma_bytes_delta,
            }
            for d in self.per_spe
        ]


def diff_stats(baseline: TraceStatistics, candidate: TraceStatistics) -> TraceDiff:
    """Compare two statistics objects SPE by SPE.

    Both runs must cover the same SPE set — comparing traces of
    different machine shapes is a user error worth failing on.
    """
    if set(baseline.per_spe) != set(candidate.per_spe):
        raise ValueError(
            f"SPE sets differ: baseline {sorted(baseline.per_spe)} vs "
            f"candidate {sorted(candidate.per_spe)}"
        )
    deltas = []
    for spe_id in sorted(baseline.per_spe):
        b = baseline.per_spe[spe_id]
        c = candidate.per_spe[spe_id]
        deltas.append(
            SpeDelta(
                spe_id=spe_id,
                window_delta=c.window - b.window,
                utilization_delta=c.utilization - b.utilization,
                wait_dma_delta=c.wait_dma_cycles - b.wait_dma_cycles,
                wait_mbox_delta=c.wait_mbox_cycles - b.wait_mbox_cycles,
                wait_signal_delta=c.wait_signal_cycles - b.wait_signal_cycles,
                dma_bytes_delta=c.dma.total_bytes - b.dma.total_bytes,
            )
        )
    return TraceDiff(
        baseline_span=baseline.span,
        candidate_span=candidate.span,
        per_spe=deltas,
    )
