"""Trace comparison: quantify an optimization between two runs.

The paper's use cases are before/after stories; this module turns two
traces of the same application into one delta report, so "did the fix
work, and where" is a function call instead of eyeballing two
timelines.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ta.stats import TraceStatistics


@dataclasses.dataclass
class SpeDelta:
    """Per-SPE change from baseline to candidate."""

    spe_id: int
    window_delta: int
    utilization_delta: float
    wait_dma_delta: int
    wait_mbox_delta: int
    wait_signal_delta: int
    dma_bytes_delta: int


@dataclasses.dataclass
class TraceDiff:
    """Baseline-vs-candidate comparison of two runs."""

    baseline_span: int
    candidate_span: int
    per_spe: typing.List[SpeDelta]

    @property
    def speedup(self) -> float:
        """Baseline span over candidate span (> 1 means faster)."""
        if self.candidate_span == 0:
            return float("inf")
        return self.baseline_span / self.candidate_span

    @property
    def verdict(self) -> str:
        if self.speedup > 1.02:
            return f"improved: {self.speedup:.2f}x faster"
        if self.speedup < 0.98:
            return f"regressed: {1 / self.speedup:.2f}x slower"
        return "unchanged (within 2%)"

    def rows(self) -> typing.List[typing.Dict[str, typing.Any]]:
        return [
            {
                "spe": d.spe_id,
                "utilization_delta": round(d.utilization_delta, 3),
                "wait_dma_delta": d.wait_dma_delta,
                "wait_mbox_delta": d.wait_mbox_delta,
                "wait_signal_delta": d.wait_signal_delta,
                "dma_bytes_delta": d.dma_bytes_delta,
            }
            for d in self.per_spe
        ]


def diff_rows(
    base_rows: typing.Sequence[typing.Dict[str, typing.Any]],
    cand_rows: typing.Sequence[typing.Dict[str, typing.Any]],
    keys: typing.Sequence[str],
    fields: typing.Sequence[str],
) -> typing.List[typing.Dict[str, typing.Any]]:
    """Keyed diff of two uniform row lists (full outer join).

    Rows are matched on the ``keys`` columns; every ``fields`` column
    becomes three output columns ``base_<f>``, ``cand_<f>``,
    ``<f>_delta``, with a side that lacks the key contributing zero.
    The corpus differ uses this for per-SPE stall-breakdown and DMA
    profile deltas; it works on any grouped query output.
    """

    def index(rows):
        out = {}
        for row in rows:
            out[tuple(row[k] for k in keys)] = row
        return out

    base_by_key = index(base_rows)
    cand_by_key = index(cand_rows)
    merged = []
    for key in sorted(set(base_by_key) | set(cand_by_key)):
        base = base_by_key.get(key, {})
        cand = cand_by_key.get(key, {})
        row: typing.Dict[str, typing.Any] = dict(zip(keys, key))
        for field in fields:
            b = base.get(field) or 0
            c = cand.get(field) or 0
            row[f"base_{field}"] = b
            row[f"cand_{field}"] = c
            row[f"{field}_delta"] = c - b
        merged.append(row)
    return merged


def align_bucket_series(
    base_rows: typing.Sequence[typing.Dict[str, typing.Any]],
    cand_rows: typing.Sequence[typing.Dict[str, typing.Any]],
    fields: typing.Sequence[str] = ("n",),
) -> typing.List[typing.Dict[str, typing.Any]]:
    """Join two time-bucketed series on a shared relative timeline.

    Each side's buckets are absolute corrected time divided by the
    bucket width; two runs never share an origin, so each series is
    rebased by its own first bucket before joining (``rel`` = bucket −
    first bucket — deterministic, at most one bucket of quantization
    skew between runs).  Output rows carry ``rel`` plus
    ``base_<f>``/``cand_<f>``/``<f>_delta`` per field, dense over the
    union of relative indices with missing buckets counted as zero.
    """

    def rebase(rows):
        if not rows:
            return {}
        origin = min(row["bucket"] for row in rows)
        return {row["bucket"] - origin: row for row in rows}

    base_by_rel = rebase(base_rows)
    cand_by_rel = rebase(cand_rows)
    last = max([*base_by_rel, *cand_by_rel], default=-1)
    merged = []
    for rel in range(last + 1):
        base = base_by_rel.get(rel, {})
        cand = cand_by_rel.get(rel, {})
        row: typing.Dict[str, typing.Any] = {"rel": rel}
        for field in fields:
            b = base.get(field) or 0
            c = cand.get(field) or 0
            row[f"base_{field}"] = b
            row[f"cand_{field}"] = c
            row[f"{field}_delta"] = c - b
        merged.append(row)
    return merged


def diff_stats(baseline: TraceStatistics, candidate: TraceStatistics) -> TraceDiff:
    """Compare two statistics objects SPE by SPE.

    Both runs must cover the same SPE set — comparing traces of
    different machine shapes is a user error worth failing on.
    """
    if set(baseline.per_spe) != set(candidate.per_spe):
        raise ValueError(
            f"SPE sets differ: baseline {sorted(baseline.per_spe)} vs "
            f"candidate {sorted(candidate.per_spe)}"
        )
    deltas = []
    for spe_id in sorted(baseline.per_spe):
        b = baseline.per_spe[spe_id]
        c = candidate.per_spe[spe_id]
        deltas.append(
            SpeDelta(
                spe_id=spe_id,
                window_delta=c.window - b.window,
                utilization_delta=c.utilization - b.utilization,
                wait_dma_delta=c.wait_dma_cycles - b.wait_dma_cycles,
                wait_mbox_delta=c.wait_mbox_cycles - b.wait_mbox_cycles,
                wait_signal_delta=c.wait_signal_cycles - b.wait_signal_cycles,
                dma_bytes_delta=c.dma.total_bytes - b.dma.total_bytes,
            )
        )
    return TraceDiff(
        baseline_span=baseline.span,
        candidate_span=candidate.span,
        per_spe=deltas,
    )
