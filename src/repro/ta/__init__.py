"""TA — the Trace Analyzer (the paper's contribution, part 2).

"The trace analyzer (TA) reads and visualizes the PDT traces"
(abstract).  This package is the analysis half of the tool chain:

* :mod:`repro.ta.model` — reconstructs what each core was *doing* over
  time (run / wait-DMA / wait-mailbox / wait-signal intervals) and the
  lifetime of every DMA command, from nothing but the trace records.
* :mod:`repro.ta.stats` — per-SPE and aggregate statistics:
  utilization, stall breakdown, DMA latency/bandwidth distributions,
  mailbox traffic.
* :mod:`repro.ta.analysis` — the paper's use cases as code: load
  balance, buffering-discipline detection (single vs double
  buffering), stall attribution.
* :mod:`repro.ta.gantt` — the timeline view as ASCII (terminal) and
  SVG (file), in place of the original Eclipse GUI.
* :mod:`repro.ta.export` — CSV export of records and statistics.

The entry point is :func:`analyze`, which takes a
:class:`~repro.pdt.trace.Trace` or any streaming
:class:`~repro.pdt.store.EventSource` (e.g. a file opened with
:func:`repro.pdt.open_trace`) and returns a :class:`TimelineModel`,
built in a single chunked pass.  :func:`analyze_materialized` keeps
the original list-of-objects path as the reference implementation.
"""

from repro.ta.analysis import (
    BufferingReport,
    LoadBalanceReport,
    analyze_buffering,
    analyze_load_balance,
)
from repro.ta.comm import CommEdge, communication_edges, summarize_channels
from repro.ta.critical import CriticalPath, critical_path
from repro.ta.diff import (
    TraceDiff,
    align_bucket_series,
    diff_rows,
    diff_stats,
)
from repro.ta.export import records_to_csv, stats_to_csv
from repro.ta.gantt import render_ascii, render_svg
from repro.ta.model import (
    CoreTimeline,
    DmaSpan,
    Interval,
    TimelineModel,
    analyze,
    analyze_materialized,
)
from repro.ta.profile import event_profile, profile_table, top_event_kinds
from repro.ta.series import (
    source_event_rate_series,
    source_issue_bandwidth_series,
)
from repro.ta.stats import SpeStatistics, TraceStatistics, source_summary_rows

__all__ = [
    "BufferingReport",
    "CommEdge",
    "CoreTimeline",
    "CriticalPath",
    "critical_path",
    "DmaSpan",
    "Interval",
    "LoadBalanceReport",
    "SpeStatistics",
    "TimelineModel",
    "TraceDiff",
    "TraceStatistics",
    "align_bucket_series",
    "analyze",
    "analyze_buffering",
    "analyze_materialized",
    "analyze_load_balance",
    "communication_edges",
    "diff_rows",
    "diff_stats",
    "event_profile",
    "profile_table",
    "records_to_csv",
    "render_ascii",
    "render_svg",
    "source_event_rate_series",
    "source_issue_bandwidth_series",
    "source_summary_rows",
    "stats_to_csv",
    "summarize_channels",
    "top_event_kinds",
]
