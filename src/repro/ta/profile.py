"""Event-frequency profile: the TA's "event summary" pane.

Counts records by kind per core and normalizes to event rates — the
quick look that tells you where the trace volume (and hence tracing
overhead) comes from before you ever open the timeline.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.pdt.trace import Trace


@dataclasses.dataclass
class ProfileRow:
    core: str  # "ppe" or "speN"
    kind: str
    count: int
    share: float  # of that core's records


def event_profile(trace: Trace) -> typing.List[ProfileRow]:
    """Per-core event-kind counts, descending within each core."""
    rows: typing.List[ProfileRow] = []
    streams = [("ppe", trace.ppe_records)] + [
        (f"spe{spe_id}", records)
        for spe_id, records in sorted(trace.spe_records.items())
    ]
    for core, records in streams:
        if not records:
            continue
        counts: typing.Dict[str, int] = {}
        for record in records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        total = len(records)
        for kind in sorted(counts, key=lambda k: (-counts[k], k)):
            rows.append(
                ProfileRow(
                    core=core, kind=kind, count=counts[kind],
                    share=counts[kind] / total,
                )
            )
    return rows


def top_event_kinds(trace: Trace, n: int = 5) -> typing.List[typing.Tuple[str, int]]:
    """The n most frequent kinds across the whole trace."""
    counts: typing.Dict[str, int] = {}
    for record in trace.all_records():
        counts[record.kind] = counts.get(record.kind, 0) + 1
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:n]


def profile_table(trace: Trace) -> typing.List[typing.Dict[str, typing.Any]]:
    """The profile as plain dict rows for format_table/CSV."""
    return [
        {
            "core": row.core,
            "kind": row.kind,
            "count": row.count,
            "share": round(row.share, 3),
        }
        for row in event_profile(trace)
    ]
