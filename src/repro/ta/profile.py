"""Event-frequency profile: the TA's "event summary" pane.

Counts records by kind per core and normalizes to event rates — the
quick look that tells you where the trace volume (and hence tracing
overhead) comes from before you ever open the timeline.

Counting is columnar: one pass over the chunks tallying (side, core,
code) without materializing a single record object, so profiling works
the same on an in-memory :class:`Trace` or a trace file opened with
:func:`repro.pdt.open_trace`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.pdt.events import SIDE_PPE, spec_for_code
from repro.pdt.handle import TraceHandle
from repro.pdt.store import EventSource
from repro.pdt.trace import Trace

TraceLike = typing.Union[Trace, EventSource, TraceHandle]


@dataclasses.dataclass
class ProfileRow:
    core: str  # "ppe" or "speN"
    kind: str
    count: int
    share: float  # of that core's records


def _count_events(trace: TraceLike, jobs: int = 1) -> typing.Dict[
    typing.Tuple[int, int], typing.Dict[str, int]
]:
    """(side, core) -> kind -> count, in one columnar pass.

    PPE records count as one stream under core 0 (their ``core`` field
    holds the software thread id, not a processor).  With ``jobs > 1``
    a file-backed source tallies its chunk ranges in worker processes
    and merges the (order-independent) counts — identical totals."""
    if isinstance(trace, Trace):
        source = trace.as_source()
    elif isinstance(trace, TraceHandle):
        source = trace.source()
    else:
        source = trace
    if jobs > 1:
        from repro.par import parallel_event_counts

        sharded = parallel_event_counts(source, jobs)
        if sharded is not None:
            return sharded
    counts: typing.Dict[typing.Tuple[int, int], typing.Dict[str, int]] = {}
    for chunk in source.iter_chunks():
        for side, code, core in zip(chunk.side, chunk.code, chunk.core):
            key = (side, core if side != SIDE_PPE else 0)
            kinds = counts.setdefault(key, {})
            kind = spec_for_code(side, code).kind
            kinds[kind] = kinds.get(kind, 0) + 1
    return counts


def _stream_order(
    counts: typing.Dict[typing.Tuple[int, int], typing.Dict[str, int]]
) -> typing.List[typing.Tuple[str, typing.Dict[str, int]]]:
    """Streams labelled and ordered: "ppe" first, then speN by id."""
    ordered: typing.List[typing.Tuple[str, typing.Dict[str, int]]] = []
    ppe = counts.get((SIDE_PPE, 0))
    if ppe:
        ordered.append(("ppe", ppe))
    for (side, core) in sorted(k for k in counts if k[0] != SIDE_PPE):
        ordered.append((f"spe{core}", counts[(side, core)]))
    return ordered


def event_profile(trace: TraceLike, jobs: int = 1) -> typing.List[ProfileRow]:
    """Per-core event-kind counts, descending within each core."""
    rows: typing.List[ProfileRow] = []
    for core, kinds in _stream_order(_count_events(trace, jobs)):
        total = sum(kinds.values())
        for kind in sorted(kinds, key=lambda k: (-kinds[k], k)):
            rows.append(
                ProfileRow(
                    core=core, kind=kind, count=kinds[kind],
                    share=kinds[kind] / total,
                )
            )
    return rows


def top_event_kinds(trace: TraceLike, n: int = 5) -> typing.List[typing.Tuple[str, int]]:
    """The n most frequent kinds across the whole trace."""
    counts: typing.Dict[str, int] = {}
    for __, kinds in _count_events(trace).items():
        for kind, count in kinds.items():
            counts[kind] = counts.get(kind, 0) + count
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:n]


def profile_table(
    trace: TraceLike, jobs: int = 1
) -> typing.List[typing.Dict[str, typing.Any]]:
    """The profile as plain dict rows for format_table/CSV."""
    return [
        {
            "core": row.core,
            "kind": row.kind,
            "count": row.count,
            "share": round(row.share, 3),
        }
        for row in event_profile(trace, jobs)
    ]
