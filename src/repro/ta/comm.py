"""Cross-core communication analysis.

The TA's timeline becomes far more useful once events on different
cores are *linked*: this module matches send records to the receive
records they caused, producing communication edges with latencies —
the arrows the original analyzer drew between lanes.

Channels matched (each FIFO per endpoint pair, like the hardware):

* PPE ``in_mbox_write``  ->  SPE ``read_mbox_end``     ("ppe->spe mailbox")
* SPE ``write_mbox_end`` ->  PPE ``out_mbox_read_end`` ("spe->ppe mailbox")
* SPE ``signal_send``    ->  SPE ``read_signal_end``   ("spe->spe signal")
* PPE ``signal_write``   ->  SPE ``read_signal_end``   ("ppe->spe signal")

Signal receives OR together bits from several sends, so one receive
may close multiple send edges (every send whose bits the received
value contains).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.ta.model import TimelineModel

PPE_TO_SPE_MAILBOX = "ppe->spe mailbox"
SPE_TO_PPE_MAILBOX = "spe->ppe mailbox"
SIGNAL = "signal"


@dataclasses.dataclass
class CommEdge:
    """One matched send/receive pair."""

    channel: str
    src: str  # "ppe" or "speN"
    dst: str
    send_time: int
    recv_time: int
    value: int

    @property
    def latency(self) -> int:
        """Receive minus send time; clamped at 0 (clock quantization
        can place a receive a tick before its send)."""
        return max(self.recv_time - self.send_time, 0)


@dataclasses.dataclass
class _PendingSend:
    src: str
    time: int
    value: int


def communication_edges(model: TimelineModel) -> typing.List[CommEdge]:
    """Match every send to its receive across the whole trace."""
    edges: typing.List[CommEdge] = []
    placed = model.iter_placed()

    # FIFO queues per (channel key).
    inbox_sends: typing.Dict[int, typing.List[_PendingSend]] = {}
    outbox_sends: typing.Dict[int, typing.List[_PendingSend]] = {}
    signal_sends: typing.Dict[typing.Tuple[int, int], typing.List[_PendingSend]] = {}

    for item in placed:
        kind = item.kind
        fields = item.fields
        if kind == "in_mbox_write":
            inbox_sends.setdefault(fields["spe"], []).append(
                _PendingSend("ppe", item.time, fields["value"])
            )
        elif kind == "read_mbox_end" and item.is_spe:
            queue = inbox_sends.get(item.core, [])
            if queue:
                send = queue.pop(0)
                edges.append(
                    CommEdge(
                        channel=PPE_TO_SPE_MAILBOX,
                        src=send.src,
                        dst=f"spe{item.core}",
                        send_time=send.time,
                        recv_time=item.time,
                        value=fields.get("value", 0),
                    )
                )
        elif kind == "write_mbox_end" and item.is_spe and not fields.get("intr"):
            outbox_sends.setdefault(item.core, []).append(
                _PendingSend(f"spe{item.core}", item.time, fields["value"])
            )
        elif kind == "out_mbox_read_end":
            queue = outbox_sends.get(fields["spe"], [])
            if queue:
                send = queue.pop(0)
                edges.append(
                    CommEdge(
                        channel=SPE_TO_PPE_MAILBOX,
                        src=send.src,
                        dst="ppe",
                        send_time=send.time,
                        recv_time=item.time,
                        value=fields.get("value", 0),
                    )
                )
        elif kind == "signal_send":
            key = (fields["target"], fields["which"])
            signal_sends.setdefault(key, []).append(
                _PendingSend(f"spe{item.core}", item.time, fields["bits"])
            )
        elif kind == "signal_write":
            key = (fields["spe"], fields["which"])
            signal_sends.setdefault(key, []).append(
                _PendingSend("ppe", item.time, fields["bits"])
            )
        elif kind == "read_signal_end" and item.is_spe:
            key = (item.core, fields["which"])
            queue = signal_sends.get(key, [])
            received = fields.get("value", 0)
            matched, remaining = [], []
            for send in queue:
                # OR semantics: this receive consumed every send whose
                # bits are all present in the received value.
                if send.value & received == send.value and send.time <= item.time:
                    matched.append(send)
                else:
                    remaining.append(send)
            signal_sends[key] = remaining
            for send in matched:
                edges.append(
                    CommEdge(
                        channel=SIGNAL,
                        src=send.src,
                        dst=f"spe{item.core}",
                        send_time=send.time,
                        recv_time=item.time,
                        value=send.value,
                    )
                )
    edges.sort(key=lambda e: (e.send_time, e.recv_time))
    return edges


@dataclasses.dataclass
class ChannelSummary:
    channel: str
    count: int
    mean_latency: float
    max_latency: int


def summarize_channels(edges: typing.Sequence[CommEdge]) -> typing.List[ChannelSummary]:
    """Per-channel edge counts and latency statistics."""
    groups: typing.Dict[str, typing.List[CommEdge]] = {}
    for edge in edges:
        groups.setdefault(edge.channel, []).append(edge)
    summaries = []
    for channel in sorted(groups):
        latencies = [e.latency for e in groups[channel]]
        summaries.append(
            ChannelSummary(
                channel=channel,
                count=len(latencies),
                mean_latency=sum(latencies) / len(latencies),
                max_latency=max(latencies),
            )
        )
    return summaries
