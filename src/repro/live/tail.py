"""TailSource: follow a chunked trace file while it is being written.

The writer contract (see :mod:`repro.pdt.writer`) makes tailing safe
without any coordination: a chunked-layout file is append-only until
``close`` — the sentinel header goes down first, then self-framed
chunks, then (v4/v5) the index trailer, and only then is the header
seek-patched with the final counts.  A tailing reader therefore only
ever needs to answer one question per poll: *which whole frames exist
so far?*  Everything after the last complete frame is "not written
yet", never "corrupt" — with one exception: a frame whose declared
payload is fully present but fails its CRC can only be real damage
(sealed bytes are never rewritten), and raises.

``poll()`` is idempotent and monotone: a chunk is surfaced exactly
once, with its frame CRC verified, and re-polling an unchanged file
returns no new chunks.  Completion is detected from the index trailer
(v4/v5) or the patched header (v2/v3 written to a seekable output);
a v2/v3 file with the sentinel header has no end-of-stream marker, so
it reports ``GROWING`` forever and the caller decides when to stop.
"""

from __future__ import annotations

import dataclasses
import time
import typing

from repro.pdt.format import (
    _HEADER,
    _U32,
    CHUNKS_UNTIL_EOF,
    INDEX_MAGIC,
    VERSION_CHUNKED,
    VERSION_CRC,
    VERSION_INDEXED,
    TraceFormatError,
    chunk_crc32,
    chunk_frame_struct,
    data_offset,
)
from repro.pdt.handle import (
    _decode_chunk,
    _header_crc_ok,
    _parse_header,
    _trailer_pending,
)
from repro.pdt.index import ZoneMap, decode_index
from repro.pdt.store import ColumnChunk, EventSource
from repro.pdt.trace import TraceHeader

#: Tail states, in lifecycle order.
WAITING = "waiting"    # header not fully written (or mid-patch) yet
GROWING = "growing"    # header parsed; chunks may still be arriving
COMPLETE = "complete"  # trailer (v4/v5) or patched header (v2/v3) seen


@dataclasses.dataclass
class SealedChunk:
    """One chunk the tail has verified whole (frame + CRC)."""

    index: int
    offset: int
    n_records: int
    payload_bytes: int
    #: Decoded records; ``None`` when the tail was opened decode=False.
    chunk: typing.Optional[ColumnChunk]


@dataclasses.dataclass
class TailPoll:
    """What one ``poll()`` observed."""

    status: str
    new_chunks: typing.List[SealedChunk]
    n_chunks: int
    n_records: int
    #: Bytes after the last sealed frame (a frame or trailer still
    #: being written); 0 once complete.
    pending_bytes: int
    size: int

    @property
    def complete(self) -> bool:
        return self.status == COMPLETE


class TailSource:
    """Poll-based follower of one growing trace file.

    ``poll()`` reads the file, seals every newly complete frame, and
    reports status.  The header is surfaced on :attr:`header` once
    parseable; sealed chunks accumulate their counts on
    :attr:`n_chunks` / :attr:`n_records`.  The v4/v5 trailer's zone
    maps land on :attr:`trailer_zones` at completion.
    """

    def __init__(self, path: str, decode: bool = True):
        self.path = path
        self.decode = decode
        self.header: typing.Optional[TraceHeader] = None
        self.trailer_zones: typing.Optional[typing.List[ZoneMap]] = None
        self.n_chunks = 0
        self.n_records = 0
        self._offset = 0
        self._complete = False

    # ------------------------------------------------------------------
    def poll(self) -> TailPoll:
        """Scan for newly sealed frames; never blocks.

        Raises :class:`TraceFormatError` on *definite* corruption: a
        bad magic/version, or a fully-present frame or trailer that
        fails its CRC.  Anything shorter than its own framing is
        reported as pending, not damage.
        """
        try:
            with open(self.path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return self._result(WAITING, [], 0)
        size = len(blob)
        if self._complete:
            return self._result(COMPLETE, [], size)
        if self.header is None and not self._try_header(blob):
            return self._result(WAITING, [], size)
        version = self.header.version
        frame = chunk_frame_struct(version)
        declared = self._declared_chunks(blob)
        new: typing.List[SealedChunk] = []
        while self._offset < size and not self._complete:
            offset = self._offset
            if (
                version >= VERSION_INDEXED
                and blob[offset : offset + len(INDEX_MAGIC)] == INDEX_MAGIC
            ):
                if _trailer_pending(blob, offset):
                    break  # the closing writer is mid-trailer
                self._finish_trailer(blob, offset)
                break
            if offset + frame.size > size:
                break  # frame prefix not fully written yet
            if version >= VERSION_CRC:
                n_records, payload_bytes, crc = frame.unpack_from(blob, offset)
            else:
                n_records, payload_bytes = frame.unpack_from(blob, offset)
                crc = None
            payload_off = offset + frame.size
            if payload_off + payload_bytes > size:
                break  # payload not fully written yet
            if crc is not None and chunk_crc32(
                n_records, memoryview(blob)[payload_off : payload_off + payload_bytes]
            ) != crc:
                raise TraceFormatError(
                    f"chunk CRC mismatch at offset {offset} in growing "
                    f"file {self.path!r}: sealed bytes are damaged"
                )
            chunk = (
                _decode_chunk(blob, payload_off, n_records, payload_bytes, version)
                if self.decode
                else None
            )
            new.append(
                SealedChunk(
                    index=self.n_chunks,
                    offset=offset,
                    n_records=n_records,
                    payload_bytes=payload_bytes,
                    chunk=chunk,
                )
            )
            self.n_chunks += 1
            self.n_records += n_records
            self._offset = payload_off + payload_bytes
        if (
            not self._complete
            and version < VERSION_INDEXED
            and declared != CHUNKS_UNTIL_EOF
            and self.n_chunks >= declared
            and self._offset >= size
        ):
            # v2/v3 end-of-stream: the patched header accounts for
            # every chunk we have read and no bytes follow.
            self._complete = True
        status = COMPLETE if self._complete else GROWING
        return self._result(status, new, size)

    def wait(
        self,
        predicate: typing.Optional[typing.Callable[[TailPoll], bool]] = None,
        timeout: float = 10.0,
        interval: float = 0.02,
    ) -> TailPoll:
        """Poll until ``predicate(poll)`` holds (default: completion).

        Raises :class:`TimeoutError` when ``timeout`` seconds pass
        first.  Convenience for tests and the CLI smoke path; the
        interval is a floor, not a schedule.
        """
        if predicate is None:
            predicate = lambda poll: poll.complete  # noqa: E731
        deadline = time.monotonic() + timeout
        while True:
            result = self.poll()
            if predicate(result):
                return result
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"tail of {self.path!r} did not reach the requested "
                    f"state within {timeout} s (status={result.status})"
                )
            time.sleep(interval)

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self._complete

    def _result(
        self, status: str, new: typing.List[SealedChunk], size: int
    ) -> TailPoll:
        pending = 0 if self._complete else max(size - self._offset, 0)
        if self.header is None:
            pending = size
        return TailPoll(
            status=status,
            new_chunks=new,
            n_chunks=self.n_chunks,
            n_records=self.n_records,
            pending_bytes=pending,
            size=size,
        )

    def _try_header(self, blob: bytes) -> bool:
        if len(blob) < _HEADER.size:
            return False
        header, __, __ = _parse_header(blob)  # raises on bad magic/version
        if header.version < VERSION_CHUNKED:
            raise TraceFormatError(
                "cannot tail a version-1 trace: the legacy layout has no "
                "chunk framing to follow"
            )
        if header.version >= VERSION_CRC:
            if len(blob) < _HEADER.size + _U32.size:
                return False
            if not _header_crc_ok(blob):
                # Half-written header, or the closing writer mid-patch:
                # not yet, never corrupt.
                return False
        self.header = header
        self._offset = data_offset(header.version)
        return True

    def _declared_chunks(self, blob: bytes) -> int:
        """Re-read the header's chunk count each poll: the closing
        writer seek-patches it, and that patch is the v2/v3 end-of-
        stream signal.  A CRC-failing header (mid-patch) keeps the
        sentinel."""
        version = self.header.version
        if version >= VERSION_CRC and not _header_crc_ok(blob):
            return CHUNKS_UNTIL_EOF
        __, declared, __ = _parse_header(blob)
        return declared

    def _finish_trailer(self, blob: bytes, offset: int) -> None:
        zones, total, consumed = decode_index(blob, offset)
        if len(zones) != self.n_chunks or total != self.n_records:
            raise TraceFormatError(
                f"index trailer describes {len(zones)} chunks / {total} "
                f"records; tail has sealed {self.n_chunks} chunks / "
                f"{self.n_records} records"
            )
        self.trailer_zones = zones
        self._offset = offset + consumed
        self._complete = True


class PrefixSource(EventSource):
    """An :class:`EventSource` over the sealed prefix of a live trace.

    A snapshot view: ``chunks`` is the decoded sealed-chunk list at
    some poll, so queries over it are byte-identical to a batch run
    over a properly closed file holding exactly those chunks.  Zone
    maps (when given) must have been computed under the same clock
    fits the consumer will place records with.
    """

    def __init__(
        self,
        header: TraceHeader,
        chunks: typing.Sequence[ColumnChunk],
        zones: typing.Optional[typing.List[ZoneMap]] = None,
    ):
        self.header = header
        self._chunks = list(chunks)
        self._zones = zones

    def iter_chunks(self) -> typing.Iterator[ColumnChunk]:
        return iter(self._chunks)

    @property
    def n_records(self) -> int:
        return sum(len(chunk) for chunk in self._chunks)

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    def zone_maps(self, correlator=None):
        return self._zones
