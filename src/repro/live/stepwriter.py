"""StepWriter: a pause-controllable trace writer for live-path tests.

The differential harness needs to stop a writer at *exact* byte
positions — after k sealed chunks, or mid-frame — and compare what a
live consumer sees against a batch run over the same prefix.  A real
:class:`~repro.pdt.writer.ChunkWriter` flushes on its own schedule, so
this writer pre-chunks the record stream (same boundaries a
``ChunkWriter`` with the same ``chunk_records`` would seal, encoded by
the same ``_encode_chunk``/``_pack_chunk_frame`` primitives) and then
releases bytes on command:

* :meth:`write_chunks` — append the next *k* whole sealed frames;
* :meth:`tear` / :meth:`heal` — append only a byte-prefix of the next
  frame (a torn tail: the live reader must withhold, not guess), then
  the rest;
* :meth:`snapshot` — write a *properly closed* trace holding exactly
  the sealed prefix (patched header, and for v4/v5 an index trailer
  fitted from the prefix's own syncs): the batch reference the live
  results must match byte-for-byte;
* :meth:`close` — flush the remainder, append the trailer, patch the
  header: from here the live file is a normal closed trace.

Compression (v5) honours ``REPRO_NO_COMPRESS`` at construction time,
because payloads are encoded up front.
"""

from __future__ import annotations

import io
import typing

from repro.pdt.events import SIDE_SPE
from repro.pdt.format import CHUNKS_UNTIL_EOF, VERSION_INDEXED, check_version
from repro.pdt.index import IndexAccumulator, _SYNC_CODE, encode_index
from repro.pdt.store import ColumnChunk, EventSource
from repro.pdt.trace import TraceHeader
from repro.pdt.writer import (
    VERSION_LEGACY,
    _encode_chunk,
    _pack_chunk_frame,
    _pack_header,
)


def _observe_into(index: IndexAccumulator, chunk: ColumnChunk) -> None:
    """Feed one chunk through an accumulator exactly the way the batch
    writer does (sync values only), then seal."""
    off = chunk.val_off
    for i in range(len(chunk)):
        side, code = chunk.side[i], chunk.code[i]
        values: typing.Sequence[int] = ()
        if side == SIDE_SPE and code == _SYNC_CODE:
            values = chunk.values[off[i] : off[i + 1]]
        index.observe(side, code, chunk.core[i], chunk.raw_ts[i], values)
    index.seal_chunk()


class StepWriter:
    """Write ``source``'s records to ``path`` in controlled steps."""

    def __init__(
        self, source: EventSource, path: str, chunk_records: int = 512
    ):
        header = source.header
        check_version(header.version)
        if header.version == VERSION_LEGACY:
            raise ValueError("StepWriter only writes chunked layouts (v2+)")
        if chunk_records < 1:
            raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
        self.header = header
        self.path = path
        self.chunk_records = chunk_records
        self.chunks: typing.List[ColumnChunk] = self._rechunk(source)
        self.frames: typing.List[bytes] = []
        for chunk in self.chunks:
            payload = _encode_chunk(chunk, header.version)
            self.frames.append(
                _pack_chunk_frame(header.version, len(chunk), payload) + payload
            )
        self.n_sealed = 0
        self._torn_bytes = 0
        self._closed = False
        self._file = open(path, "wb")
        self._file.write(_pack_header(header, CHUNKS_UNTIL_EOF, 0))
        self._file.flush()

    def _rechunk(self, source: EventSource) -> typing.List[ColumnChunk]:
        chunks: typing.List[ColumnChunk] = []
        buffer = ColumnChunk()
        for chunk in source.iter_chunks():
            position = 0
            while position < len(chunk):
                take = min(self.chunk_records - len(buffer), len(chunk) - position)
                buffer.extend_rows(chunk, position, position + take)
                position += take
                if len(buffer) >= self.chunk_records:
                    chunks.append(buffer)
                    buffer = ColumnChunk()
        if len(buffer):
            chunks.append(buffer)
        return chunks

    # ------------------------------------------------------------------
    @property
    def n_chunks_total(self) -> int:
        return len(self.chunks)

    @property
    def sealed_records(self) -> int:
        return sum(len(chunk) for chunk in self.chunks[: self.n_sealed])

    @property
    def exhausted(self) -> bool:
        return self.n_sealed >= len(self.chunks)

    def write_chunks(self, k: int = 1) -> int:
        """Append the next ``k`` whole frames; returns how many were
        actually written (fewer when the stream runs out)."""
        if self._torn_bytes:
            raise ValueError("cannot seal chunks past a torn tail: heal() first")
        written = 0
        while written < k and self.n_sealed < len(self.chunks):
            self._file.write(self.frames[self.n_sealed])
            self.n_sealed += 1
            written += 1
        self._file.flush()
        return written

    def tear(self, nbytes: int) -> int:
        """Append only the first ``nbytes`` bytes of the next frame,
        leaving a torn tail on disk.  Returns the bytes written."""
        if self._torn_bytes:
            raise ValueError("tail is already torn: heal() first")
        if self.exhausted:
            raise ValueError("no chunk left to tear")
        frame = self.frames[self.n_sealed]
        nbytes = max(0, min(nbytes, len(frame) - 1))
        self._file.write(frame[:nbytes])
        self._file.flush()
        self._torn_bytes = nbytes
        return nbytes

    def heal(self) -> None:
        """Append the rest of the torn frame, sealing it."""
        if not self._torn_bytes and not self.exhausted:
            # healing an untorn tail is a no-op convenience
            return
        frame = self.frames[self.n_sealed]
        self._file.write(frame[self._torn_bytes :])
        self._file.flush()
        self._torn_bytes = 0
        self.n_sealed += 1

    def snapshot(self, path: str) -> str:
        """Write a properly closed trace of the sealed prefix to
        ``path`` — what the live file *would* be had the run ended at
        the last sealed chunk.  Returns ``path``."""
        version = self.header.version
        sealed = self.chunks[: self.n_sealed]
        with open(path, "wb") as out:
            out.write(_pack_header(self.header, CHUNKS_UNTIL_EOF, 0))
            total = 0
            index = IndexAccumulator() if version >= VERSION_INDEXED else None
            for i, chunk in enumerate(sealed):
                out.write(self.frames[i])
                total += len(chunk)
                if index is not None:
                    _observe_into(index, chunk)
            if index is not None:
                zones = index.finalize(self.header.timebase_divider)
                out.write(encode_index(zones, total))
            out.seek(0)
            out.write(_pack_header(self.header, len(sealed), total))
            out.seek(0, io.SEEK_END)
        return path

    def close(self) -> None:
        """Seal everything left, append the trailer (v4/v5), and patch
        the header: the live file becomes a normal closed trace."""
        if self._closed:
            return
        if self._torn_bytes:
            self.heal()
        self.write_chunks(len(self.chunks) - self.n_sealed)
        version = self.header.version
        total = sum(len(chunk) for chunk in self.chunks)
        if version >= VERSION_INDEXED:
            index = IndexAccumulator()
            for chunk in self.chunks:
                _observe_into(index, chunk)
            zones = index.finalize(self.header.timebase_divider)
            self._file.write(encode_index(zones, total))
        self._file.seek(0)
        self._file.write(_pack_header(self.header, len(self.chunks), total))
        self._file.seek(0, io.SEEK_END)
        self._file.flush()
        self._file.close()
        self._closed = True

    def abandon(self) -> None:
        """Stop without sealing (simulates a writer that died): the
        live file keeps its sentinel header and torn tail as-is."""
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    def __enter__(self) -> "StepWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.abandon()
