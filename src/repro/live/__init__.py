"""repro.live: tailing reads and incremental analysis of growing traces.

The post-mortem pipeline (write → close → analyze) gains a live lane:

* :class:`~repro.live.tail.TailSource` — poll-based follower of a file
  being written; surfaces whole CRC-verified chunks, treats anything
  half-written as "not yet", and detects completion.
* :class:`~repro.live.incremental.IncrementalIndex` — zone maps for
  the sealed prefix while the tail is hot.
* :class:`~repro.live.follow.FollowQuery` — windowed/online ``tq``
  aggregation: provisional results byte-identical to a batch run over
  the same prefix, and ``time_bucket`` rows that, once reported
  sealed, never change.
* :class:`~repro.live.stepwriter.StepWriter` — a pause-controllable
  writer for the differential test harness (and anyone needing
  byte-exact prefixes).
* :class:`~repro.live.view.LiveView` — the ``pdt-analyze --follow``
  top-style display.

See ``docs/live.md`` for the tail protocol and seal rules.
"""

from repro.live.follow import FollowQuery, FollowSnapshot
from repro.live.incremental import IncrementalIndex
from repro.live.stepwriter import StepWriter
from repro.live.tail import (
    COMPLETE,
    GROWING,
    WAITING,
    PrefixSource,
    SealedChunk,
    TailPoll,
    TailSource,
)
from repro.live.view import LiveView

__all__ = [
    "COMPLETE",
    "GROWING",
    "WAITING",
    "FollowQuery",
    "FollowSnapshot",
    "IncrementalIndex",
    "LiveView",
    "PrefixSource",
    "SealedChunk",
    "StepWriter",
    "TailPoll",
    "TailSource",
]
