"""A top-style live view over a growing trace: per-SPE state, event
rates, and loss counters, refreshed on an interval.

Rendering is plain text, one frame per refresh (no terminal takeover):
frames append cleanly to a log, and the follow-smoke CI job can assert
on the final frame.  The data path is a :class:`~repro.live.tail
.TailSource`; per-core tallies are vectorized over each sealed chunk.
"""

from __future__ import annotations

import sys
import time
import typing

import numpy as np

from repro.pdt.events import SIDE_PPE, SIDE_SPE, spec_for_code
from repro.pdt.store import ColumnChunk
from repro.live.tail import COMPLETE, TailSource

_LOSS_CODE = 0x51  # repro.pdt.events: SPE trace-loss marker
_LOSS_DROPPED = 0  # field positions within the loss record payload
_LOSS_OVERWRITTEN = 1


class _CoreStats:
    __slots__ = ("records", "last_code", "dropped", "overwritten")

    def __init__(self) -> None:
        self.records = 0
        self.last_code: typing.Optional[int] = None
        self.dropped = 0
        self.overwritten = 0


class LiveView:
    """Tally and render the live state of one growing trace file."""

    def __init__(self, path: str):
        self.tail = TailSource(path)
        self.ppe = _CoreStats()
        self.cores: typing.Dict[int, _CoreStats] = {}
        self._started = time.monotonic()
        self._last_records = 0
        self._last_tick = self._started
        self.rate = 0.0  # records/s between the last two refreshes

    # ------------------------------------------------------------------
    def refresh(self):
        """One poll + tally pass; returns the :class:`TailPoll`."""
        tick = self.tail.poll()
        for sealed in tick.new_chunks:
            self._tally(sealed.chunk)
        now = time.monotonic()
        elapsed = now - self._last_tick
        if elapsed > 0:
            self.rate = (self.tail.n_records - self._last_records) / elapsed
        self._last_records = self.tail.n_records
        self._last_tick = now
        return tick

    def _tally(self, chunk: ColumnChunk) -> None:
        side = np.frombuffer(chunk.side, np.uint8)
        core = np.frombuffer(chunk.core, np.uint16)
        ppe_mask = side == SIDE_PPE
        n_ppe = int(ppe_mask.sum())
        if n_ppe:
            self.ppe.records += n_ppe
            last = int(np.nonzero(ppe_mask)[0][-1])
            self.ppe.last_code = chunk.code[last]
        spe_rows = np.nonzero(side == SIDE_SPE)[0]
        for spe_id in np.unique(core[spe_rows]):
            stats = self.cores.setdefault(int(spe_id), _CoreStats())
            rows = spe_rows[core[spe_rows] == spe_id]
            stats.records += len(rows)
            stats.last_code = chunk.code[int(rows[-1])]
        # Loss markers are rare: only walk them when present.
        if chunk.code.count(_LOSS_CODE):
            code = np.frombuffer(chunk.code, np.uint8)
            for i in np.nonzero((side == SIDE_SPE) & (code == _LOSS_CODE))[0]:
                values = chunk.record_values(int(i))
                stats = self.cores.setdefault(int(core[i]), _CoreStats())
                stats.dropped += values[_LOSS_DROPPED]
                stats.overwritten += values[_LOSS_OVERWRITTEN]

    # ------------------------------------------------------------------
    def render(self, tick, out: typing.TextIO = sys.stdout) -> None:
        """Write one frame for the given poll result."""
        uptime = time.monotonic() - self._started
        out.write(
            f"live {self.tail.path}  status={tick.status}  "
            f"chunks={tick.n_chunks}  records={tick.n_records}  "
            f"pending={tick.pending_bytes}B  rate={self.rate:.0f}/s  "
            f"up={uptime:.1f}s\n"
        )
        out.write("  core     records  last-event        lost\n")
        rows = [("ppe", self.ppe)] + [
            (f"spe{spe_id}", self.cores[spe_id])
            for spe_id in sorted(self.cores)
        ]
        for label, stats in rows:
            last = "-"
            if stats.last_code is not None:
                side = SIDE_PPE if label == "ppe" else SIDE_SPE
                try:
                    last = str(spec_for_code(side, stats.last_code).kind)
                except Exception:
                    last = f"code 0x{stats.last_code:02x}"
            lost = stats.dropped + stats.overwritten
            out.write(
                f"  {label:<8} {stats.records:>7}  {last:<16} {lost:>5}\n"
            )
        out.flush()

    def run(
        self,
        refresh: float = 1.0,
        max_polls: typing.Optional[int] = None,
        out: typing.TextIO = sys.stdout,
    ) -> int:
        """Refresh until the trace completes; returns 0 on completion,
        3 when ``max_polls`` refreshes pass without one."""
        polls = 0
        while True:
            tick = self.refresh()
            self.render(tick, out)
            polls += 1
            if tick.status == COMPLETE:
                return 0
            if max_polls is not None and polls >= max_polls:
                out.write(
                    f"live view stopped after {polls} polls with the "
                    f"trace still {tick.status}\n"
                )
                return 3
            time.sleep(refresh)
