"""IncrementalIndex: zone maps for the sealed prefix of a live trace.

:class:`repro.pdt.index.IndexAccumulator` already has the right shape
for incremental use — it holds per-chunk drafts plus the global sync
set, and ``finalize`` is a pure function of that state (it re-fits the
clocks and maps the drafts through the fits without mutating either).
This subclass adds the two affordances a tailing consumer needs:

* :meth:`observe_chunk` — feed one *decoded* sealed chunk (the tail
  hands records over chunk-at-a-time, not record-at-a-time), and
* :meth:`snapshot` — the zone maps for the current sealed prefix,
  callable after every poll, not just once at the end.

The invariant (checked by ``tests/property/test_incremental_index.py``)
is that a snapshot after *k* sealed chunks is byte-identical, through
:func:`repro.pdt.index.encode_index`, to the trailer a one-shot writer
would emit for a trace holding exactly those *k* chunks: same drafts,
same sync pairs in the same order, same fits.  Snapshots taken mid-run
may differ from *later* snapshots for the same chunk — each new sync
pair refines every fit — which is exactly why the follow layer keys
its caches by fit epoch.
"""

from __future__ import annotations

import typing

from repro.pdt.index import IndexAccumulator, ZoneMap, _SIDE_SPE, _SYNC_CODE

if typing.TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.pdt.store import ColumnChunk


class IncrementalIndex(IndexAccumulator):
    """An :class:`IndexAccumulator` fed by a tail, one chunk at a time."""

    def observe_chunk(self, chunk: "ColumnChunk") -> int:
        """Observe and seal one decoded chunk.

        Returns the number of new sync records seen, so the caller can
        tell whether the clock fits (and any zone maps or partials
        derived under them) just went stale.
        """
        observe = self.observe
        side_arr = chunk.side
        code_arr = chunk.code
        core_arr = chunk.core
        raw_arr = chunk.raw_ts
        val_off = chunk.val_off
        values = chunk.values
        new_syncs = 0
        for i in range(len(chunk)):
            side = side_arr[i]
            code = code_arr[i]
            if side == _SIDE_SPE and code == _SYNC_CODE:
                row_values = values[val_off[i] : val_off[i + 1]]
                new_syncs += 1
            else:
                row_values = ()
            observe(side, code, core_arr[i], raw_arr[i], row_values)
        self.seal_chunk()
        return new_syncs

    def snapshot(self, timebase_divider: int) -> typing.List[ZoneMap]:
        """Zone maps for the sealed prefix, under the fits the current
        sync set implies — the same maps ``finalize`` would emit were
        the trace to end here."""
        return self.finalize(timebase_divider)
