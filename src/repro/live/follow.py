"""FollowQuery: windowed/online ``tq`` aggregation over a growing file.

The contract, verified by the ``tests/live`` differential matrix:

* **Prefix identity** — after any poll, :attr:`FollowSnapshot.rows` is
  byte-identical to a batch :meth:`~repro.tq.pipeline.Query.run` of
  the same plan over a properly closed trace holding exactly the
  sealed chunks.  This falls out of construction, not luck: the
  correlator is refitted over the whole prefix whenever the sync set
  changes (identical inputs to the batch fit → identical fits), chunk
  partials are merged in chunk order, and
  :class:`~repro.tq.pipeline.AggState` partials merge exactly (integer
  totals, order-free min/max, populations ordered by chunk then sorted
  once at finalize).
* **Seal monotonicity** — a ``time_bucket`` row reported *sealed* never
  changes as the file grows.  Bucket *b* seals when
  ``(b + 1) * W <= watermark`` where the watermark is the largest
  placed time below which no future record can land:

  - every declared SPE (``header.n_spes`` of them) must be *quiesced* —
    its exit sync observed (the tracer emits syncs only at SPE entry
    and exit, and a context's buffers flush in stream order, so two
    syncs mean the core's sync set — hence its clock fit — and its
    record set are both complete for good);
  - PPE records are placed as ``raw_ts * divider`` and arrive in
    timebase order, so the last PPE time seen bounds every future one
    from below.

  Until both hold the watermark is absent and nothing seals (a torn or
  paused tail *withholds* buckets, never guesses them).  A completed
  file seals everything.

Incrementality: per-chunk partials are cached and only recomputed when
the clock fits change (the *fit epoch* bumps — rare, since syncs only
occur at entry/exit), so a steady-state poll costs one
decode-and-fold of the new chunks plus a merge of cached partials.
With ``prune=True`` an :class:`~repro.live.incremental.IncrementalIndex`
supplies zone maps for the sealed prefix so each cached chunk can be
skipped entirely when its zone refuses the predicate (identical
results either way — pruning is sound).
"""

from __future__ import annotations

import dataclasses
import time as _time
import typing

import numpy as np

from repro.pdt.correlate import ClockCorrelator
from repro.pdt.events import SIDE_PPE, SIDE_SPE
from repro.pdt.index import _SYNC_CODE, ZoneMap
from repro.pdt.store import ColumnChunk
from repro.pdt.trace import TraceHeader
from repro.tq.pipeline import AggState, PartialAggregation, Query, QueryPlan
from repro.live.incremental import IncrementalIndex
from repro.live.tail import COMPLETE, PrefixSource, TailSource

#: Sync records per core that mean "this core is done": the tracer
#: syncs at SPE entry and SPE exit, nowhere else.
_QUIESCED_SYNCS = 2


def _copy_agg_state(state: AggState) -> AggState:
    fork = AggState(state.op, state.column)
    fork.count = state.count
    fork.total = state.total
    fork.lo = state.lo
    fork.hi = state.hi
    if state.population is not None:
        fork.population = list(state.population)
    return fork


def _copy_partial(partial: PartialAggregation) -> PartialAggregation:
    """Deep-copy a partial so the cached per-chunk partials survive the
    (consuming) merge chain."""
    fork = PartialAggregation(partial.keys, partial.aggs)
    for group, states in partial.groups.items():
        fork.groups[group] = [_copy_agg_state(state) for state in states]
    return fork


@dataclasses.dataclass
class FollowSnapshot:
    """One poll's view of the live aggregation."""

    status: str
    n_chunks: int
    n_records: int
    pending_bytes: int
    fit_epoch: int
    #: Full provisional result over the sealed prefix — byte-identical
    #: to a batch run of the same plan over the same prefix.
    rows: typing.List[typing.Dict[str, typing.Any]]
    #: Largest placed time below which no future record can land;
    #: ``None`` while any declared core is not yet quiesced.
    watermark: typing.Optional[int]
    #: Bucket ids proven final (``None`` when the plan has no
    #: ``"bucket"`` group key — sealing is a windowed-plan concept).
    sealed_buckets: typing.Optional[typing.Set[int]]
    #: The rows of :attr:`rows` whose bucket is sealed.
    sealed_rows: typing.Optional[typing.List[typing.Dict[str, typing.Any]]]
    #: Sealed rows whose bucket first sealed on *this* poll.
    newly_sealed: typing.Optional[typing.List[typing.Dict[str, typing.Any]]]

    @property
    def complete(self) -> bool:
        return self.status == COMPLETE


class FollowQuery:
    """Online execution of one :class:`~repro.tq.pipeline.QueryPlan`
    over one growing trace file.  Build via
    :meth:`repro.tq.pipeline.Query.follow`, or directly from a plan.
    """

    def __init__(
        self,
        plan: typing.Union[QueryPlan, Query],
        path: str,
        prune: bool = False,
    ):
        if isinstance(plan, Query):
            plan = plan.plan()
        self.plan = plan
        self.path = path
        self.prune = prune
        self.tail = TailSource(path)
        self.fit_epoch = 0
        # Time-free plans never place records, so they never need (or
        # fit) a correlator — exactly like the batch path.
        self._needs_time = Query.from_plan(None, self.plan)._needs_time()
        self._chunks: typing.List[ColumnChunk] = []
        self._partials: typing.List[typing.Optional[PartialAggregation]] = []
        self._zones: typing.Optional[typing.List[ZoneMap]] = None
        self._index = IncrementalIndex() if prune else None
        self._correlator: typing.Optional[ClockCorrelator] = None
        self._fits_stale = False
        #: core id -> sync records seen so far.
        self._sync_counts: typing.Dict[int, int] = {}
        self._ppe_wm: typing.Optional[int] = None  # raw timebase units
        #: bucket id -> that bucket's rows as first emitted sealed.
        self._sealed_emitted: typing.Dict[
            int, typing.List[typing.Dict[str, typing.Any]]
        ] = {}

    # ------------------------------------------------------------------
    def poll(self) -> FollowSnapshot:
        """Ingest newly sealed chunks and recompute the live result."""
        tick = self.tail.poll()
        for sealed in tick.new_chunks:
            chunk = sealed.chunk
            self._chunks.append(chunk)
            self._partials.append(None)
            self._observe_chunk(chunk)
        if self.tail.header is None:
            return self._snapshot(tick, [])
        if self._fits_stale:
            # The sync set changed: refit over the whole prefix exactly
            # as a batch run over this prefix would, and invalidate
            # every cached partial (their record times moved).
            self._zones = None
            self._fits_stale = False
            if self._needs_time:
                self._correlator = ClockCorrelator(self._prefix_source())
                self._partials = [None] * len(self._chunks)
                self.fit_epoch += 1
        if self._needs_time and self._correlator is None:
            self._correlator = ClockCorrelator(self._prefix_source())
        if self.prune and self._index is not None and (
            self._zones is None or len(self._zones) != len(self._chunks)
        ):
            self._zones = self._index.snapshot(
                self.tail.header.timebase_divider
            )
        for i, partial in enumerate(self._partials):
            if partial is None:
                self._partials[i] = self._chunk_partial(i)
        merged = PartialAggregation.create(
            self.plan.group_keys, self.plan.aggs or (("n", "count", None),)
        )
        for partial in self._partials:
            merged.merge(_copy_partial(partial))
        rows = merged.finalize()
        return self._snapshot(tick, rows)

    def run_until_complete(
        self, timeout: float = 30.0, interval: float = 0.02
    ) -> typing.Iterator[FollowSnapshot]:
        """Yield a snapshot per poll until the file completes; raises
        :class:`TimeoutError` if it never does."""
        deadline = _time.monotonic() + timeout
        while True:
            snapshot = self.poll()
            yield snapshot
            if snapshot.complete:
                return
            if _time.monotonic() >= deadline:
                raise TimeoutError(
                    f"follow of {self.path!r} did not complete within "
                    f"{timeout} s (status={snapshot.status})"
                )
            _time.sleep(interval)

    # ------------------------------------------------------------------
    def _prefix_source(
        self, zones: typing.Optional[typing.List[ZoneMap]] = None
    ) -> PrefixSource:
        return PrefixSource(self.tail.header, self._chunks, zones)

    def _observe_chunk(self, chunk: ColumnChunk) -> None:
        """Track what sealing and refitting need: per-core sync counts
        and the PPE high-water mark.  Vectorized — the live path must
        not add a per-record Python loop on top of the fold."""
        if self._index is not None:
            if self._index.observe_chunk(chunk):
                self._fits_stale = True
        side = np.frombuffer(chunk.side, np.uint8)
        ppe_mask = side == SIDE_PPE
        if ppe_mask.any():
            raw = np.frombuffer(chunk.raw_ts, np.uint64)
            # PPE records arrive in timebase order, so max == last ==
            # a lower bound on every future PPE timestamp.
            ppe_max = int(raw[ppe_mask].max())
            if self._ppe_wm is None or ppe_max > self._ppe_wm:
                self._ppe_wm = ppe_max
        if chunk.code.count(_SYNC_CODE):
            code = np.frombuffer(chunk.code, np.uint8)
            sync_rows = np.nonzero((side == SIDE_SPE) & (code == _SYNC_CODE))[0]
            for i in sync_rows:
                core = chunk.core[int(i)]
                self._sync_counts[core] = self._sync_counts.get(core, 0) + 1
            if len(sync_rows):
                self._fits_stale = True

    def _chunk_partial(self, i: int) -> PartialAggregation:
        zones = [self._zones[i]] if self._zones is not None else None
        source = PrefixSource(self.tail.header, [self._chunks[i]], zones)
        query = Query.from_plan(source, self.plan, self._correlator)
        return query.run_partial()

    def _watermark(self) -> typing.Optional[int]:
        header = self.tail.header
        if header is None:
            return None
        if self.tail.complete:
            return None  # sentinel: everything seals
        if self._ppe_wm is None:
            return None
        for core in range(header.n_spes):
            if self._sync_counts.get(core, 0) < _QUIESCED_SYNCS:
                return None
        return self._ppe_wm * header.timebase_divider

    def _snapshot(
        self, tick, rows: typing.List[typing.Dict[str, typing.Any]]
    ) -> FollowSnapshot:
        bucket_width = self.plan.time_bucket
        windowed = "bucket" in self.plan.group_keys and bucket_width
        watermark = self._watermark()
        sealed_buckets: typing.Optional[typing.Set[int]] = None
        sealed_rows: typing.Optional[typing.List] = None
        newly: typing.Optional[typing.List] = None
        if windowed:
            sealed_buckets = set()
            sealed_rows = []
            newly = []
            by_bucket: typing.Dict[int, typing.List] = {}
            for row in rows:
                bucket = row["bucket"]
                if self.tail.complete or (
                    watermark is not None
                    and (bucket + 1) * bucket_width <= watermark
                ):
                    sealed_buckets.add(bucket)
                    sealed_rows.append(row)
                    by_bucket.setdefault(bucket, []).append(row)
            for bucket in sorted(by_bucket):
                emitted = self._sealed_emitted.get(bucket)
                if emitted is None:
                    self._sealed_emitted[bucket] = by_bucket[bucket]
                    newly.extend(by_bucket[bucket])
                elif emitted != by_bucket[bucket]:
                    raise RuntimeError(
                        f"sealed bucket {bucket} changed after emission: "
                        f"{emitted!r} -> {by_bucket[bucket]!r}"
                    )
            # A bucket sealed earlier can never leave the result set.
            missing = set(self._sealed_emitted) - sealed_buckets
            if missing:
                raise RuntimeError(
                    f"sealed buckets disappeared from the result: "
                    f"{sorted(missing)}"
                )
        return FollowSnapshot(
            status=tick.status,
            n_chunks=self.tail.n_chunks,
            n_records=self.tail.n_records,
            pending_bytes=tick.pending_bytes,
            fit_epoch=self.fit_epoch,
            rows=rows,
            watermark=watermark,
            sealed_buckets=sealed_buckets,
            sealed_rows=sealed_rows,
            newly_sealed=newly,
        )
